//! Failure injection and boundary conditions across the public API.

use specslice::exec::{self, ExecOutcome, ExecRequest};
use specslice::{Criterion, Program, Slicer};
use specslice_sdg::VertexId;

/// Runs through the env-selected default backend with the default budgets.
fn run(program: &Program, input: &[i64]) -> ExecOutcome {
    exec::run(&ExecRequest::new(program).with_input(input)).unwrap()
}

#[test]
fn unreachable_criterion_gives_empty_slice() {
    // Dead procedure: never called, so its vertices have no realizable
    // calling context — the all-contexts criterion denotes no configuration.
    let src = r#"
        int g;
        void dead(int a) { g = a; }
        int main() { g = 1; printf("%d", g); return 0; }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let dead = slicer.sdg().proc_named("dead").unwrap();
    let slice = slicer.slice(&Criterion::vertex(dead.entry)).unwrap();
    assert!(slice.is_empty());
    // And an empty slice still regenerates a runnable skeleton.
    let regen = slicer.regenerate(&slice).unwrap();
    assert!(regen.program.main().is_some());
    run(&regen.program, &[]);
}

#[test]
fn malformed_criteria_are_rejected() {
    let src = "int main() { printf(\"%d\", 1); return 0; }";
    let slicer = Slicer::from_source(src).unwrap();
    // Out-of-range vertex.
    let err = slicer
        .slice(&Criterion::vertex(VertexId(10_000)))
        .unwrap_err();
    assert!(
        matches!(err, specslice::SpecError::BadCriterion { .. }),
        "{err:?}"
    );
    // Empty sets.
    assert!(slicer.slice(&Criterion::AllContexts(vec![])).is_err());
    assert!(slicer.slice(&Criterion::Configurations(vec![])).is_err());
}

#[test]
fn library_only_criterion() {
    // Criterion on the format actual-in only: still yields a slice keeping
    // the call (via the §6.1 LibActual linkage the call vertex needs).
    let src = "int main() { printf(\"hello\"); return 0; }";
    let slicer = Slicer::from_source(src).unwrap();
    let fmt = slicer.sdg().printf_actual_in_vertices()[0];
    let slice = slicer.slice(&Criterion::vertex(fmt)).unwrap();
    assert!(!slice.is_empty());
    let regen = slicer.regenerate(&slice).unwrap();
    assert!(
        regen.source.contains("printf(\"hello\")"),
        "{}",
        regen.source
    );
}

#[test]
fn scanf_order_is_preserved_in_slices() {
    // Slicing on the SECOND read must keep the first read (stream state).
    let src = r#"
        int main() {
            int a;
            int b;
            scanf("%d", &a);
            scanf("%d", &b);
            printf("%d", b);
            return 0;
        }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let ast = slicer.program().unwrap();
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    assert_eq!(
        regen.source.matches("scanf").count(),
        2,
        "dropping the first scanf would shift the stream:\n{}",
        regen.source
    );
    let a = run(ast, &[10, 20]);
    let b = run(&regen.program, &[10, 20]);
    assert_eq!(a.output, b.output);
    assert_eq!(b.output, vec![20]);
}

#[test]
fn exit_guard_survives_slicing() {
    // `exit` terminates the program; statements after it are control
    // dependent on it, so slices must keep the exit to stay faithful.
    let src = r#"
        int g;
        int main() {
            int c;
            scanf("%d", &c);
            g = 1;
            if (c > 0) { exit(7); }
            g = 2;
            printf("%d", g);
            return 0;
        }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let ast = slicer.program().unwrap();
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    assert!(regen.source.contains("exit(7)"), "{}", regen.source);
    for input in [[0i64], [5i64]] {
        let a = run(ast, &input);
        let b = run(&regen.program, &input);
        assert_eq!(a.output, b.output, "input {input:?}");
        assert_eq!(a.exit_code, b.exit_code, "input {input:?}");
    }
}

#[test]
fn break_and_continue_survive_when_relevant() {
    let src = r#"
        int g;
        int main() {
            int i;
            i = 0;
            while (i < 10) {
                i = i + 1;
                if (i == 3) { continue; }
                if (i > 5) { break; }
                g = g + i;
            }
            printf("%d", g);
            return 0;
        }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let ast = slicer.program().unwrap();
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    assert!(regen.source.contains("break"), "{}", regen.source);
    assert!(regen.source.contains("continue"), "{}", regen.source);
    let a = run(ast, &[]);
    let b = run(&regen.program, &[]);
    assert_eq!(a.output, b.output);
    assert_eq!(a.output, vec![1 + 2 + 4 + 5]);
}

#[test]
fn deep_configuration_criteria() {
    // A 3-deep concrete call stack through nested procedures.
    let src = r#"
        int g;
        void inner(int a) { g = a; }
        void mid(int b) { inner(b + 1); }
        void outer(int c) { mid(c + 1); }
        int main() { outer(1); printf("%d", g); return 0; }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let sdg = slicer.sdg();
    let inner = sdg.proc_named("inner").unwrap();
    // Stack: inner called at mid's site, mid at outer's site, outer in main.
    let site_of = |caller: &str| {
        sdg.call_sites
            .iter()
            .find(|c| {
                sdg.proc(c.caller).name == caller
                    && matches!(c.callee, specslice_sdg::CalleeKind::User(_))
            })
            .unwrap()
            .id
    };
    let stack = vec![site_of("mid"), site_of("outer"), site_of("main")];
    let slice = slicer
        .slice(&Criterion::configuration(inner.entry, stack))
        .unwrap();
    assert!(!slice.is_empty());
    assert_eq!(slice.variants_of_proc(sdg, "inner").len(), 1);
    // A wrong-order stack is rejected.
    let bad = vec![site_of("outer"), site_of("mid"), site_of("main")];
    assert!(slicer
        .slice(&Criterion::configuration(inner.entry, bad))
        .is_err());
}

#[test]
fn while_true_loops_are_sliceable() {
    // An infinite loop guarded by break — exercises the unreachable-exit
    // paths in control dependence.
    let src = r#"
        int g;
        int main() {
            int i;
            i = 0;
            while (1) {
                i = i + 1;
                g = g + i;
                if (i >= 4) { break; }
            }
            printf("%d", g);
            return 0;
        }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let ast = slicer.program().unwrap();
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    let a = run(ast, &[]);
    let b = run(&regen.program, &[]);
    assert_eq!(a.output, b.output);
}
