//! Direction-generic query properties: forward slices, chops, and the
//! forward/backward duality.
//!
//! The tentpole contract under test: `chop(s, t)` is byte-identical to
//! intersecting `forward_slice(s)` and `slice(t)` on their canonical MRD
//! automata and re-canonicalizing — at every thread count and under both
//! batch solvers — and forward queries share the session's memo without
//! colliding with backward entries for the same criterion.

use specslice::readout::QueryKind;
use specslice::{Criterion, Slicer, SlicerConfig, Solver};
use specslice_corpus::{random_program, GenConfig};
use specslice_fsa::mrd;
use specslice_fsa::ops::intersect;
use specslice_sdg::VertexKind;

fn cfg() -> GenConfig {
    GenConfig {
        n_globals: 3,
        n_funcs: 4,
        max_stmts: 6,
        recursion: true,
    }
}

fn seeds(n: u64, stride: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| (i * stride + 17) % 10_000)
}

/// The first statement vertex of `main` — a natural chop source.
fn main_statement(slicer: &Slicer) -> Option<Criterion> {
    let main = slicer.sdg().proc_named("main")?;
    main.vertices
        .iter()
        .copied()
        .find(|&v| matches!(slicer.sdg().vertex(v).kind, VertexKind::Statement { .. }))
        .map(Criterion::vertex)
}

/// `chop(s, t)` equals `mrd(trim(forward.a6 ∩ backward.a6))` byte for byte,
/// and its vertex set is contained in both constituent slices.
#[test]
fn chop_is_byte_identical_to_intersection() {
    for seed in seeds(24, 211) {
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        if slicer.sdg().printf_actual_in_vertices().is_empty() {
            continue;
        }
        let Some(source) = main_statement(&slicer) else {
            continue;
        };
        let target = Criterion::printf_actuals(slicer.sdg());

        let fwd = slicer.forward_slice(&source).unwrap();
        let bwd = slicer.slice(&target).unwrap();
        let chop = slicer.chop(&source, &target).unwrap();
        assert_eq!(chop.kind, QueryKind::Chop, "seed {seed}");

        let (trimmed, _) = intersect(&fwd.a6, &bwd.a6).trimmed();
        let manual = mrd(&trimmed);
        assert_eq!(
            format!("{:?}", chop.a6),
            format!("{manual:?}"),
            "chop automaton differs from manual intersection (seed {seed})\n{src}"
        );

        let chop_elems = chop.elems();
        assert!(
            chop_elems.is_subset(&fwd.elems()),
            "chop exceeds the forward slice (seed {seed})"
        );
        assert!(
            chop_elems.is_subset(&bwd.elems()),
            "chop exceeds the backward slice (seed {seed})"
        );
    }
}

/// Duality: a vertex `d` kept by the backward slice from `C` can, running
/// forward from `d`, reach some criterion vertex — so `forward_slice(d)`
/// must keep at least one vertex of `C`.
#[test]
fn backward_slice_members_reach_the_criterion_forward() {
    for seed in seeds(16, 307) {
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        let cv = slicer.sdg().printf_actual_in_vertices();
        if cv.is_empty() {
            continue;
        }
        let bwd = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        for &d in bwd.elems().iter().take(5) {
            let fwd = slicer.forward_slice(&Criterion::vertex(d)).unwrap();
            let elems = fwd.elems();
            assert!(
                cv.iter().any(|c| elems.contains(c)),
                "vertex {d:?} is in the backward slice but its forward slice \
                 misses every criterion vertex (seed {seed})\n{src}"
            );
        }
    }
}

/// Forward and backward entries for the *same* criterion occupy distinct
/// memo slots, and the per-direction hit/miss counters attribute correctly.
#[test]
fn forward_and_backward_memo_entries_do_not_collide() {
    let src = random_program(17, cfg());
    let slicer = Slicer::from_source(&src).unwrap();
    let c = Criterion::printf_actuals(slicer.sdg());
    if slicer.sdg().printf_actual_in_vertices().is_empty() {
        return;
    }

    let (_, s) = slicer.forward_slice_with_stats(&c).unwrap();
    assert_eq!(
        (s.memo_misses_forward, s.memo_hits_forward),
        (1, 0),
        "first forward query must miss"
    );
    assert_eq!((s.memo_misses_backward, s.memo_hits_backward), (0, 0));

    let (_, s) = slicer.forward_slice_with_stats(&c).unwrap();
    assert_eq!(
        (s.memo_misses_forward, s.memo_hits_forward),
        (0, 1),
        "repeated forward query must hit"
    );

    // The backward query on the same criterion must not be answered from
    // the forward entry.
    let (_, s) = slicer.slice_with_stats(&c).unwrap();
    assert_eq!(
        (s.memo_misses_backward, s.memo_hits_backward),
        (1, 0),
        "backward query must not hit the forward memo entry"
    );
    assert_eq!((s.memo_misses_forward, s.memo_hits_forward), (0, 0));
    assert_eq!(slicer.memo_len(), 2, "one entry per direction");
}

/// `forward_slice_batch` is byte-identical across both solvers and thread
/// counts 1/2/4, and each batch member equals the single-query answer.
#[test]
fn forward_batch_is_solver_and_thread_invariant() {
    for seed in seeds(6, 523) {
        let src = random_program(seed, cfg());
        let reference = Slicer::from_source(&src).unwrap();
        if reference.sdg().printf_actual_in_vertices().is_empty() {
            continue;
        }
        let criteria = vec![
            Criterion::printf_actuals(reference.sdg()),
            main_statement(&reference).unwrap(),
        ];
        let want: Vec<String> = criteria
            .iter()
            .map(|c| format!("{:?}", reference.forward_slice(c).unwrap()))
            .collect();
        for solver in [Solver::PerCriterion, Solver::OnePass] {
            for threads in [1, 2, 4] {
                let config = SlicerConfig {
                    solver,
                    num_threads: threads,
                    ..SlicerConfig::default()
                };
                let slicer = Slicer::from_source_with(&src, config).unwrap();
                let batch = slicer.forward_slice_batch(&criteria).unwrap();
                let got: Vec<String> = batch.slices.iter().map(|s| format!("{s:?}")).collect();
                assert_eq!(
                    got, want,
                    "forward batch diverges ({solver:?}, {threads} threads, seed {seed})"
                );
            }
        }
    }
}

/// Chops are identical whether the constituent queries were warm or cold —
/// the memo path and the fresh pipeline feed the same intersection.
#[test]
fn chop_from_warm_memo_is_identical_to_cold() {
    let src = random_program(99, cfg());
    let cold = Slicer::from_source(&src).unwrap();
    let warm = Slicer::from_source(&src).unwrap();
    if cold.sdg().printf_actual_in_vertices().is_empty() {
        return;
    }
    let source = main_statement(&cold).unwrap();
    let target = Criterion::printf_actuals(cold.sdg());

    // Warm the second session's memo in both directions first.
    warm.forward_slice(&source).unwrap();
    warm.slice(&target).unwrap();

    let a = cold.chop(&source, &target).unwrap();
    let b = warm.chop(&source, &target).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
