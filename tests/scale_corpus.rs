//! Properties of the scale-corpus generator (`specslice_corpus::scale_program`):
//! every generated program front-ends cleanly (parse + sema, after the §6.2
//! indirect-call lowering its fnptr webs require), and batches over skewed
//! criterion samples are byte-identical across thread counts and solvers.
//! The full per-criterion ⇄ one-pass differential runs on the smallest tier
//! only, to keep CI time bounded; larger shapes check structure and sampled
//! agreement.

use specslice::{Criterion, Slicer, SlicerConfig, Solver};
use specslice_corpus::{scale_program, skewed_site_sample, ScaleConfig};

/// Small-tier shapes exercising every generator feature: mutual-recursion
/// rings (including a partial last ring), fnptr webs on and off, skewed
/// printf placement.
fn shapes() -> Vec<(u64, ScaleConfig)> {
    vec![
        (
            1,
            ScaleConfig {
                n_procs: 8,
                n_globals: 4,
                ring: 3,
                indirect_pct: 40,
                n_printfs: 10,
            },
        ),
        (
            2,
            ScaleConfig {
                n_procs: 13, // 13 % 4 != 0: partial last ring
                n_globals: 6,
                ring: 4,
                indirect_pct: 0, // no webs: pure direct-call recursion
                n_printfs: 8,
            },
        ),
        (
            3,
            ScaleConfig {
                n_procs: 16,
                n_globals: 8,
                ring: 4,
                indirect_pct: 25,
                n_printfs: 24,
            },
        ),
    ]
}

fn session(source: &str, num_threads: usize, solver: Solver) -> Slicer {
    let program = specslice_lang::frontend(source).expect("scale programs front-end cleanly");
    let lowered =
        specslice::indirect::lower_indirect_calls(&program).expect("indirect lowering succeeds");
    Slicer::from_program_with(
        lowered,
        SlicerConfig {
            collect_stats: false,
            num_threads,
            solver,
            ..SlicerConfig::default()
        },
    )
    .expect("scale programs build SDGs")
}

/// Skewed per-printf criteria, the scale bench's workload shape.
fn skewed_criteria(slicer: &Slicer, count: usize, seed: u64) -> Vec<Criterion> {
    let sites: Vec<Criterion> = slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect();
    skewed_site_sample(sites.len(), count, seed)
        .into_iter()
        .map(|i| sites[i].clone())
        .collect()
}

fn fingerprint(slices: &[specslice::SpecSlice]) -> String {
    format!("{slices:?}")
}

/// Every shape front-ends cleanly and regenerates deterministically from
/// its seed (two generations are byte-equal).
#[test]
fn scale_programs_frontend_cleanly_and_deterministically() {
    for (seed, cfg) in shapes() {
        let source = scale_program(seed, cfg);
        assert_eq!(
            source,
            scale_program(seed, cfg),
            "seed {seed}: generation must be deterministic"
        );
        let slicer = session(&source, 1, Solver::OnePass);
        assert!(
            slicer.sdg().printf_call_sites().count() > 0,
            "seed {seed}: criterion sites exist"
        );
    }
}

/// Batches are byte-identical at 1/2/4 threads under BOTH solvers, on every
/// shape. The 1-thread one-pass run is the reference all five other legs
/// must reproduce exactly.
#[test]
fn scale_batches_identical_across_threads_and_solvers() {
    for (seed, cfg) in shapes() {
        let source = scale_program(seed, cfg);
        let reference = {
            let slicer = session(&source, 1, Solver::OnePass);
            let criteria = skewed_criteria(&slicer, 20, seed ^ 7);
            fingerprint(&slicer.slice_batch(&criteria).unwrap().slices)
        };
        for solver in [Solver::OnePass, Solver::PerCriterion] {
            for threads in [1, 2, 4] {
                let slicer = session(&source, threads, solver);
                let criteria = skewed_criteria(&slicer, 20, seed ^ 7);
                assert_eq!(
                    fingerprint(&slicer.slice_batch(&criteria).unwrap().slices),
                    reference,
                    "seed {seed}: {solver:?} at {threads} threads diverged"
                );
            }
        }
    }
}

/// Sampled solver agreement on every shape: single-criterion slices from a
/// per-criterion session equal the one-pass batch's corresponding entries.
#[test]
fn sampled_criteria_agree_between_solvers() {
    for (seed, cfg) in shapes() {
        let source = scale_program(seed, cfg);
        let onepass = session(&source, 1, Solver::OnePass);
        let criteria = skewed_criteria(&onepass, 12, seed.wrapping_mul(31) + 1);
        let batch = onepass.slice_batch(&criteria).unwrap();
        let reference = session(&source, 1, Solver::PerCriterion);
        for (i, criterion) in criteria.iter().enumerate().step_by(3) {
            let solo = reference.slice(criterion).unwrap();
            assert_eq!(
                format!("{:?}", batch.slices[i].a6),
                format!("{:?}", solo.a6),
                "seed {seed}: criterion {i} MRD automaton diverged between solvers"
            );
        }
    }
}

/// Full differential on the smallest shape only: every printf site, both
/// solvers, slice-for-slice.
#[test]
fn full_differential_on_smallest_tier() {
    let (seed, cfg) = shapes().remove(0);
    let source = scale_program(seed, cfg);
    let a = session(&source, 1, Solver::OnePass);
    let b = session(&source, 1, Solver::PerCriterion);
    let criteria: Vec<Criterion> = a
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect();
    let batch_a = a.slice_batch(&criteria).unwrap();
    let batch_b = b.slice_batch(&criteria).unwrap();
    assert_eq!(
        fingerprint(&batch_a.slices),
        fingerprint(&batch_b.slices),
        "one-pass and per-criterion solvers diverged on the full site set"
    );
}
