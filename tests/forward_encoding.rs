//! Forward queries reuse the session's PDS encoding.
//!
//! The direction-generic refactor runs `post*` against the same Fig. 8
//! encoding `pre*` uses — switching direction must never re-encode the SDG.
//! `encode_call_count()` is a process-global counter, so this file holds a
//! single test (a sibling test constructing a `Slicer` concurrently would
//! race the delta).

use specslice::encode::encode_call_count;
use specslice::{Criterion, Slicer};
use specslice_corpus::{random_program, GenConfig};
use specslice_sdg::VertexKind;

#[test]
fn forward_queries_never_rebuild_the_encoding() {
    let src = random_program(
        42,
        GenConfig {
            n_globals: 3,
            n_funcs: 4,
            max_stmts: 6,
            recursion: true,
        },
    );
    let slicer = Slicer::from_source(&src).unwrap();
    let target = Criterion::printf_actuals(slicer.sdg());
    let main = slicer.sdg().proc_named("main").unwrap();
    let source = main
        .vertices
        .iter()
        .copied()
        .find(|&v| matches!(slicer.sdg().vertex(v).kind, VertexKind::Statement { .. }))
        .map(Criterion::vertex)
        .unwrap();

    let before = encode_call_count();
    slicer.forward_slice(&source).unwrap();
    slicer
        .forward_slice_batch(std::slice::from_ref(&target))
        .unwrap();
    slicer.chop(&source, &target).unwrap();
    slicer.slice(&target).unwrap();
    assert_eq!(
        encode_call_count(),
        before,
        "a query re-encoded the SDG; the session encoding must be shared \
         across directions"
    );
}
