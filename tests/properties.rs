//! Property-based tests over randomly generated programs.
//!
//! These check the paper's theorems on inputs nobody hand-crafted:
//! agreement of the two independent slicer implementations (HRB closure vs.
//! `Elems(pre*)`), Cor. 3.19 mismatch-freedom, Defn. 2.10 minimality,
//! Thm. 3.16 reverse determinism, and end-to-end executability.

use proptest::prelude::*;
use specslice::{specialize, Criterion};
use specslice_corpus::{random_program, GenConfig};
use specslice_fsa::is_reverse_deterministic;
use specslice_lang::frontend;
use specslice_sdg::build::build_sdg;
use specslice_sdg::slice::backward_closure_slice;
use std::collections::BTreeSet;

fn cfg() -> GenConfig {
    GenConfig {
        n_globals: 3,
        n_funcs: 4,
        max_stmts: 6,
        recursion: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two independent interprocedural slicers agree: the HRB two-phase
    /// closure slice equals the vertex projection of the PDS
    /// stack-configuration slice (for all-contexts criteria).
    #[test]
    fn closure_slice_equals_elems_of_prestar(seed in 0u64..10_000) {
        let src = random_program(seed, cfg());
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let cv = sdg.printf_actual_in_vertices();
        prop_assume!(!cv.is_empty());
        let closure = backward_closure_slice(&sdg, &cv);
        let slice = specialize(&sdg, &Criterion::printf_actuals(&sdg)).unwrap();
        let elems = slice.elems();
        prop_assert_eq!(
            &elems, &closure,
            "Elems(pre*) != HRB closure slice (seed {})\n{}", seed, src
        );
    }

    /// Thm. 3.16: the algorithm's automaton is reverse-deterministic, and
    /// the partition is minimal (distinct Elems per variant, Defn. 2.10(3)).
    #[test]
    fn a6_is_mrd_and_partition_minimal(seed in 0u64..10_000) {
        let src = random_program(seed, cfg());
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let slice = specialize(&sdg, &Criterion::printf_actuals(&sdg)).unwrap();
        prop_assume!(!slice.is_empty());
        prop_assert!(is_reverse_deterministic(&slice.a6));
        for proc in &sdg.procs {
            let sets: Vec<&BTreeSet<specslice_sdg::VertexId>> = slice
                .variants
                .iter()
                .filter(|v| v.proc == proc.id)
                .map(|v| &v.vertices)
                .collect();
            let distinct: BTreeSet<_> = sets.iter().collect();
            prop_assert_eq!(distinct.len(), sets.len(), "duplicate Elems for {}", proc.name);
        }
    }

    /// End-to-end executability: the regenerated slice re-checks and prints
    /// exactly what the original prints (criterion = all printfs), on three
    /// different inputs.
    #[test]
    fn slices_behave_like_originals(seed in 0u64..5_000, x in 0i64..100) {
        let src = random_program(seed, cfg());
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let cv = sdg.printf_actual_in_vertices();
        prop_assume!(!cv.is_empty());
        let slice = specialize(&sdg, &Criterion::printf_actuals(&sdg)).unwrap();
        let regen = specslice::regen::regenerate(&sdg, &ast, &slice).unwrap();
        for input in [vec![x], vec![x, x + 1], vec![3 * x % 7]] {
            let a = specslice_interp::run(&ast, &input, 2_000_000);
            let b = specslice_interp::run(&regen.program, &input, 2_000_000);
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    prop_assert_eq!(
                        &ra.output, &rb.output,
                        "divergence (seed {})\n{}\n=== slice ===\n{}",
                        seed, src, regen.source
                    );
                    prop_assert!(rb.steps <= ra.steps);
                }
                // Fuel/arith errors must at least agree in kind.
                (Err(_), Err(_)) => {}
                (Ok(_), Err(e)) => {
                    return Err(TestCaseError::fail(format!(
                        "slice fails where original succeeds: {e} (seed {seed})\n{}",
                        regen.source
                    )));
                }
                (Err(_), Ok(_)) => {} // slice may drop a failing computation
            }
        }
    }

    /// Feature removal (Alg. 2): the feature seed disappears and the result
    /// stays inside the SDG's vertex universe.
    #[test]
    fn feature_removal_removes_the_seed(seed in 0u64..5_000) {
        let src = random_program(seed, cfg());
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let main = sdg.proc_named("main").unwrap();
        let seed_vertex = main.vertices.iter().copied().find(|&v| {
            matches!(sdg.vertex(v).kind, specslice_sdg::VertexKind::Statement { .. })
        });
        prop_assume!(seed_vertex.is_some());
        let sv = seed_vertex.unwrap();
        let slice =
            specslice::feature_removal::remove_feature(&sdg, &Criterion::vertex(sv)).unwrap();
        prop_assert!(!slice.elems().contains(&sv));
        for v in slice.elems() {
            prop_assert!(v.index() < sdg.vertex_count());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// §8.3 reslicing idempotence on random programs.
    #[test]
    fn reslice_languages_agree(seed in 0u64..2_000) {
        let src = random_program(seed, GenConfig { recursion: false, ..cfg() });
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let cv = sdg.printf_actual_in_vertices();
        prop_assume!(!cv.is_empty());
        let criterion = Criterion::printf_actuals(&sdg);
        let slice = specialize(&sdg, &criterion).unwrap();
        prop_assume!(!slice.is_empty());
        let regen = specslice::regen::regenerate(&sdg, &ast, &slice).unwrap();
        let report = specslice::reslice::reslice_check(&sdg, &criterion, &slice, &regen).unwrap();
        prop_assert!(
            report.languages_equal,
            "reslice mismatch (seed {}, unmapped {:?})\n{}\n=== slice ===\n{}",
            seed, report.unmapped, src, regen.source
        );
    }
}
