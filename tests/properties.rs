//! Property-based tests over randomly generated programs.
//!
//! These check the paper's theorems on inputs nobody hand-crafted:
//! agreement of the two independent slicer implementations (HRB closure vs.
//! `Elems(pre*)`), Cor. 3.19 mismatch-freedom, Defn. 2.10 minimality,
//! Thm. 3.16 reverse determinism, and end-to-end executability.
//!
//! The harness is a deterministic seeded sweep (the container has no
//! third-party crates, so `proptest` is replaced by explicit seed loops —
//! same properties, reproducible by construction).

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer};
use specslice_corpus::{random_program, GenConfig};
use specslice_fsa::is_reverse_deterministic;
use specslice_sdg::build::build_sdg;
use std::collections::BTreeSet;

fn cfg() -> GenConfig {
    GenConfig {
        n_globals: 3,
        n_funcs: 4,
        max_stmts: 6,
        recursion: true,
    }
}

/// Deterministic seed spread: aligned with proptest's old `0..10_000` range
/// but explicitly enumerable for reproduction.
fn seeds(n: u64, stride: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| (i * stride + 17) % 10_000)
}

/// The two independent interprocedural slicers agree: the HRB two-phase
/// closure slice equals the vertex projection of the PDS
/// stack-configuration slice (for all-contexts criteria).
#[test]
fn closure_slice_equals_elems_of_prestar() {
    for seed in seeds(48, 211) {
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        let cv = slicer.sdg().printf_actual_in_vertices();
        if cv.is_empty() {
            continue;
        }
        let closure = specslice_sdg::slice::backward_closure_slice(slicer.sdg(), &cv);
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let elems = slice.elems();
        assert_eq!(
            elems, closure,
            "Elems(pre*) != HRB closure slice (seed {seed})\n{src}"
        );
    }
}

/// Thm. 3.16: the algorithm's automaton is reverse-deterministic, and the
/// partition is minimal (distinct Elems per variant, Defn. 2.10(3)).
#[test]
fn a6_is_mrd_and_partition_minimal() {
    for seed in seeds(48, 307) {
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        if slice.is_empty() {
            continue;
        }
        assert!(is_reverse_deterministic(&slice.a6), "seed {seed}");
        for proc in &slicer.sdg().procs {
            let sets: Vec<BTreeSet<specslice_sdg::VertexId>> = slice
                .variants()
                .iter()
                .filter(|v| v.proc == proc.id)
                .map(|v| v.vertices.clone())
                .collect();
            let distinct: BTreeSet<_> = sets.iter().collect();
            assert_eq!(
                distinct.len(),
                sets.len(),
                "duplicate Elems for {} (seed {seed})",
                proc.name
            );
        }
    }
}

/// End-to-end executability: the regenerated slice re-checks and prints
/// exactly what the original prints (criterion = all printfs), on three
/// different inputs.
#[test]
fn slices_behave_like_originals() {
    for seed in seeds(24, 419) {
        let x = (seed % 100) as i64;
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        let cv = slicer.sdg().printf_actual_in_vertices();
        if cv.is_empty() {
            continue;
        }
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        let ast = slicer.program().expect("built from source");
        for input in [vec![x], vec![x, x + 1], vec![3 * x % 7]] {
            let a = exec::run(&ExecRequest::new(ast).with_input(&input));
            let b = exec::run(&ExecRequest::new(&regen.program).with_input(&input));
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(
                        ra.output, rb.output,
                        "divergence (seed {seed})\n{src}\n=== slice ===\n{}",
                        regen.source
                    );
                    assert!(rb.steps <= ra.steps, "seed {seed}");
                }
                // Fuel/arith errors must at least agree in kind.
                (Err(_), Err(_)) => {}
                (Ok(_), Err(e)) => {
                    panic!(
                        "slice fails where original succeeds: {e} (seed {seed})\n{}",
                        regen.source
                    );
                }
                (Err(_), Ok(_)) => {} // slice may drop a failing computation
            }
        }
    }
}

/// Feature removal (Alg. 2): the feature seed disappears and the result
/// stays inside the SDG's vertex universe.
#[test]
fn feature_removal_removes_the_seed() {
    for seed in seeds(24, 523) {
        let src = random_program(seed, cfg());
        let slicer = Slicer::from_source(&src).unwrap();
        let main = slicer.sdg().proc_named("main").unwrap();
        let seed_vertex = main.vertices.iter().copied().find(|&v| {
            matches!(
                slicer.sdg().vertex(v).kind,
                specslice_sdg::VertexKind::Statement { .. }
            )
        });
        let Some(sv) = seed_vertex else { continue };
        let slice = slicer.remove_feature(&Criterion::vertex(sv)).unwrap();
        assert!(!slice.elems().contains(&sv), "seed {seed}");
        for v in slice.elems() {
            assert!(v.index() < slicer.sdg().vertex_count(), "seed {seed}");
        }
    }
}

/// §8.3 reslicing idempotence on random programs.
#[test]
fn reslice_languages_agree() {
    for seed in seeds(16, 131).map(|s| s % 2_000) {
        let src = random_program(
            seed,
            GenConfig {
                recursion: false,
                ..cfg()
            },
        );
        let ast = specslice_lang::frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let slicer = Slicer::from_sdg(sdg).unwrap();
        let cv = slicer.sdg().printf_actual_in_vertices();
        if cv.is_empty() {
            continue;
        }
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let slice = slicer.slice(&criterion).unwrap();
        if slice.is_empty() {
            continue;
        }
        let regen = specslice::regen::regenerate(slicer.sdg(), &ast, &slice).unwrap();
        let report = slicer.reslice_check(&criterion, &slice, &regen).unwrap();
        assert!(
            report.languages_equal,
            "reslice mismatch (seed {seed}, unmapped {:?})\n{src}\n=== slice ===\n{}",
            report.unmapped, regen.source
        );
    }
}
