//! The solver differential contract: the one-pass multi-criterion solver
//! must be observationally indistinguishable from the per-criterion oracle.
//! Byte-identical slices, byte-identical memo contents (stats excluded —
//! the whole point of one-pass is that the saturation accounting differs),
//! byte-identical specialized programs, across every corpus program, the
//! three feature grids, thread widths 1/2/4, and a seeded random sweep of
//! criterion subsets.
//!
//! The contract is direction-generic: `SPECSLICE_QUERY_DIRECTION=forward`
//! reruns every batch sweep through `forward_slice_batch` (`post*`)
//! instead of `slice_batch` (`pre*`). CI's solver-matrix job crosses this
//! variable with `SPECSLICE_SOLVER`, so all four solver × direction
//! combinations get the oracle treatment; unset means backward.

use specslice::{BatchResult, Criterion, Slicer, SlicerConfig, Solver, SpecError};
use specslice_corpus::rng::StdRng;
use specslice_sdg::VertexId;

fn session(src: &str, num_threads: usize, solver: Solver) -> Slicer {
    Slicer::from_source_with(
        src,
        SlicerConfig {
            num_threads,
            solver,
            ..SlicerConfig::default()
        },
    )
    .unwrap()
}

/// `SPECSLICE_QUERY_DIRECTION=forward` flips the sweeps to `post*` (any
/// other value, or unset, tests the backward batch path).
fn forward_mode() -> bool {
    std::env::var("SPECSLICE_QUERY_DIRECTION").is_ok_and(|v| v.trim() == "forward")
}

/// One batch in the direction under test.
fn run_batch(slicer: &Slicer, criteria: &[Criterion]) -> BatchResult {
    if forward_mode() {
        slicer.forward_slice_batch(criteria).unwrap()
    } else {
        slicer.slice_batch(criteria).unwrap()
    }
}

/// Per-printf criteria — the paper's evaluation workload.
fn per_printf_criteria(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

/// `SpecSlice` holds only deterministic structure, so Debug is a faithful
/// byte-level fingerprint.
fn fingerprint(slices: &[specslice::SpecSlice]) -> String {
    format!("{slices:?}")
}

/// Memo fingerprint *excluding* stats: keys, canonical A6 automata,
/// variant metadata and content rows, and the main-variant index must all
/// agree between solvers; the recorded saturation sizes legitimately
/// differ (one union saturation vs many solo ones).
fn memo_fingerprint(slicer: &Slicer) -> String {
    slicer
        .export_memo()
        .iter()
        .map(|e| {
            format!(
                "{:?} | {:?} | {:?} | {:?}\n",
                e.key, e.a6, e.variants, e.main_variant
            )
        })
        .collect()
}

/// The twelve corpus programs plus the three feature grids the benchmarks
/// measure.
fn workloads() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    for n in [12, 24, 40] {
        out.push((format!("grid{n}"), specslice_corpus::feature_grid(n)));
    }
    out
}

/// Corpus + grids through both solvers at 1/2/4 threads: slices, memo
/// contents, and the merged specialized program must be byte-identical.
#[test]
fn one_pass_matches_per_criterion_oracle() {
    for (name, src) in workloads() {
        let oracle = session(&src, 1, Solver::PerCriterion);
        let per_printf = per_printf_criteria(&oracle);
        let mut criteria = per_printf.clone();
        criteria.push(Criterion::printf_actuals(oracle.sdg()));
        let batch = run_batch(&oracle, &criteria);
        let oracle_sats = batch.aggregate.saturations_run;
        assert!(
            oracle_sats >= 1 && oracle_sats <= criteria.len(),
            "{name}: oracle ran {oracle_sats} saturations for {} criteria",
            criteria.len()
        );
        let want_slices = fingerprint(&batch.slices);
        let want_memo = memo_fingerprint(&oracle);
        // Specialize over the per-printf set only: for single-printf
        // programs the union criterion duplicates the lone member, which
        // `specialize_program` rejects by design.
        let want_spec = oracle.specialize_program(&per_printf).unwrap();

        for threads in [1, 2, 4] {
            let slicer = session(&src, threads, Solver::OnePass);
            let batch = run_batch(&slicer, &criteria);
            let sats = batch.aggregate.saturations_run;
            assert!(
                sats <= oracle_sats,
                "{name}: one-pass at {threads} threads ran {sats} saturations, \
                 more than the oracle's {oracle_sats}"
            );
            if name.starts_with("grid") {
                // Grid printfs all live in `main`: the whole batch collapses
                // into ⌈n/64⌉ groups (64 is the bitset's member capacity).
                assert_eq!(
                    sats,
                    criteria.len().div_ceil(64),
                    "{name}: grid batch did not collapse into full-width groups"
                );
                assert_eq!(
                    batch.aggregate.criteria_per_saturation,
                    criteria.len().min(64)
                );
            }
            assert_eq!(
                fingerprint(&batch.slices),
                want_slices,
                "{name}: one-pass slices diverged at {threads} threads"
            );
            assert_eq!(
                memo_fingerprint(&slicer),
                want_memo,
                "{name}: one-pass memo diverged at {threads} threads"
            );
            let spec = slicer.specialize_program(&per_printf).unwrap();
            assert_eq!(
                spec.source(),
                want_spec.source(),
                "{name}: specialized program diverged at {threads} threads"
            );
            assert_eq!(
                spec.merged_variant_count(),
                want_spec.merged_variant_count(),
                "{name}: merged variant count diverged at {threads} threads"
            );
        }
    }
}

/// Seeded random criterion subsets: singleton vertices, cross-procedure
/// all-contexts mixes, and the full union, drawn reproducibly from the
/// corpus PRNG. Every batch must agree across solvers.
#[test]
fn random_criterion_subsets_agree_across_solvers() {
    let mut rng = StdRng::seed_from_u64(0x5_11CE);
    for name in ["wc", "gzip", "replace"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let oracle = session(prog.source, 1, Solver::PerCriterion);
        let one_pass = session(prog.source, 4, Solver::OnePass);
        // Draw from statement/predicate vertices — the vertex kinds that
        // are well-formed slicing criteria (the idiom `properties.rs`
        // established for random seeds).
        let eligible: Vec<VertexId> = (0..oracle.sdg().vertex_count() as u32)
            .map(VertexId)
            .filter(|&v| {
                matches!(
                    oracle.sdg().vertex(v).kind,
                    specslice_sdg::VertexKind::Statement { .. }
                        | specslice_sdg::VertexKind::Predicate { .. }
                )
            })
            .collect();
        assert!(eligible.len() >= 8, "{name}: too few statement vertices");
        let draw = |rng: &mut StdRng| eligible[rng.gen_range(0..eligible.len())];

        for round in 0..8 {
            let mut criteria: Vec<Criterion> = Vec::new();
            // A few random singletons (one vertex each, scattered across
            // the program — grouping sees mixed owning procedures).
            for _ in 0..rng.gen_range(1..=4usize) {
                criteria.push(Criterion::vertex(draw(&mut rng)));
            }
            // A cross-procedure mix: several vertices in one criterion.
            let width = rng.gen_range(2..=5usize);
            let vs: Vec<VertexId> = (0..width).map(|_| draw(&mut rng)).collect();
            criteria.push(Criterion::AllContexts(vs));
            // Occasionally the full printf union on top.
            if rng.gen_bool(0.5) {
                criteria.push(Criterion::printf_actuals(oracle.sdg()));
            }

            let want = fingerprint(&run_batch(&oracle, &criteria).slices);
            let got = fingerprint(&run_batch(&one_pass, &criteria).slices);
            assert_eq!(got, want, "{name}: random round {round} diverged");
        }
    }
}

/// The duplicate-criteria guard in `specialize_program` rejects the same
/// input with the same error under both solvers — the validation layer sits
/// above solver dispatch and must not be bypassed by grouping.
#[test]
fn duplicate_criteria_rejected_identically() {
    let prog = specslice_corpus::by_name("wc").unwrap();
    for solver in [Solver::PerCriterion, Solver::OnePass] {
        let slicer = session(prog.source, 2, solver);
        let good = per_printf_criteria(&slicer);
        let criteria = vec![good[0].clone(), good[1].clone(), good[0].clone()];
        let err = slicer.specialize_program(&criteria).unwrap_err();
        match err {
            SpecError::BadCriterion { reason } => {
                assert!(reason.contains("duplicate"), "{solver:?}: {reason}");
                assert!(reason.contains("#2"), "{solver:?}: {reason}");
            }
            other => panic!("{solver:?}: expected BadCriterion, got {other:?}"),
        }
    }
}

/// Criterion order within a batch is reflected positionally, not through
/// group planning: a permuted batch returns the permuted slices under both
/// solvers.
#[test]
fn permuted_batches_answer_positionally() {
    let prog = specslice_corpus::by_name("print_tokens").unwrap();
    let oracle = session(prog.source, 1, Solver::PerCriterion);
    let one_pass = session(prog.source, 2, Solver::OnePass);
    let criteria = per_printf_criteria(&oracle);
    assert!(criteria.len() >= 3);
    let mut permuted = criteria.clone();
    permuted.rotate_left(1);

    let want: Vec<String> = run_batch(&oracle, &permuted)
        .slices
        .iter()
        .map(|s| format!("{s:?}"))
        .collect();
    let got: Vec<String> = run_batch(&one_pass, &permuted)
        .slices
        .iter()
        .map(|s| format!("{s:?}"))
        .collect();
    assert_eq!(got, want);
    // And the rotation really did permute the answers.
    let straight = run_batch(&one_pass, &criteria).slices;
    assert_eq!(format!("{:?}", straight[0]), got[criteria.len() - 1]);
}
