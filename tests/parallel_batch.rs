//! The parallel batch contract: `slice_batch` output is bit-for-bit
//! identical at every thread count, one bad criterion never poisons the
//! rest of a batch, and per-thread accounting adds up.

use specslice::{Criterion, Slicer, SlicerConfig, SpecError};
use specslice_sdg::VertexId;

/// Per-printf criteria of a program — the paper's evaluation workload.
fn per_printf_criteria(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

fn session(src: &str, num_threads: usize) -> Slicer {
    Slicer::from_source_with(
        src,
        SlicerConfig {
            num_threads,
            ..SlicerConfig::default()
        },
    )
    .unwrap()
}

/// A canonical byte representation of a batch's slices. `SpecSlice`
/// contains only deterministic structure (sorted sets/maps, state-ordered
/// variants), so the Debug rendering is a faithful byte-level fingerprint.
fn fingerprint(slices: &[specslice::SpecSlice]) -> String {
    format!("{slices:?}")
}

/// `slice_batch` with `num_threads` ∈ {1, 2, 8} produces byte-identical
/// slices on every corpus program.
#[test]
fn batch_output_is_identical_across_thread_counts() {
    for prog in specslice_corpus::programs() {
        let baseline = session(prog.source, 1);
        let mut criteria = per_printf_criteria(&baseline);
        criteria.push(Criterion::printf_actuals(baseline.sdg()));
        let expected = fingerprint(&baseline.slice_batch(&criteria).unwrap().slices);

        for threads in [2, 8] {
            let slicer = session(prog.source, threads);
            let batch = slicer.slice_batch(&criteria).unwrap();
            assert_eq!(
                fingerprint(&batch.slices),
                expected,
                "{}: {threads}-thread batch diverged from sequential",
                prog.name
            );
            // Regenerated source (the executable artifact) must agree too.
            for (a, b) in baseline
                .slice_batch(&criteria)
                .unwrap()
                .slices
                .iter()
                .zip(&batch.slices)
            {
                assert_eq!(
                    baseline.regenerate(a).unwrap().source,
                    slicer.regenerate(b).unwrap().source,
                    "{}: regenerated source diverged at {threads} threads",
                    prog.name
                );
            }
        }
    }
}

/// A batch containing one `BadCriterion` reports that criterion (by index,
/// deterministically the lowest failing one) without poisoning the other
/// criteria's results.
#[test]
fn bad_criterion_does_not_poison_the_batch() {
    let prog = specslice_corpus::by_name("wc").unwrap();
    for threads in [1, 4] {
        let slicer = session(prog.source, threads);
        let good = per_printf_criteria(&slicer);
        assert!(good.len() >= 2, "wc has several printfs");
        let bad = Criterion::vertex(VertexId(9_999));

        // good[0], bad, good[1..] — the error identifies index 1.
        let mut criteria = vec![good[0].clone(), bad.clone()];
        criteria.extend(good[1..].iter().cloned());

        let err = slicer.slice_batch(&criteria).unwrap_err();
        match &err {
            SpecError::BadCriterion { reason } => {
                assert!(reason.contains("#1"), "{reason}");
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected BadCriterion, got {other:?}"),
        }

        // The non-fail-fast API answers everything else.
        let results = slicer.slice_batch_results(&criteria);
        assert_eq!(results.len(), criteria.len());
        for (i, result) in results.iter().enumerate() {
            if i == 1 {
                assert!(result.is_err(), "criterion #1 is bad");
            } else {
                let slice = result.as_ref().expect("good criterion poisoned");
                let individual = slicer.slice(&criteria[i]).unwrap();
                assert_eq!(
                    format!("{slice:?}"),
                    format!("{individual:?}"),
                    "batch member #{i} diverged from individual slice"
                );
            }
        }

        // The session itself is not poisoned either: later queries work.
        assert!(slicer.slice(&good[0]).is_ok());
    }
}

/// Sequential batches keep the fail-fast contract: nothing after the first
/// failing criterion runs.
#[test]
fn sequential_batches_fail_fast() {
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = session(prog.source, 1);
    let good = per_printf_criteria(&slicer);
    let criteria = vec![
        Criterion::vertex(VertexId(9_999)),
        good[0].clone(),
        good[1].clone(),
    ];
    let before = slicer.queries_run();
    assert!(slicer.slice_batch(&criteria).is_err());
    assert_eq!(
        slicer.queries_run() - before,
        1,
        "criteria after the failure must not run in a sequential batch"
    );
}

/// Two bad criteria: the reported error is always the lowest-indexed one,
/// regardless of which worker hit its error first.
#[test]
fn lowest_indexed_error_wins() {
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = session(prog.source, 8);
    let good = per_printf_criteria(&slicer);
    let criteria = vec![
        good[0].clone(),
        Criterion::vertex(VertexId(7_777)),
        Criterion::vertex(VertexId(9_999)),
    ];
    let err = slicer.slice_batch(&criteria).unwrap_err();
    match err {
        SpecError::BadCriterion { reason } => assert!(reason.contains("#1"), "{reason}"),
        other => panic!("expected BadCriterion, got {other:?}"),
    }
}

/// Per-thread accounting: every criterion is answered exactly once, by
/// exactly one worker, and the worker count respects the config.
#[test]
fn per_thread_stats_add_up() {
    let prog = specslice_corpus::by_name("gzip").unwrap();
    let slicer = session(prog.source, 3);
    let criteria = per_printf_criteria(&slicer);
    let batch = slicer.slice_batch(&criteria).unwrap();

    assert!(!batch.per_thread.is_empty());
    assert!(batch.per_thread.len() <= 3);
    let answered: usize = batch.per_thread.iter().map(|w| w.items).sum();
    assert_eq!(answered, criteria.len());
    // The aggregate's query_time sums per-criterion work across workers.
    assert!(batch.aggregate.query_time > std::time::Duration::ZERO);

    // Sequential batches report exactly one worker.
    let seq = session(prog.source, 1);
    let batch = seq.slice_batch(&criteria).unwrap();
    assert_eq!(batch.per_thread.len(), 1);
    assert_eq!(batch.per_thread[0].items, criteria.len());
}

/// The shared lazily-built reachable automaton is built exactly once even
/// when a parallel batch of all-contexts criteria races for it.
#[test]
fn reachable_automaton_built_once_under_parallelism() {
    let prog = specslice_corpus::by_name("print_tokens").unwrap();
    let slicer = session(prog.source, 8);
    let criteria = per_printf_criteria(&slicer);
    assert_eq!(slicer.reachable_builds(), 0);
    slicer.slice_batch(&criteria).unwrap();
    slicer.slice_batch(&criteria).unwrap();
    assert_eq!(slicer.reachable_builds(), 1);
    assert_eq!(slicer.queries_run(), 2 * criteria.len());
}
