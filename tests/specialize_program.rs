//! Whole-program specialization (`Slicer::specialize_program`):
//! cross-criterion dedup, per-criterion projection fidelity, thread-count
//! determinism, executability of the merged output, and the structured
//! validation of empty / duplicate criterion lists (the companion of
//! `malformed_criteria.rs` for the merge driver).

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer, SlicerConfig, SpecError, SpecializedProgram};

fn session(src: &str, num_threads: usize) -> Slicer {
    Slicer::from_source_with(
        src,
        SlicerConfig {
            num_threads,
            ..SlicerConfig::default()
        },
    )
    .unwrap()
}

/// One criterion per printf call site — the paper's evaluation workload.
fn per_printf_criteria(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

/// A deterministic fingerprint of the merged output (source text plus the
/// provenance tables) for cross-thread-count comparison.
fn fingerprint(spec: &SpecializedProgram) -> String {
    format!(
        "{}\n{:?}\n{:?}",
        spec.regen.source,
        spec.functions
            .iter()
            .map(|f| (&f.name, &f.origin, &f.demanded_by))
            .collect::<Vec<_>>(),
        spec.per_criterion,
    )
}

#[test]
fn empty_criterion_list_is_rejected() {
    let slicer = session("int g; int main() { g = 1; printf(\"%d\", g); }", 1);
    let err = slicer.specialize_program(&[]).unwrap_err();
    assert!(matches!(err, SpecError::BadCriterion { .. }), "{err:?}");
    assert!(err.to_string().contains("at least one criterion"), "{err}");
}

#[test]
fn duplicate_criteria_are_rejected_canonically() {
    let slicer = session("int g; int main() { g = 1; printf(\"%d\", g + g); }", 1);
    let verts = slicer.sdg().printf_actual_in_vertices();
    // Exact duplicate.
    let c = Criterion::AllContexts(verts.clone());
    let err = slicer
        .specialize_program(&[c.clone(), c.clone()])
        .unwrap_err();
    assert!(matches!(err, SpecError::BadCriterion { .. }), "{err:?}");
    assert!(err.to_string().contains("#1 repeats #0"), "{err}");
    // Canonical duplicate: same vertex set, different order/repetition.
    let mut reordered = verts.clone();
    reordered.reverse();
    reordered.push(verts[0]);
    let err = slicer
        .specialize_program(&[c, Criterion::AllContexts(reordered)])
        .unwrap_err();
    assert!(err.to_string().contains("duplicate criteria"), "{err}");
}

#[test]
fn sdg_only_sessions_cannot_specialize() {
    let src = "int g; int main() { g = 2; printf(\"%d\", g); }";
    let program = specslice_lang::frontend(src).unwrap();
    let sdg = specslice_sdg::build::build_sdg(&program).unwrap();
    let slicer = Slicer::from_sdg(sdg).unwrap();
    let criterion = Criterion::printf_actuals(slicer.sdg());
    let err = slicer.specialize_program(&[criterion]).unwrap_err();
    assert!(matches!(err, SpecError::Internal { .. }), "{err:?}");
}

#[test]
fn bad_member_criteria_are_annotated_with_their_index() {
    let slicer = session("int g; int main() { g = 1; printf(\"%d\", g); }", 1);
    let good = Criterion::printf_actuals(slicer.sdg());
    let bad = Criterion::vertex(specslice::VertexId(u32::MAX / 2));
    let err = slicer.specialize_program(&[good, bad]).unwrap_err();
    assert!(err.to_string().contains("criterion #1"), "{err}");
}

/// With a single criterion, the merged program is exactly the solo
/// regeneration — same variants, same names, byte-identical source.
#[test]
fn single_criterion_specialization_matches_solo_regeneration() {
    let slicer = session(specslice_corpus::examples::FIG1, 1);
    let criterion = Criterion::printf_actuals(slicer.sdg());
    let spec = slicer
        .specialize_program(std::slice::from_ref(&criterion))
        .unwrap();
    let solo = slicer
        .regenerate(&slicer.slice(&criterion).unwrap())
        .unwrap();
    assert!(!spec.driver_main);
    assert_eq!(spec.regen.source, solo.source);
    assert_eq!(
        spec.per_criterion,
        vec![(0..spec.functions.len()).collect::<Vec<_>>()]
    );
}

/// The main property (corpus + feature grid): merged variant count never
/// exceeds the per-criterion sum, each criterion's projection is exactly
/// its solo slice (content-compared through the variant store, and the
/// retained slices are byte-identical to solo `slice` calls), the merged
/// output is byte-identical at 1/2/4 worker threads, and both the merged
/// program and every per-criterion regeneration stay executable.
#[test]
fn merged_programs_dedup_and_project_faithfully() {
    let mut workloads: Vec<(String, String, Vec<i64>)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| {
            (
                p.name.to_string(),
                p.source.to_string(),
                p.sample_input.to_vec(),
            )
        })
        .collect();
    workloads.push(("grid12".into(), specslice_corpus::feature_grid(12), vec![]));

    for (name, source, input) in workloads {
        let slicer = session(&source, 1);
        let criteria = per_printf_criteria(&slicer);
        if criteria.is_empty() {
            continue;
        }
        let spec = slicer.specialize_program(&criteria).unwrap();

        // Dedup: the merge never invents variants and never exceeds the sum.
        assert!(
            spec.merged_variant_count() <= spec.total_criterion_variants,
            "{name}: merged {} > total {}",
            spec.merged_variant_count(),
            spec.total_criterion_variants
        );
        assert_eq!(
            spec.reused_variants,
            spec.total_criterion_variants - spec.merged_variant_count(),
            "{name}"
        );

        // Projection fidelity: criterion i's merged functions carry exactly
        // the content of its solo slice.
        let store = slicer.variant_store();
        for (i, criterion) in criteria.iter().enumerate() {
            let solo = slicer.slice(criterion).unwrap();
            assert_eq!(
                format!("{solo:?}"),
                format!("{:?}", spec.criterion_slices[i]),
                "{name}: retained slice #{i} diverged from solo slice"
            );
            let mut solo_content: Vec<(u32, Vec<u32>)> = solo
                .metas()
                .iter()
                .zip(solo.variant_ids())
                .map(|(m, &id)| (m.proc.0, store.row_dense(id)))
                .collect();
            solo_content.sort();
            solo_content.dedup();
            let mut merged_content: Vec<(u32, Vec<u32>)> = spec.per_criterion[i]
                .iter()
                .map(|&f| {
                    (
                        spec.functions[f].proc.0,
                        store.row_dense(spec.functions[f].variant),
                    )
                })
                .collect();
            merged_content.sort();
            assert_eq!(
                solo_content, merged_content,
                "{name}: projection #{i} content diverged"
            );
            // Every projection regenerates and runs.
            let regen = slicer.regenerate(&spec.criterion_slices[i]).unwrap();
            exec::run(&ExecRequest::new(&regen.program).with_input(&input)).unwrap_or_else(|e| {
                panic!(
                    "{name}: projection #{i} failed to run: {e}\n{}",
                    regen.source
                )
            });
        }

        // The merged program is checked by construction; it must also run.
        // (Multi-main merges execute each main variant in criterion order;
        // scanf reads past the provided input yield 0, the interpreter's
        // EOF convention, so the drivers terminate on the corpus loops.)
        let mains = spec.criterion_slices.len().max(1);
        let mut driver_input = Vec::new();
        for _ in 0..mains {
            driver_input.extend_from_slice(&input);
        }
        spec.run(&driver_input).unwrap_or_else(|e| {
            panic!(
                "{name}: merged program failed to run: {e}\n{}",
                spec.regen.source
            )
        });

        // Thread-count determinism: byte-identical merged output at 2 and 4
        // workers.
        let baseline = fingerprint(&spec);
        for threads in [2usize, 4] {
            let parallel = session(&source, threads);
            let spec_t = parallel.specialize_program(&criteria).unwrap();
            assert_eq!(
                baseline,
                fingerprint(&spec_t),
                "{name}: merged output diverged at {threads} threads"
            );
        }
    }
}

/// The feature grid shares nothing between features, so per-feature slices
/// alone do not dedup; adding the whole-program criterion (all printfs at
/// once) makes every feature's `run`/`step` projection appear twice — once
/// demanded solo, once by the union — and the merge must fold those by
/// content interning. The merged output stays executable, and its output
/// is the concatenation of the per-criterion outputs (each grid main
/// variant re-initializes its own accumulators).
#[test]
fn feature_grid_dedups_across_overlapping_criteria() {
    let source = specslice_corpus::feature_grid(12);
    let slicer = session(&source, 2);
    let mut criteria = per_printf_criteria(&slicer);
    criteria.push(Criterion::printf_actuals(slicer.sdg()));
    let spec = slicer.specialize_program(&criteria).unwrap();

    assert!(
        spec.reused_variants > 0,
        "union criterion must dedup against per-feature criteria"
    );
    let st = slicer.store_stats();
    assert!(st.dedup_hits > 0, "store must observe cross-criterion hits");
    assert!(spec.driver_main, "13 criteria demand 13 main variants");

    let merged = spec.run(&[]).unwrap();
    let mut expected = Vec::new();
    for slice in &spec.criterion_slices {
        let regen = slicer.regenerate(slice).unwrap();
        expected.extend(exec::run(&ExecRequest::new(&regen.program)).unwrap().output);
    }
    assert_eq!(
        merged.output, expected,
        "merged grid output must concatenate the per-criterion outputs"
    );
}
