//! Golden tests: every worked example in the paper, end to end.

use specslice::{Criterion, Slicer};
use specslice_lang::frontend;
use specslice_sdg::VertexKind;
use std::collections::BTreeSet;

/// Fig. 1(a) / Fig. 14(a).
const FIG1: &str = r#"
    int g1, g2, g3;
    void p(int a, int b) {
        g1 = a;
        g2 = b;
        g3 = g2;
    }
    int main() {
        g2 = 100;
        p(g2, 2);
        p(g2, 3);
        p(4, g1 + g2);
        printf("%d", g2);
    }
"#;

/// Fig. 2(a): recursion whose specialization needs mutual recursion.
const FIG2: &str = r#"
    int g1, g2;
    void s(int a, int b) {
        g1 = b;
        g2 = a;
    }
    int r(int k) {
        if (k > 0) {
            s(g1, g2);
            r(k - 1);
            s(g1, g2);
        }
    }
    int main() {
        g1 = 1;
        g2 = 2;
        r(3);
        printf("%d\n", g1);
    }
"#;

/// The §1 "flawed method" example: `z = 3` must not survive in `p_1`.
const FLAWED: &str = r#"
    int g1, g2;
    void p(int a, int b) {
        g1 = a;
        int z = 3;
        g2 = b + z;
    }
    int main() {
        p(11, 4);
        p(g2, 2);
        printf("%d", g1);
    }
"#;

fn pipeline(src: &str) -> Slicer {
    Slicer::from_source(src).unwrap()
}

#[test]
fn fig1_two_specializations_of_p() {
    let slicer = pipeline(FIG1);
    let sdg = slicer.sdg();
    let criterion = Criterion::printf_actuals(sdg);
    let slice = slicer.slice(&criterion).unwrap();

    // Exactly two specializations of p (Ex. 2.7), one main.
    let p = sdg.proc_named("p").unwrap();
    let specs = slice.specializations(p.id);
    assert_eq!(specs.len(), 2, "Specializations(p) must have 2 elements");
    assert_eq!(slice.variants_of_proc(sdg, "main").len(), 1);
    assert_eq!(slice.variant_count(), 3);

    // The small variant is {entry, formal-in b, g2 = b, formal-out g2}
    // (the paper's {p1, p3, p5, p8}); the large one has 7 vertices
    // ({p1, p2, p3, p4, p5, p8, p9}).
    let mut sizes: Vec<usize> = specs.iter().map(|s| s.len()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![4, 7]);

    // Kept parameters: p__small keeps only b (index 1); p__big keeps a and b.
    let variants = slice.variants_of_proc(sdg, "p");
    let mut keeps: Vec<Vec<usize>> = variants.iter().map(|v| v.kept_params(sdg)).collect();
    keeps.sort();
    assert_eq!(keeps, vec![vec![0, 1], vec![1]]);
}

#[test]
fn fig1_call_bindings_match_fig5() {
    let slicer = pipeline(FIG1);
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
    let main_variant = slice.variant(slice.main_variant.unwrap());
    // Calls at C1 and C3 (sites 0 and 2) go to the 1-parameter variant;
    // C2 (site 1) goes to the 2-parameter variant.
    let user_sites: Vec<_> = sdg
        .call_sites
        .iter()
        .filter(|c| matches!(c.callee, specslice_sdg::CalleeKind::User(_)))
        .map(|c| c.id)
        .collect();
    assert_eq!(user_sites.len(), 3);
    let callee_of = |site| {
        let idx = main_variant.calls[&site];
        slice.variant(idx).kept_params(sdg).len()
    };
    assert_eq!(callee_of(user_sites[0]), 1, "C1 -> p_1(b)");
    assert_eq!(callee_of(user_sites[1]), 2, "C2 -> p_2(a, b)");
    assert_eq!(callee_of(user_sites[2]), 1, "C3 -> p_1(b)");
    // C1 and C3 call the *same* variant (the minimality of Defn. 2.10).
    assert_eq!(
        main_variant.calls[&user_sites[0]],
        main_variant.calls[&user_sites[2]]
    );
}

#[test]
fn fig1_regenerated_source_matches_fig1b() {
    let slicer = pipeline(FIG1);
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    let src = &regen.source;
    // Fig. 1(b): globals g1, g2 only (g3 dropped); two p variants; main
    // calls p_1 twice and p_2 once.
    assert!(src.contains("int g1, g2;"), "{src}");
    assert!(!src.contains("g3"), "{src}");
    assert!(src.contains("void p__1(int b)"), "{src}");
    assert!(src.contains("void p__2(int a, int b)"), "{src}");
    assert_eq!(src.matches("p__1(").count(), 3, "def + 2 calls: {src}");
    assert_eq!(src.matches("p__2(").count(), 2, "def + 1 call: {src}");
    assert!(src.contains("printf(\"%d\", g2);"), "{src}");
    // And `g2 = 100` stays out (context-sensitivity, unlike Binkley/Weiser).
    assert!(!src.contains("100"), "{src}");
}

#[test]
fn fig2_recursion_becomes_mutual() {
    let slicer = pipeline(FIG2);
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();

    // s specialized into two versions, r into two versions, one main: 5.
    assert_eq!(slice.variants_of_proc(sdg, "s").len(), 2);
    assert_eq!(slice.variants_of_proc(sdg, "r").len(), 2);
    assert_eq!(slice.variant_count(), 5);

    // s variants keep one parameter each: {a} and {b}.
    let mut s_keeps: Vec<Vec<usize>> = slice
        .variants_of_proc(sdg, "s")
        .iter()
        .map(|v| v.kept_params(sdg))
        .collect();
    s_keeps.sort();
    assert_eq!(s_keeps, vec![vec![0], vec![1]]);

    // r variants both keep their single parameter, but call *each other*:
    // direct recursion became mutual recursion.
    let r_variants = slice.variants_of_proc(sdg, "r");
    let r_idx: Vec<usize> = slice
        .metas()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.proc == sdg.proc_named("r").unwrap().id)
        .map(|(i, _)| i)
        .collect();
    let rec_site = sdg
        .call_sites
        .iter()
        .find(|c| {
            matches!(c.callee, specslice_sdg::CalleeKind::User(p)
                if sdg.proc(p).name == "r")
                && sdg.proc(c.caller).name == "r"
        })
        .unwrap()
        .id;
    let callee_of_r0 = r_variants[0].calls[&rec_site];
    let callee_of_r1 = r_variants[1].calls[&rec_site];
    assert_eq!(callee_of_r0, r_idx[1], "r_1 recursively calls r_2");
    assert_eq!(callee_of_r1, r_idx[0], "r_2 recursively calls r_1");

    // Each r variant calls s twice, with *different* s variants in swapped
    // order (Fig. 2(b)).
    let s_sites: Vec<_> = sdg
        .call_sites
        .iter()
        .filter(
            |c| matches!(c.callee, specslice_sdg::CalleeKind::User(p) if sdg.proc(p).name == "s"),
        )
        .map(|c| c.id)
        .collect();
    assert_eq!(s_sites.len(), 2);
    let (first, second) = (s_sites[0], s_sites[1]);
    assert_ne!(
        r_variants[0].calls[&first], r_variants[0].calls[&second],
        "within one r variant the two s calls use different s variants"
    );
    assert_eq!(r_variants[0].calls[&first], r_variants[1].calls[&second]);
    assert_eq!(r_variants[0].calls[&second], r_variants[1].calls[&first]);

    // Regenerated source has the four specialized procedures.
    let regen = slicer.regenerate(&slice).unwrap();
    for name in ["s__1", "s__2", "r__1", "r__2"] {
        assert!(regen.source.contains(name), "{}", regen.source);
    }
}

#[test]
fn flawed_example_z_assignment_only_where_needed() {
    // §1: the flawed algorithm leaves `z = 3` in p_1; the correct algorithm
    // must produce one variant of p with `z = 3` (feeding g2 = b + z) and
    // one without.
    let slicer = pipeline(FLAWED);
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
    let variants = slice.variants_of_proc(sdg, "p");
    assert_eq!(variants.len(), 2);

    // Find the `int z = 3` statement vertex (2nd plain statement of p).
    let p = sdg.proc_named("p").unwrap();
    let z3 = p
        .vertices
        .iter()
        .copied()
        .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
        .nth(1)
        .unwrap();
    let with_z: Vec<bool> = variants.iter().map(|v| v.vertices.contains(&z3)).collect();
    assert_eq!(
        with_z.iter().filter(|&&b| b).count(),
        1,
        "exactly one variant of p contains `int z = 3;`"
    );

    // In the regenerated text: the variant keeping g1 = a (p_1 of the paper)
    // must not contain z.
    let regen = slicer.regenerate(&slice).unwrap();
    let p1_body: String = regen
        .source
        .split("void ")
        .find(|s| s.contains("g1 = a;") && !s.contains("g2 = b"))
        .expect("a variant assigning only g1")
        .to_string();
    assert!(
        !p1_body.contains('z'),
        "EXTRA `z = 3` left in p_1 (the §1 flaw): {p1_body}"
    );
}

/// Generates the Fig. 13 family member `P_k` (k recursive call sites, each
/// zeroing a different temporary after the call).
fn pk_program(k: usize) -> String {
    use std::fmt::Write;
    // Branch i: pk(m-1); t_j = g_j for j != i; t_i = 0.
    fn branch(i: usize, k: usize, s: &mut String) {
        writeln!(s, "pk(m - 1);").unwrap();
        for j in 1..=k {
            if j == i {
                writeln!(s, "t{j} = 0;").unwrap();
            } else {
                writeln!(s, "t{j} = g{j};").unwrap();
            }
        }
    }
    fn chain(i: usize, k: usize, s: &mut String) {
        if i == k {
            branch(i, k, s);
        } else {
            writeln!(s, "if (v == {i}) {{").unwrap();
            branch(i, k, s);
            writeln!(s, "}} else {{").unwrap();
            chain(i + 1, k, s);
            writeln!(s, "}}").unwrap();
        }
    }
    let mut s = String::new();
    let globals: Vec<String> = (1..=k).map(|i| format!("g{i}")).collect();
    writeln!(s, "int {};", globals.join(", ")).unwrap();
    writeln!(s, "void pk(int m) {{").unwrap();
    writeln!(s, "int v;").unwrap();
    (1..=k).for_each(|i| writeln!(s, "int t{i};").unwrap());
    writeln!(s, "if (m == 0) {{ return; }}").unwrap();
    writeln!(s, "v = scanf(\"%d\", &v);").unwrap();
    chain(1, k, &mut s);
    (1..=k).for_each(|j| writeln!(s, "g{j} = t{j};").unwrap());
    writeln!(s, "}}").unwrap();
    writeln!(s, "int main() {{").unwrap();
    (1..=k).for_each(|i| writeln!(s, "g{i} = {i};").unwrap());
    writeln!(s, "pk({k});").unwrap();
    let sum: Vec<String> = (1..=k).map(|i| format!("g{i}")).collect();
    writeln!(s, "printf(\"%d\\n\", {});", sum.join(" + ")).unwrap();
    writeln!(s, "return 0;").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

#[test]
fn fig13_exponential_specialization_growth() {
    // §4.3: P_k yields one specialization of pk per *non-empty* subset of
    // the globals whose actual-outs are needed — 2^k − 1. (The paper quotes
    // the bound 2^k over the full power set; the empty specialization never
    // materializes in a closure slice because a call needing no outputs is
    // simply dropped. The growth is exponential either way.)
    for k in 1..=4 {
        let slicer = pipeline(&pk_program(k));
        let sdg = slicer.sdg();
        let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
        let n = slice.variants_of_proc(sdg, "pk").len();
        assert_eq!(
            n,
            (1 << k) - 1,
            "P_{k} must have 2^{k} - 1 specializations, got {n}"
        );
    }
}

#[test]
fn fig14_three_way_comparison() {
    let slicer = pipeline(FIG1);
    let sdg = slicer.sdg();
    let criterion_verts = sdg.printf_actual_in_vertices();
    let closure = specslice_sdg::slice::backward_closure_slice(sdg, &criterion_verts);
    let mono = specslice_sdg::binkley::monovariant_executable_slice(sdg, &criterion_verts);
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();

    // Polyvariant: elements (subset of) closure (soundness at element level).
    let elems = slice.elems();
    assert!(elems.is_subset(&closure));
    // Monovariant adds extraneous elements (g2 = 100 etc.).
    assert!(!mono.extraneous.is_empty());
    assert!(mono.vertices.len() > closure.len());
    // Polyvariant replicates: total > distinct.
    assert!(slice.total_vertices() > elems.len());
}

#[test]
fn fig15_function_pointers_specialize() {
    let src = r#"
        int f(int a, int b) { return a + b; }
        int g(int a, int b) { return a; }
        int main() {
            int (*p)(int, int);
            int x;
            int c;
            scanf("%d", &c);
            if (c > 0) { p = f; } else { p = g; }
            x = p(1, 2);
            printf("%d", x);
        }
    "#;
    let program = frontend(src).unwrap();
    let lowered = specslice::indirect::lower_indirect_calls(&program).unwrap();
    let slicer = Slicer::from_program(lowered).unwrap();
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();

    // The dispatcher is specialized; g's variant drops parameter b
    // (g only returns a), f's keeps both — the §6.2 outcome.
    let g_variants = slice.variants_of_proc(sdg, "g");
    assert_eq!(g_variants.len(), 1);
    assert_eq!(g_variants[0].kept_params(sdg), vec![0], "g__1(int a)");
    let f_variants = slice.variants_of_proc(sdg, "f");
    assert_eq!(f_variants.len(), 1);
    assert_eq!(f_variants[0].kept_params(sdg), vec![0, 1]);
    assert_eq!(slice.variants_of_proc(sdg, "__dispatch2").len(), 1);

    let regen = slicer.regenerate(&slice).unwrap();
    assert!(regen.program.main().is_some());
}

#[test]
fn specializations_are_distinct_sets() {
    // Defn. 2.10(3): variants merged iff same Elems — so the per-proc
    // specializations read out of A6 must be pairwise distinct.
    for src in [FIG1, FIG2, FLAWED] {
        let slicer = pipeline(src);
        let sdg = slicer.sdg();
        let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
        for proc in &sdg.procs {
            let variants: Vec<specslice::VariantPdg> = slice.variants_of_proc(sdg, &proc.name);
            let distinct: BTreeSet<_> = variants.iter().map(|v| &v.vertices).collect();
            assert_eq!(
                distinct.len(),
                variants.len(),
                "two variants of {} share Elems (minimality violated)",
                proc.name
            );
        }
    }
}
