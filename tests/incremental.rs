//! Incremental re-slicing: `Slicer::apply_edit` + re-slice must be
//! *indistinguishable* from building a fresh session on the edited program —
//! byte-identical slices for every criterion, across every corpus program
//! and a scripted sequence of edits — while actually reusing cached state
//! (memo entries, dependence edges, the reachable automaton) whenever the
//! edit permits.

use specslice::{Criterion, ProgramDelta, ProgramEdit, Slicer, SlicerConfig};
use specslice_corpus::editscript::{self, find_stmt};
use specslice_lang::ast::{BinOp, Expr, Stmt, StmtKind};
use specslice_lang::{frontend, StmtId};

/// Per-printf all-contexts criteria — the paper's evaluation workload.
fn per_printf(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

/// Byte-level fingerprint of a batch answer over the per-printf workload.
fn fingerprint(slicer: &Slicer) -> String {
    let criteria = per_printf(slicer);
    if criteria.is_empty() {
        return String::from("<no printf criteria>");
    }
    format!("{:?}", slicer.slice_batch(&criteria).unwrap().slices)
}

/// Asserts the incremental session answers exactly like a fresh one.
fn assert_matches_fresh(incremental: &Slicer, context: &str) {
    let fresh = Slicer::from_program(incremental.program().unwrap().clone()).unwrap();
    assert_eq!(
        fingerprint(incremental),
        fingerprint(&fresh),
        "incremental != fresh after {context}"
    );
}

/// A scripted edit sequence applicable to any corpus program: perturb an
/// assignment in some non-main function, insert fresh statements into
/// `main`, append a dead procedure, then remove an inserted statement.
/// Returns the number of edits that applied (each is verified against a
/// fresh session before the next one runs).
fn run_edit_script(slicer: &mut Slicer, name: &str) -> usize {
    let mut applied = 0;

    // Edit 1: wrap the first assignment of the first non-main function that
    // has one — `x = e` becomes `x = e + 0` (structurally new, semantically
    // inert, so slice shapes stay comparable while the PDG genuinely
    // rebuilds).
    let program = slicer.program().unwrap().clone();
    let target = program.functions.iter().find_map(|f| {
        (f.name != "main")
            .then(|| editscript::wrap_assignment(&program, &f.name).map(|d| (f.name.clone(), d)))
            .flatten()
    });
    if let Some((func, delta)) = target {
        let report = slicer.apply_edit(&delta).unwrap();
        assert!(
            report.rebuilt_procs.contains(&func),
            "{name}: edited `{func}` not rebuilt"
        );
        assert_matches_fresh(slicer, &format!("{name}: assignment wrap in `{func}`"));
        applied += 1;
    }

    // Edit 2: prepend a fresh local to main (decl + assignment).
    let delta = editscript::insert_probe("main", "__edit_probe", 41);
    let report = slicer.apply_edit(&delta).unwrap();
    assert!(report.rebuilt_procs.contains(&"main".to_string()));
    assert_matches_fresh(slicer, &format!("{name}: insert into main"));
    applied += 1;

    // Edit 3: add a dead (never-called) procedure.
    let delta = editscript::add_dead_procedure("__edit_dead");
    let report = slicer.apply_edit(&delta).unwrap();
    assert_eq!(report.rebuilt_procs, vec!["__edit_dead".to_string()]);
    assert_matches_fresh(slicer, &format!("{name}: dead procedure added"));
    applied += 1;

    // Edit 4: remove the probe assignment again.
    let program = slicer.program().unwrap().clone();
    let delta =
        editscript::remove_probe(&program, "main", "__edit_probe").expect("probe still present");
    slicer.apply_edit(&delta).unwrap();
    assert_matches_fresh(slicer, &format!("{name}: probe removed"));
    applied += 1;

    applied
}

/// The acceptance-criteria property: for every corpus program and the
/// scripted edit sequence, `apply_edit` + re-slice is byte-identical to a
/// fresh `Slicer::from_program` on the edited program.
#[test]
fn corpus_edit_scripts_match_fresh_sessions() {
    for prog in specslice_corpus::programs() {
        let mut slicer = Slicer::from_source(prog.source).unwrap();
        // Warm the memo so the scripts also exercise memo migration.
        let _ = fingerprint(&slicer);
        let applied = run_edit_script(&mut slicer, prog.name);
        assert!(applied >= 3, "{}: only {applied} edits applied", prog.name);
    }
}

/// Edits that cannot affect a criterion's slice keep its memo entry; the
/// next batch answers it without re-running the pipeline.
#[test]
fn unaffected_criteria_are_answered_from_the_memo() {
    const SRC: &str = r#"
        int g1, g2;
        void left(int a) { g1 = a; }
        void right(int b) { g2 = b; }
        int main() {
            left(1);
            right(2);
            printf("%d", g1);
            printf("%d", g2);
            return 0;
        }
    "#;
    let mut slicer = Slicer::from_source(SRC).unwrap();
    let criteria = per_printf(&slicer);
    assert_eq!(criteria.len(), 2);
    slicer.slice_batch(&criteria).unwrap();
    assert_eq!(slicer.memo_len(), 2);
    let hits_before = slicer.memo_hits();

    // Edit `right`: the g1-printf slice never touches it.
    let program = slicer.program().unwrap().clone();
    let id = find_stmt(&program, "right", |k| matches!(k, StmtKind::Assign { .. })).unwrap();
    let delta = ProgramDelta::single(ProgramEdit::ReplaceStmt {
        id,
        stmt: Stmt::new(
            0,
            StmtKind::Assign {
                name: "g2".into(),
                value: Expr::Binary(
                    BinOp::Add,
                    Box::new(Expr::Var("b".into())),
                    Box::new(Expr::Int(0)),
                ),
            },
        ),
    });
    let report = slicer.apply_edit(&delta).unwrap();
    assert!(!report.full_rebuild);
    assert_eq!(report.memo_kept, 1, "g1 criterion must survive: {report:?}");
    assert_eq!(report.memo_dropped, 1, "g2 criterion must not: {report:?}");
    assert!(report.rules_reused > 0, "{report:?}");

    // Re-slice: the surviving entry hits; everything matches a fresh run.
    assert_matches_fresh(&slicer, "right-edit");
    assert!(slicer.memo_hits() > hits_before);
}

/// Edits confined to dead code keep the reachable-configuration automaton.
#[test]
fn dead_code_edits_keep_the_reachable_automaton() {
    const SRC: &str = r#"
        int g;
        void live(int a) { g = a; }
        void dead(int b) { g = b; }
        int main() { live(5); printf("%d", g); return 0; }
    "#;
    let mut slicer = Slicer::from_source(SRC).unwrap();
    let criteria = per_printf(&slicer);
    slicer.slice_batch(&criteria).unwrap(); // forces the reachable automaton
    assert_eq!(slicer.reachable_builds(), 1);

    let program = slicer.program().unwrap().clone();
    let id = find_stmt(&program, "dead", |k| matches!(k, StmtKind::Assign { .. })).unwrap();
    let delta = ProgramDelta::single(ProgramEdit::ReplaceStmt {
        id,
        stmt: Stmt::new(
            0,
            StmtKind::Assign {
                name: "g".into(),
                value: Expr::Int(77),
            },
        ),
    });
    let report = slicer.apply_edit(&delta).unwrap();
    assert!(report.reachable_kept, "{report:?}");
    assert_matches_fresh(&slicer, "dead-code edit");
    // The kept automaton was reused, not rebuilt.
    assert_eq!(slicer.reachable_builds(), 1);

    // A live edit, by contrast, invalidates it.
    let program = slicer.program().unwrap().clone();
    let id = find_stmt(&program, "live", |k| matches!(k, StmtKind::Assign { .. })).unwrap();
    let delta = ProgramDelta::single(ProgramEdit::ReplaceStmt {
        id,
        stmt: Stmt::new(
            0,
            StmtKind::Assign {
                name: "g".into(),
                value: Expr::Var("a".into()),
            },
        ),
    });
    let report = slicer.apply_edit(&delta).unwrap();
    assert!(!report.reachable_kept, "{report:?}");
    assert_matches_fresh(&slicer, "live edit");
}

/// A memoized *empty* slice (unreachable criterion) must be invalidated by
/// an edit that routes a call chain to the criterion's procedure — the
/// criterion itself anchors the entry even though its slice automaton
/// mentions no procedure at all.
#[test]
fn empty_slices_are_invalidated_when_their_criterion_becomes_reachable() {
    const SRC: &str = r#"
        int g;
        void dead(int b) { g = b; }
        int main() { g = 1; printf("%d", g); return 0; }
    "#;
    let mut slicer = Slicer::from_source(SRC).unwrap();
    let dead_stmt = slicer.sdg().proc_named("dead").unwrap().vertices[1];
    let criterion = Criterion::vertex(dead_stmt);
    let before = slicer.slice(&criterion).unwrap();
    assert!(before.is_empty(), "criterion starts unreachable");
    assert_eq!(slicer.memo_len(), 1);

    // Insert `dead(2);` into main: the criterion becomes reachable.
    let delta = ProgramDelta::single(ProgramEdit::InsertStmt {
        function: "main".into(),
        at: 1,
        stmt: Stmt::new(
            0,
            StmtKind::Call(specslice_lang::ast::CallStmt {
                callee: specslice_lang::Callee::Named("dead".into()),
                args: vec![Expr::Int(2)],
                assign_to: None,
            }),
        ),
    });
    let report = slicer.apply_edit(&delta).unwrap();
    assert_eq!(
        report.memo_kept, 0,
        "stale empty slice must drop: {report:?}"
    );

    let dead_stmt = slicer.sdg().proc_named("dead").unwrap().vertices[1];
    let criterion = Criterion::vertex(dead_stmt);
    let after = slicer.slice(&criterion).unwrap();
    assert!(!after.is_empty(), "criterion is reachable after the edit");
    let fresh = Slicer::from_program(slicer.program().unwrap().clone()).unwrap();
    assert_eq!(
        format!("{after:?}"),
        format!("{:?}", fresh.slice(&criterion).unwrap())
    );
}

/// A failing delta leaves the session fully usable and unchanged.
#[test]
fn failed_edits_do_not_corrupt_the_session() {
    const SRC: &str = r#"
        int g;
        void p(int a) { g = a; }
        int main() { p(3); printf("%d", g); return 0; }
    "#;
    let mut slicer = Slicer::from_source(SRC).unwrap();
    let before = fingerprint(&slicer);
    // Unknown statement.
    let bad = ProgramDelta::single(ProgramEdit::RemoveStmt { id: StmtId(9999) });
    assert!(slicer.apply_edit(&bad).is_err());
    // Sema-breaking edit (removes a still-used global).
    let bad = ProgramDelta::single(ProgramEdit::RemoveGlobal("g".into()));
    assert!(slicer.apply_edit(&bad).is_err());
    assert_eq!(fingerprint(&slicer), before);
}

/// Sessions built from a bare SDG cannot be edited (structured error, not a
/// panic), and globals edits take the full-rebuild path but stay exact.
#[test]
fn edit_edge_cases() {
    const SRC: &str = r#"
        int g;
        void p(int a) { g = a; }
        int main() { p(3); printf("%d", g); return 0; }
    "#;
    let program = frontend(SRC).unwrap();
    let sdg = specslice_sdg::build::build_sdg(&program).unwrap();
    let mut sdg_only = Slicer::from_sdg(sdg).unwrap();
    let err = sdg_only.apply_edit(&ProgramDelta::empty()).unwrap_err();
    assert!(err.to_string().contains("SDG only"), "{err}");

    // Globals edit: full reanalysis, still byte-exact.
    let mut slicer = Slicer::from_source(SRC).unwrap();
    let _ = fingerprint(&slicer);
    let delta = ProgramDelta {
        edits: vec![
            ProgramEdit::AddGlobal("h".into()),
            ProgramEdit::InsertStmt {
                function: "p".into(),
                at: usize::MAX,
                stmt: Stmt::new(
                    0,
                    StmtKind::Assign {
                        name: "h".into(),
                        value: Expr::Var("a".into()),
                    },
                ),
            },
        ],
    };
    let report = slicer.apply_edit(&delta).unwrap();
    assert!(report.memo_kept == 0, "{report:?}");
    assert_matches_fresh(&slicer, "globals edit");

    // An empty delta is a no-op that rebuilds nothing and keeps the memo.
    let report = slicer.apply_edit(&ProgramDelta::empty()).unwrap();
    assert!(report.rebuilt_procs.is_empty(), "{report:?}");
    assert_eq!(report.memo_dropped, 0, "{report:?}");
    assert_matches_fresh(&slicer, "empty delta");
}

/// Seeded sweep over generated programs: one assignment-wrapping edit per
/// program, incremental vs. fresh, at 1 and 2 worker threads.
#[test]
fn random_programs_survive_edits_at_every_thread_count() {
    for seed in (0..16u64).map(|i| i * 449 + 23) {
        let src = specslice_corpus::random_program(
            seed,
            specslice_corpus::GenConfig {
                n_globals: 3,
                n_funcs: 4,
                max_stmts: 6,
                recursion: true,
            },
        );
        for threads in [1usize, 2] {
            let mut slicer = Slicer::from_source_with(
                &src,
                SlicerConfig {
                    num_threads: threads,
                    ..SlicerConfig::default()
                },
            )
            .unwrap();
            let _ = fingerprint(&slicer);
            let program = slicer.program().unwrap().clone();
            let target = program.functions.iter().find_map(|f| {
                find_stmt(&program, &f.name, |k| matches!(k, StmtKind::Assign { .. }))
            });
            let Some(id) = target else { continue };
            let mut replacement = None;
            program.visit_all(|_, s| {
                if s.id == id {
                    if let StmtKind::Assign { name, value } = &s.kind {
                        replacement = Some(Stmt::new(
                            s.line,
                            StmtKind::Assign {
                                name: name.clone(),
                                value: Expr::Binary(
                                    BinOp::Add,
                                    Box::new(value.clone()),
                                    Box::new(Expr::Int(0)),
                                ),
                            },
                        ));
                    }
                }
            });
            let delta = ProgramDelta::single(ProgramEdit::ReplaceStmt {
                id,
                stmt: replacement.unwrap(),
            });
            slicer
                .apply_edit(&delta)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_matches_fresh(&slicer, &format!("seed {seed} ({threads} threads)"));
        }
    }
}

/// One-pass incremental re-slicing: a feature-grid session under
/// [`Solver::OnePass`] runs an edit script through `apply_edit`, and each
/// re-slice must (a) keep every untouched feature's memo entry and answer
/// it as a hit, (b) pay exactly one fresh saturation for the dropped
/// criteria (they all live in `main`, so they re-group), and (c) stay
/// byte-identical to a *fresh per-criterion* session on the edited program
/// — the incremental one-pass path diffed against the cold oracle.
#[test]
fn one_pass_edit_script_matches_fresh_per_criterion_sessions() {
    use specslice::Solver;
    let src = specslice_corpus::feature_grid(12);
    let mut slicer = Slicer::from_source_with(
        &src,
        SlicerConfig {
            num_threads: 2,
            solver: Solver::OnePass,
            ..SlicerConfig::default()
        },
    )
    .unwrap();
    let criteria = per_printf(&slicer);
    assert!(criteria.len() >= 12);
    let batch = slicer.slice_batch(&criteria).unwrap();
    assert_eq!(
        batch.aggregate.saturations_run, 1,
        "grid batch must share one saturation"
    );
    assert_eq!(slicer.memo_len(), criteria.len());

    for func in ["step3", "step7", "run11"] {
        let program = slicer.program().unwrap().clone();
        let delta = editscript::wrap_assignment(&program, func)
            .unwrap_or_else(|| panic!("`{func}` has no assignment to wrap"));
        let report = slicer.apply_edit(&delta).unwrap();
        assert!(!report.full_rebuild, "{func}: {report:?}");
        // Exactly one feature's slice touches the edited procedure.
        assert_eq!(report.memo_dropped, 1, "{func}: {report:?}");
        assert_eq!(report.memo_kept, criteria.len() - 1, "{func}: {report:?}");

        let hits_before = slicer.memo_hits();
        let batch = slicer.slice_batch(&criteria).unwrap();
        // Kept entries replay from the memo; the lone dropped criterion
        // re-saturates solo.
        assert_eq!(
            slicer.memo_hits() - hits_before,
            criteria.len() - 1,
            "{func}: kept entries must answer as memo hits"
        );
        assert_eq!(
            batch.aggregate.saturations_run, 1,
            "{func}: only the invalidated criterion re-saturates"
        );

        // Diff against a fresh per-criterion session on the edited program.
        let fresh = Slicer::from_program_with(
            slicer.program().unwrap().clone(),
            SlicerConfig {
                num_threads: 1,
                solver: Solver::PerCriterion,
                ..SlicerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", batch.slices),
            format!("{:?}", fresh.slice_batch(&criteria).unwrap().slices),
            "{func}: incremental one-pass diverged from the cold oracle"
        );
        assert_eq!(slicer.memo_len(), criteria.len(), "{func}: memo refilled");
    }
}

/// `ProgramDelta::diff`-driven editing: rewrite a whole function body from
/// new source and re-slice.
#[test]
fn diff_driven_function_rewrite() {
    const OLD: &str = r#"
        int g1, g2;
        void p(int a, int b) { g1 = a; g2 = b; }
        int main() { p(1, 2); printf("%d", g1); printf("%d", g2); return 0; }
    "#;
    const NEW: &str = r#"
        int g1, g2;
        void p(int a, int b) { g1 = a + b; g2 = b; }
        int main() { p(1, 2); printf("%d", g1); printf("%d", g2); return 0; }
    "#;
    let mut slicer = Slicer::from_source(OLD).unwrap();
    let _ = fingerprint(&slicer);
    let delta = ProgramDelta::diff(slicer.program().unwrap(), &frontend(NEW).unwrap());
    let report = slicer.apply_edit(&delta).unwrap();
    assert_eq!(report.rebuilt_procs, vec!["p".to_string()]);
    assert_matches_fresh(&slicer, "diff-driven rewrite");
    // The g1 slice now includes b's actual-in: behaviorally visible.
    let criteria = per_printf(&slicer);
    let batch = slicer.slice_batch(&criteria).unwrap();
    assert!(!batch.slices[0].elems().is_empty());
}
