//! End-to-end pipeline over the full corpus: frontend → SDG → all four
//! slicers → regeneration → re-check → execution, with the semantic
//! guarantee verified (specialized slices print the same values as the
//! original at every criterion `printf`).

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer};
use specslice_lang::frontend;
use specslice_sdg::build::build_sdg;
use specslice_sdg::slice::{backward_closure_slice, parameter_mismatches, weiser_executable_slice};

#[test]
fn corpus_programs_run_and_slice() {
    for prog in specslice_corpus::programs() {
        let slicer =
            Slicer::from_source(prog.source).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let ast = slicer.program().expect("built from source");

        // Original execution.
        let original = exec::run(&ExecRequest::new(ast).with_input(prog.sample_input))
            .unwrap_or_else(|e| panic!("{} run: {e}", prog.name));
        assert!(
            !original.output.is_empty(),
            "{}: program printed nothing",
            prog.name
        );

        // Specialization slice w.r.t. every printf.
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let slice = slicer
            .slice(&criterion)
            .unwrap_or_else(|e| panic!("{} specialize: {e}", prog.name));
        assert!(!slice.is_empty(), "{}: empty slice", prog.name);

        // Element-level soundness: Elems ⊆ closure slice.
        let cv = slicer.sdg().printf_actual_in_vertices();
        let outside = specslice::stats::elements_outside_closure(slicer.sdg(), &slice, &cv);
        assert!(
            outside.is_empty(),
            "{}: vertices outside closure slice: {outside:?}",
            prog.name
        );
        // Element-level completeness for all-contexts criteria.
        let missing = specslice::stats::closure_not_covered(slicer.sdg(), &slice, &cv);
        assert!(
            missing.is_empty(),
            "{}: closure vertices not covered: {missing:?}",
            prog.name
        );

        // Regenerate and execute; full printf criterion ⇒ identical output.
        let regen = slicer
            .regenerate(&slice)
            .unwrap_or_else(|e| panic!("{} regen: {e}", prog.name));
        // The regenerated source re-parses through the whole frontend.
        let reparsed = frontend(&regen.source)
            .unwrap_or_else(|e| panic!("{} reparse: {e}\n{}", prog.name, regen.source));
        let sliced_run = exec::run(&ExecRequest::new(&reparsed).with_input(prog.sample_input))
            .unwrap_or_else(|e| panic!("{} sliced run: {e}\n{}", prog.name, regen.source));
        assert_eq!(
            original.output, sliced_run.output,
            "{}: specialized slice diverged\n{}",
            prog.name, regen.source
        );
        assert!(
            sliced_run.steps <= original.steps,
            "{}: slice slower than original ({} > {})",
            prog.name,
            sliced_run.steps,
            original.steps
        );
    }
}

#[test]
fn corpus_baselines_are_mismatch_free() {
    for prog in specslice_corpus::programs() {
        let ast = frontend(prog.source).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let cv = sdg.printf_actual_in_vertices();

        let closure = backward_closure_slice(&sdg, &cv);
        let mono = specslice_sdg::binkley::monovariant_executable_slice(&sdg, &cv);
        let weiser = weiser_executable_slice(&sdg, &cv);

        assert!(
            parameter_mismatches(&sdg, &mono.vertices).is_empty(),
            "{}: Binkley slice has mismatches",
            prog.name
        );
        assert!(
            parameter_mismatches(&sdg, &weiser).is_empty(),
            "{}: Weiser slice has mismatches",
            prog.name
        );
        // Binkley ⊇ closure; Weiser is at least as large as Binkley here.
        assert!(mono.vertices.is_superset(&closure), "{}", prog.name);
        assert!(weiser.len() >= mono.vertices.len(), "{}", prog.name);
    }
}

#[test]
fn corpus_variant_distribution_is_modest() {
    // The paper's Fig. 18 observation: most procedures have one variant,
    // and no explosion occurs on realistic programs.
    let mut single = 0usize;
    let mut multi = 0usize;
    let mut max_variants = 0usize;
    for prog in specslice_corpus::programs() {
        let slicer = Slicer::from_source(prog.source).unwrap();
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let stats = specslice::stats::slice_stats(
            slicer.sdg(),
            &slice,
            &slicer.sdg().printf_actual_in_vertices(),
        );
        for (&n, &count) in &stats.variant_histogram {
            if n == 1 {
                single += count;
            } else {
                multi += count;
            }
        }
        max_variants = max_variants.max(stats.max_variants);
    }
    assert!(single > 0);
    assert!(
        max_variants <= 8,
        "unexpected specialization explosion: {max_variants}"
    );
    // Most procedures keep a single version (90.6% in the paper).
    assert!(single >= multi, "single={single} multi={multi}");
}

#[test]
fn bug_site_configuration_slicing_works() {
    // A §8-style criterion: one (vertex, call-stack) configuration.
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = Slicer::from_source(prog.source).unwrap();
    let sdg = slicer.sdg();
    // Pick the count_char entry under the call site in main's loop.
    let count_char = sdg.proc_named("count_char").unwrap();
    let site = sdg
        .call_sites
        .iter()
        .find(|c| matches!(c.callee, specslice_sdg::CalleeKind::User(p) if p == count_char.id))
        .unwrap();
    let criterion = Criterion::configuration(count_char.entry, vec![site.id]);
    let slice = slicer.slice(&criterion).unwrap();
    assert!(!slice.is_empty());
    // count_char has exactly one variant here.
    assert_eq!(slice.variants_of_proc(sdg, "count_char").len(), 1);
}

#[test]
fn reslicing_check_on_small_programs() {
    // §8.3 idempotence on the paper examples (whole-corpus reslicing is
    // exercised by the experiments harness).
    for src in [
        specslice_corpus::examples::FIG1,
        specslice_corpus::examples::FIG2,
        specslice_corpus::examples::FLAWED,
    ] {
        let slicer = Slicer::from_source(src).unwrap();
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let slice = slicer.slice(&criterion).unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        let report = slicer.reslice_check(&criterion, &slice, &regen).unwrap();
        assert!(
            report.languages_equal,
            "reslice mismatch (unmapped: {:?})",
            report.unmapped
        );
    }
}

#[test]
fn feature_removal_on_corpus_program() {
    // Remove the "total_chars" feature from wc: the char counter disappears
    // but lines/words survive.
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = Slicer::from_source(prog.source).unwrap();
    let sdg = slicer.sdg();
    let count_char = sdg.proc_named("count_char").unwrap();
    // Criterion: the `total_chars = total_chars + 1` statement.
    let tc_stmt = count_char
        .vertices
        .iter()
        .copied()
        .find(|&v| {
            matches!(
                sdg.vertex(v).kind,
                specslice_sdg::VertexKind::Statement { .. }
            )
        })
        .unwrap();
    let slice = slicer.remove_feature(&Criterion::vertex(tc_stmt)).unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    assert!(!regen.source.contains("total_chars"), "{}", regen.source);
    // The other counters survive and the program still runs.
    assert!(regen.source.contains("total_lines"), "{}", regen.source);
    let run = exec::run(&ExecRequest::new(&regen.program).with_input(prog.sample_input)).unwrap();
    let orig =
        exec::run(&ExecRequest::new(slicer.program().unwrap()).with_input(prog.sample_input))
            .unwrap();
    // total_lines (first printf) agrees with the original.
    assert_eq!(run.output[0], orig.output[0]);
}
