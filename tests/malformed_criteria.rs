//! Malformed criteria must surface as `Err` from every query entry point —
//! `slice`, `slice_batch`, `slice_batch_results`, `remove_feature` — at
//! every thread count, and must never panic a worker or poison the rest of
//! a batch. Also covers the `num_threads == 0` configuration regression.

use specslice::{CallSiteId, Criterion, Slicer, SlicerConfig, SpecSlice, VertexId};

const SRC: &str = r#"
    int g1, g2;
    void p(int a, int b) { g1 = a; g2 = b; }
    int main() {
        g2 = 100;
        p(g2, 2);
        p(g2, 3);
        printf("%d", g1);
        printf("%d", g2);
        return 0;
    }
"#;

fn session(num_threads: usize) -> Slicer {
    Slicer::from_source_with(
        SRC,
        SlicerConfig {
            num_threads,
            ..SlicerConfig::default()
        },
    )
    .unwrap()
}

/// The malformed criteria under test, with a name for failure messages.
fn bad_criteria(slicer: &Slicer) -> Vec<(&'static str, Criterion)> {
    let p = slicer.sdg().proc_named("p").unwrap();
    let printf_site = slicer.sdg().printf_call_sites().next().unwrap().id;
    vec![
        (
            "unknown vertex (out of range)",
            Criterion::vertex(VertexId(u32::MAX / 2)),
        ),
        ("empty all-contexts set", Criterion::AllContexts(vec![])),
        ("empty configuration set", Criterion::Configurations(vec![])),
        (
            "unknown call site in stack",
            Criterion::configuration(p.entry, vec![CallSiteId(9999)]),
        ),
        (
            "stack through a procedure that is not the callee",
            Criterion::configuration(p.entry, vec![printf_site]),
        ),
        (
            "stack not bottoming out in main",
            Criterion::configuration(p.entry, vec![]),
        ),
    ]
}

#[test]
fn every_entry_point_rejects_malformed_criteria() {
    for threads in [1usize, 2, 4] {
        let slicer = session(threads);
        for (what, criterion) in bad_criteria(&slicer) {
            assert!(
                slicer.slice(&criterion).is_err(),
                "slice accepted {what} at {threads} threads"
            );
            assert!(
                slicer.slice_with_stats(&criterion).is_err(),
                "slice_with_stats accepted {what} at {threads} threads"
            );
            assert!(
                slicer
                    .slice_batch(std::slice::from_ref(&criterion))
                    .is_err(),
                "slice_batch accepted {what} at {threads} threads"
            );
            let results = slicer.slice_batch_results(std::slice::from_ref(&criterion));
            assert!(
                results[0].is_err(),
                "slice_batch_results accepted {what} at {threads} threads"
            );
            assert!(
                slicer.remove_feature(&criterion).is_err(),
                "remove_feature accepted {what} at {threads} threads"
            );
        }
    }
}

/// A bad criterion inside a parallel batch reports the lowest failing index
/// and leaves the good criteria untouched in the non-fail-fast variant.
#[test]
fn mixed_batches_fail_deterministically_without_poisoning_workers() {
    for threads in [1usize, 2, 4] {
        let slicer = session(threads);
        let good: Vec<Criterion> = slicer
            .sdg()
            .printf_actual_in_vertices()
            .into_iter()
            .map(Criterion::vertex)
            .collect();
        assert!(good.len() >= 2);
        for (what, bad) in bad_criteria(&slicer) {
            // bad in the middle: fail-fast reports its index.
            let mut batch = good.clone();
            batch.insert(1, bad.clone());
            let err = slicer.slice_batch(&batch).unwrap_err();
            assert!(
                err.to_string().contains("criterion #1"),
                "{what} at {threads} threads: {err}"
            );
            // non-fail-fast: everything else still answers, identically to
            // a clean batch.
            let results = slicer.slice_batch_results(&batch);
            assert!(results[1].is_err(), "{what} at {threads} threads");
            let clean: Vec<SpecSlice> = slicer.slice_batch(&good).unwrap().slices;
            let kept: Vec<&SpecSlice> = results
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != 1)
                .map(|(_, r)| r.as_ref().unwrap())
                .collect();
            for (a, b) in clean.iter().zip(kept) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
            }
        }
    }
}

/// Criteria over raw automata with an ill-shaped language are rejected too.
#[test]
fn ill_shaped_automaton_criteria_are_rejected() {
    let slicer = session(2);
    // A language whose words loop back into the initial state (violates the
    // `vertex call-site*` shape).
    let mut nfa = specslice_fsa::Nfa::new();
    let q0 = nfa.initial();
    let sym = specslice_fsa::Symbol(0);
    nfa.add_transition(q0, Some(sym), q0);
    nfa.set_final(q0);
    let criterion = Criterion::Automaton(nfa);
    assert!(slicer.slice(&criterion).is_err());
    assert!(slicer
        .slice_batch(std::slice::from_ref(&criterion))
        .is_err());
    assert!(slicer.slice_batch_results(&[criterion])[0].is_err());
}

/// `num_threads: 0` regression: clamped to one worker at construction, the
/// session answers batches sequentially instead of handing a zero width to
/// the execution layer.
#[test]
fn zero_thread_config_is_clamped_to_one() {
    let slicer = session(0);
    assert_eq!(slicer.config().num_threads, 1);
    let criteria: Vec<Criterion> = slicer
        .sdg()
        .printf_actual_in_vertices()
        .into_iter()
        .map(Criterion::vertex)
        .collect();
    let batch = slicer.slice_batch(&criteria).unwrap();
    assert_eq!(batch.slices.len(), criteria.len());
    assert_eq!(batch.per_thread.len(), 1, "sequential batch: one worker");
    // Identical answers to an explicit single-thread session.
    let one = session(1);
    assert_eq!(
        format!("{:?}", batch.slices),
        format!("{:?}", one.slice_batch(&criteria).unwrap().slices)
    );
}
