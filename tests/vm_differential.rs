//! Differential testing of the two execution backends: the bytecode VM
//! must be observationally identical to the tree-walking interpreter —
//! same output vector, same output sites, same exit code, same step count,
//! same `ExecError` variant — on every program the project can produce.
//!
//! Coverage: all twelve corpus programs and the grid12/24/40 feature
//! grids, as originals, as per-printf specialized programs, and as the
//! whole-criterion-set merged program; a fuel-boundary sweep (the exact
//! step at which `OutOfFuel` fires is part of the contract); targeted
//! error-path programs (recursion limit, division by zero in statement and
//! loop-condition position, null/garbage function pointers, `exit`
//! unwinding, scanf exhaustion, uninitialized reads); and a seeded
//! random-program sweep via `corpus::generate`.

use specslice::exec::{ExecBackend, ExecError, ExecOutcome, ExecRequest, Interp, Vm};
use specslice::{Criterion, Program, Slicer};
use specslice_corpus::{random_program, GenConfig};

/// Runs the request on both backends and asserts full-`Result` equality
/// (outcome fields *and* error variants with payloads).
fn differential(program: &Program, input: &[i64], label: &str) -> Result<ExecOutcome, ExecError> {
    let req = ExecRequest::new(program)
        .with_input(input)
        .with_fuel(ExecRequest::DEEP_FUEL);
    differential_req(&req, label)
}

fn differential_req(req: &ExecRequest<'_>, label: &str) -> Result<ExecOutcome, ExecError> {
    let a = Interp.exec(req);
    let b = Vm.exec(req);
    assert_eq!(a, b, "{label}: backends diverged");
    b
}

/// Every workload program: the original, each per-printf specialization,
/// and the merged whole-criterion-set program, through both backends.
#[test]
fn corpus_and_grids_original_and_specialized() {
    let mut workloads: Vec<(String, String, Vec<i64>)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| {
            (
                p.name.to_string(),
                p.source.to_string(),
                p.sample_input.to_vec(),
            )
        })
        .collect();
    for n in [12, 24, 40] {
        workloads.push((
            format!("grid{n}"),
            specslice_corpus::feature_grid(n),
            vec![],
        ));
    }

    for (name, source, input) in workloads {
        let slicer = Slicer::from_source(&source).unwrap();
        let original = slicer.program().unwrap();
        let orig = differential(original, &input, &format!("{name} (original)")).unwrap();

        let criteria: Vec<Criterion> = slicer
            .sdg()
            .printf_call_sites()
            .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
            .collect();
        for (i, criterion) in criteria.iter().enumerate() {
            let slice = slicer.slice(criterion).unwrap();
            let regen = slicer.regenerate(&slice).unwrap();
            let spec = differential(
                &regen.program,
                &input,
                &format!("{name} (specialized #{i})"),
            )
            .unwrap();
            assert!(
                spec.steps <= orig.steps,
                "{name} #{i}: specialization did more work"
            );
        }

        // The merged program (driver main when several criteria demand
        // different main variants; drivers re-run main per criterion, so
        // feed the input once per criterion).
        if !criteria.is_empty() {
            let spec = slicer.specialize_program(&criteria).unwrap();
            let mut driver_input = Vec::new();
            for _ in 0..criteria.len() {
                driver_input.extend_from_slice(&input);
            }
            differential(
                &spec.regen.program,
                &driver_input,
                &format!("{name} (merged)"),
            )
            .unwrap();
        }
    }
}

/// `OutOfFuel` must fire at the same step with the same payload: run to
/// completion to learn the true cost S, then re-run at fuel S (succeeds on
/// the boundary) and S-1 (both fail with `steps: S` — the first uncovered
/// tick).
#[test]
fn fuel_boundary_is_exact() {
    let wc = specslice_corpus::by_name("wc").unwrap();
    let cases: [(&str, String, Vec<i64>); 2] = [
        ("wc", wc.source.to_string(), vec![1, 1, 0, 2, 1]),
        ("grid12", specslice_corpus::feature_grid(12), vec![]),
    ];
    for (name, src, input) in cases {
        let program = specslice_lang::frontend(&src).unwrap();
        let full = differential(&program, &input, name).unwrap();
        let s = full.steps;
        assert!(s > 1, "{name}: trivially short run");

        let exact = ExecRequest::new(&program).with_input(&input).with_fuel(s);
        let at = differential_req(&exact, &format!("{name} (fuel=S)")).unwrap();
        assert_eq!(at.steps, s);

        let starved = ExecRequest::new(&program)
            .with_input(&input)
            .with_fuel(s - 1);
        let err = differential_req(&starved, &format!("{name} (fuel=S-1)")).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel { steps: s });
    }
}

#[test]
fn recursion_limit_parity() {
    let program = specslice_lang::frontend(
        r#"
        int f(int n) { int r; r = f(n + 1); return r; }
        int main() { int x; x = f(0); printf("%d", x); return 0; }
        "#,
    )
    .unwrap();
    for limit in [0u32, 1, 7, 192] {
        let req = ExecRequest::new(&program).with_recursion_limit(limit);
        let err = differential_req(&req, &format!("recursion limit {limit}")).unwrap_err();
        assert_eq!(err, ExecError::RecursionLimit);
    }
    // A program that recurses to depth d succeeds at limit d, fails at d-1.
    let bounded = specslice_lang::frontend(
        r#"
        int f(int n) { int r; if (n <= 0) { return 0; } r = f(n - 1); return r + 1; }
        int main() { int x; x = f(5); printf("%d", x); return 0; }
        "#,
    )
    .unwrap();
    // f(5) nests 6 calls below main: depth 6.
    let ok = differential_req(
        &ExecRequest::new(&bounded).with_recursion_limit(6),
        "depth 6 at limit 6",
    )
    .unwrap();
    assert_eq!(ok.output, vec![5]);
    let err = differential_req(
        &ExecRequest::new(&bounded).with_recursion_limit(5),
        "depth 6 at limit 5",
    )
    .unwrap_err();
    assert_eq!(err, ExecError::RecursionLimit);
}

/// Division by zero reports the enclosing statement's line — including the
/// `while` condition case, where the walker charges the `while`'s own line.
#[test]
fn division_by_zero_line_parity() {
    let cases = [
        (
            "int main() {\nint d;\nd = 0;\nint x;\nx = 1 / d;\nreturn x; }",
            5u32,
        ),
        (
            "int main() {\nint d;\nd = 0;\nwhile (10 / d) { d = 1; }\nreturn 0; }",
            4,
        ),
        (
            "int main() {\nint d;\nd = 0;\nif (10 % d) { d = 1; }\nreturn 0; }",
            4,
        ),
    ];
    for (src, line) in cases {
        let program = specslice_lang::frontend(src).unwrap();
        let err = differential(&program, &[], src).unwrap_err();
        assert_eq!(err, ExecError::DivisionByZero { line }, "{src}");
    }
}

#[test]
fn bad_function_pointer_parity() {
    // The only bad pointer a *checked* program can produce is null (an
    // uninitialized function pointer reads 0); both backends must report
    // the call statement's line.
    let src = "int f(int a) { return a; }\nint main() { int (*p)(int); int r;\nr = p(1);\nprintf(\"%d\", r); return 0; }";
    let program = specslice_lang::frontend(src).unwrap();
    let err = differential(&program, &[], "null fnptr").unwrap_err();
    assert_eq!(err, ExecError::BadFunctionPointer { line: 3 });
}

/// Exit paths: `exit(n)` from nested calls halts both backends with the
/// same code, output, and step count; `main`'s return value is the exit
/// code; fall-through is 0.
#[test]
fn exit_path_parity() {
    let cases = [
        (
            "exit unwinds",
            r#"
            int g;
            void die(int c) { g = c; exit(g + 1); }
            void mid(int c) { die(c); printf("%d", 111); }
            int main() { mid(41); printf("%d", 222); return 9; }
            "#,
            42i64,
        ),
        (
            "main return",
            r#"int main() { printf("%d", 1); return 7; }"#,
            7,
        ),
        ("fall-through", r#"int main() { printf("%d", 1); }"#, 0),
        (
            "exit in main",
            r#"int main() { exit(3); printf("%d", 1); return 0; }"#,
            3,
        ),
    ];
    for (label, src, code) in cases {
        let program = specslice_lang::frontend(src).unwrap();
        let out = differential(&program, &[], label).unwrap();
        assert_eq!(out.exit_code, code, "{label}");
    }
}

/// Exhausted scanf reads 0 without counting; uninitialized variables read
/// 0; bare declarations re-zero in loops. All observable, all identical.
#[test]
fn input_and_zero_semantics_parity() {
    let program = specslice_lang::frontend(
        r#"
        int main() {
            int a; int b; int n; int i;
            n = scanf("%d %d", &a, &b);
            printf("%d %d %d", n, a, b);
            i = 0;
            while (i < 2) {
                int fresh;
                printf("%d", fresh);
                fresh = 77;
                i = i + 1;
            }
            n = scanf("%d", &a);
            printf("%d %d", n, a);
            return 0;
        }
        "#,
    )
    .unwrap();
    let out = differential(&program, &[9], "zero semantics").unwrap();
    assert_eq!(out.output, vec![1, 9, 0, 0, 0, 0, 0]);
    assert_eq!(out.inputs_consumed, 1);
}

/// Seeded random-program sweep: full-`Result` agreement (success fields or
/// error variants) on generated programs, original and specialized, over
/// several input streams.
#[test]
fn random_program_sweep() {
    let cfg = || GenConfig {
        n_globals: 3,
        n_funcs: 4,
        max_stmts: 6,
        recursion: true,
    };
    for i in 0..60u64 {
        let seed = (i * 131 + 7) % 10_000;
        let src = random_program(seed, cfg());
        let program = specslice_lang::frontend(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: generator emitted invalid program: {e}"));
        let x = (seed % 100) as i64;
        for input in [vec![], vec![x], vec![x, -x, x + 1]] {
            // Small fuel on purpose: some generated programs loop, and the
            // OutOfFuel boundary is part of the differential contract.
            let req = ExecRequest::new(&program)
                .with_input(&input)
                .with_fuel(200_000);
            let _ = differential_req(&req, &format!("seed {seed}, input {input:?}\n{src}"));
        }
        // And the all-printfs specialization, when the program prints.
        let slicer = Slicer::from_source(&src).unwrap();
        if slicer.sdg().printf_call_sites().next().is_none() {
            continue;
        }
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        let spec_input = [x];
        let req = ExecRequest::new(&regen.program)
            .with_input(&spec_input)
            .with_fuel(200_000);
        let _ = differential_req(&req, &format!("seed {seed} (specialized)\n{src}"));
    }
}

/// The crate-level backend registry answers by name and by env selection —
/// the CI matrix legs rely on both backends being reachable this way.
#[test]
fn backend_registry_round_trip() {
    use specslice::exec::{backend, parse_backend, BackendKind};
    for kind in [BackendKind::Interp, BackendKind::Vm] {
        let b = backend(kind);
        assert_eq!(b.name(), kind.name());
        assert_eq!(parse_backend(kind.name()), Ok(kind));
    }
    let program = specslice_lang::frontend(r#"int main() { printf("%d", 5); return 0; }"#).unwrap();
    let req = ExecRequest::new(&program);
    assert_eq!(
        backend(BackendKind::Interp).exec(&req),
        backend(BackendKind::Vm).exec(&req)
    );
}
