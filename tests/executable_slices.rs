//! Executable-slicing comparisons (§5): polyvariant vs. monovariant vs.
//! Weiser, and the wc speed-up experiment's correctness backbone.

use specslice::exec::{self, ExecOutcome, ExecRequest};
use specslice::{Criterion, Program, Slicer};

/// Runs through the env-selected default backend with the default budgets.
fn run(program: &Program, input: &[i64]) -> ExecOutcome {
    exec::run(&ExecRequest::new(program).with_input(input)).unwrap()
}

/// Slicing wc on a *single* printf must drop the other counters' work and
/// still print the same value at that printf — the §5 speed-up setup.
#[test]
fn wc_single_printf_slices_speed_up() {
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = Slicer::from_source(prog.source).unwrap();
    let ast = slicer.program().unwrap();
    let sdg = slicer.sdg();
    let original = run(ast, prog.sample_input);

    let printf_sites: Vec<_> = sdg.printf_call_sites().collect();
    assert_eq!(printf_sites.len(), 3, "wc prints lines, words, chars");

    let mut any_speedup = false;
    for site in printf_sites {
        let line = {
            // Criterion: this printf's actual-ins in all contexts.
            let verts: Vec<_> = site.actual_ins.clone();
            let criterion = Criterion::AllContexts(verts);
            let slice = slicer.slice(&criterion).unwrap();
            let regen = slicer.regenerate(&slice).unwrap();
            let run = exec::run(&ExecRequest::new(&regen.program).with_input(prog.sample_input))
                .unwrap_or_else(|e| panic!("sliced wc failed: {e}\n{}", regen.source));
            // Compare this printf's output stream by source line.
            let stmt_line = {
                let mut line = 0;
                ast.visit_all(|_, s| {
                    if s.id == site.stmt {
                        line = s.line;
                    }
                });
                line
            };
            let orig_stream: Vec<i64> = original
                .output
                .iter()
                .zip(&original.output_sites)
                .filter(|&(_, &l)| l == stmt_line)
                .map(|(&v, _)| v)
                .collect();
            let slice_stream: Vec<i64> = run
                .output
                .iter()
                .zip(&run.output_sites)
                .filter(|&(_, &l)| l == stmt_line)
                .map(|(&v, _)| v)
                .collect();
            assert_eq!(orig_stream, slice_stream, "criterion value stream diverged");
            assert!(run.steps <= original.steps);
            if run.steps < original.steps {
                any_speedup = true;
            }
            stmt_line
        };
        let _ = line;
    }
    assert!(
        any_speedup,
        "no single-printf slice of wc was faster than the original"
    );
}

/// Polyvariant never adds elements beyond the closure slice; monovariant
/// does. Their sizes relate as the paper's Fig. 19 describes.
#[test]
fn size_relationships_across_corpus() {
    for prog in specslice_corpus::programs() {
        let slicer = Slicer::from_source(prog.source).unwrap();
        let sdg = slicer.sdg();
        let cv = sdg.printf_actual_in_vertices();
        let closure = specslice_sdg::slice::backward_closure_slice(sdg, &cv);
        let mono = specslice_sdg::binkley::monovariant_executable_slice(sdg, &cv);
        let poly = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();

        // Polyvariant distinct elements == closure (completeness+soundness);
        // total size ≥ closure (replication only).
        assert_eq!(poly.elems(), closure, "{}", prog.name);
        assert!(poly.total_vertices() >= closure.len(), "{}", prog.name);
        // Monovariant ⊇ closure with only *extraneous* additions.
        assert_eq!(
            mono.vertices.len(),
            closure.len() + mono.extraneous.len(),
            "{}",
            prog.name
        );
    }
}

/// Monovariant slices are also executable and behave like the original at
/// the criterion — cross-validating Binkley's algorithm via regeneration.
/// (We regenerate a monovariant slice by treating it as a single-variant
/// "specialization" per procedure — possible exactly because it has no
/// parameter mismatches.)
#[test]
fn monovariant_slices_execute() {
    // Reuse the polyvariant regeneration machinery on a program where the
    // monovariant and polyvariant slices coincide (no mismatches).
    let src = r#"
        int g;
        void set(int a) { g = a; }
        int main() {
            int x;
            scanf("%d", &x);
            set(x + 1);
            printf("%d", g);
            return 0;
        }
    "#;
    let slicer = Slicer::from_source(src).unwrap();
    let sdg = slicer.sdg();
    let cv = sdg.printf_actual_in_vertices();
    let mono = specslice_sdg::binkley::monovariant_executable_slice(sdg, &cv);
    let poly = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
    assert!(mono.extraneous.is_empty());
    assert_eq!(poly.elems(), mono.vertices);
    let regen = slicer.regenerate(&poly).unwrap();
    let a = run(slicer.program().unwrap(), &[7]);
    let b = run(&regen.program, &[7]);
    assert_eq!(a.output, b.output);
}

/// Fig. 13 family: the exponentially specialized program still runs and
/// agrees with the original.
#[test]
fn pk_family_slices_execute() {
    for k in 1..=3 {
        let src = specslice_corpus::pk_family(k);
        let slicer = Slicer::from_source(&src).unwrap();
        let slice = slicer
            .slice(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        let input: Vec<i64> = (0..k as i64 + 2).map(|i| i % k as i64 + 1).collect();
        let a = run(slicer.program().unwrap(), &input);
        let b = run(&regen.program, &input);
        assert_eq!(a.output, b.output, "P_{k}\n{}", regen.source);
    }
}
