//! The `Slicer` session contract: batch ≡ individual, cached encodings are
//! never rebuilt, structured errors classify and chain.

use specslice::{Criterion, Slicer, SlicerConfig, SpecError, SpecSlice};
use specslice_corpus::{random_program, GenConfig};
use specslice_sdg::build::build_sdg;
use std::error::Error as _;
use std::sync::Mutex;

/// Serializes the tests of this binary: the encode-counter assertions read
/// the process-wide `encode_call_count`, and every other test here bumps it
/// by constructing `Slicer`s — parallel test threads would race the deltas.
static SERIAL: Mutex<()> = Mutex::new(());

/// Takes the serialization lock, surviving poisoning from a failed test.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Structural slice equality (SpecSlice intentionally has no PartialEq —
/// the automaton field compares by language, not by representation).
fn assert_same_slice(a: &SpecSlice, b: &SpecSlice, ctx: &str) {
    assert_eq!(a.main_variant, b.main_variant, "{ctx}: main variant");
    assert_eq!(a.variant_count(), b.variant_count(), "{ctx}: variant count");
    for (va, vb) in a.variants().iter().zip(&b.variants()) {
        assert_eq!(va.proc, vb.proc, "{ctx}: variant proc");
        assert_eq!(va.name, vb.name, "{ctx}: variant name");
        assert_eq!(va.vertices, vb.vertices, "{ctx}: variant Elems");
        assert_eq!(va.calls, vb.calls, "{ctx}: call bindings");
    }
}

/// Per-printf criteria of a program — the paper's evaluation workload.
fn per_printf_criteria(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

/// Property: `slice_batch(&[c1, …, cn])[i]` is identical to `slice(ci)`,
/// across corpus programs and randomly generated ones, with mixed criterion
/// forms.
#[test]
fn batch_equals_individual_slices() {
    let _guard = serial();
    // Corpus programs with their per-printf criteria.
    for prog in specslice_corpus::programs() {
        let slicer = Slicer::from_source(prog.source).unwrap();
        let mut criteria = per_printf_criteria(&slicer);
        // Mix in other criterion forms: all printfs at once, single vertex.
        criteria.push(Criterion::printf_actuals(slicer.sdg()));
        let any_vertex = slicer.sdg().printf_actual_in_vertices()[0];
        criteria.push(Criterion::vertex(any_vertex));

        let batch = slicer.slice_batch(&criteria).unwrap();
        assert_eq!(batch.slices.len(), criteria.len());
        for (i, criterion) in criteria.iter().enumerate() {
            let single = slicer.slice(criterion).unwrap();
            assert_same_slice(
                &batch.slices[i],
                &single,
                &format!("{} criterion #{i}", prog.name),
            );
        }
    }

    // Random programs (seeded sweep).
    let cfg = GenConfig {
        n_globals: 3,
        n_funcs: 4,
        max_stmts: 6,
        recursion: true,
    };
    for seed in (0..12).map(|i| i * 641 + 5) {
        let src = random_program(seed, cfg);
        let slicer = Slicer::from_source(&src).unwrap();
        let criteria = per_printf_criteria(&slicer);
        if criteria.is_empty() {
            continue;
        }
        let batch = slicer.slice_batch(&criteria).unwrap();
        for (i, criterion) in criteria.iter().enumerate() {
            let single = slicer.slice(criterion).unwrap();
            assert_same_slice(&batch.slices[i], &single, &format!("seed {seed} #{i}"));
        }
    }
}

/// A session reused across criteria never re-encodes the SDG as a PDS and
/// builds the reachable automaton at most once. Observed two ways: the
/// process-wide encode counter does not move, and the cached encoding is
/// pointer-identical across queries.
#[test]
fn session_never_rebuilds_the_pds() {
    let _guard = serial();
    let prog = specslice_corpus::by_name("print_tokens").unwrap();
    let slicer = Slicer::from_source(prog.source).unwrap();
    let criteria = per_printf_criteria(&slicer);
    assert!(criteria.len() >= 2, "needs a multi-criterion workload");

    let enc_before = slicer.encoding() as *const _;
    let encodes_before = specslice::encode::encode_call_count();
    assert_eq!(slicer.reachable_builds(), 0, "reachable cache is lazy");

    for criterion in &criteria {
        slicer.slice(criterion).unwrap();
    }
    slicer.slice_batch(&criteria).unwrap();
    let slice = slicer.slice(&criteria[0]).unwrap();
    slicer.regenerate(&slice).unwrap();

    let encodes_after = specslice::encode::encode_call_count();
    assert_eq!(
        encodes_after, encodes_before,
        "a reused Slicer must never re-encode its SDG"
    );
    assert_eq!(
        slicer.encoding() as *const _,
        enc_before,
        "cached encoding must be the same instance"
    );
    assert_eq!(
        slicer.reachable_builds(),
        1,
        "reachable automaton is built exactly once for the whole session"
    );
    assert_eq!(slicer.queries_run(), 2 * criteria.len() + 1);
}

/// Feature removal and reslice checks also run against the session caches.
#[test]
fn session_covers_the_whole_pipeline() {
    let _guard = serial();
    let slicer = Slicer::from_source(specslice_corpus::examples::FIG16).unwrap();
    let encodes_before = specslice::encode::encode_call_count();

    let criterion = Criterion::printf_actuals(slicer.sdg());
    let slice = slicer.slice(&criterion).unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    let report = slicer.reslice_check(&criterion, &slice, &regen).unwrap();
    assert!(report.languages_equal);

    let main = slicer.sdg().proc_named("main").unwrap();
    let seed_stmt = main
        .vertices
        .iter()
        .copied()
        .find(|&v| {
            matches!(
                slicer.sdg().vertex(v).kind,
                specslice_sdg::VertexKind::Statement { .. }
            )
        })
        .unwrap();
    let removed = slicer
        .remove_feature(&Criterion::vertex(seed_stmt))
        .unwrap();
    assert!(!removed.elems().contains(&seed_stmt));

    // The reslice check encodes the *regenerated* program (a different
    // program — one fresh encoding is legitimate); the original program's
    // encoding is reused throughout. So: exactly one new encode, from
    // reslice_check's regenerated-program build.
    let encodes_after = specslice::encode::encode_call_count();
    assert_eq!(
        encodes_after - encodes_before,
        1,
        "only the regenerated program may be (freshly) encoded"
    );
}

/// Structured errors: stage classification and `source()` chaining.
#[test]
fn spec_error_classifies_and_chains() {
    let _guard = serial();
    // Parse errors wrap the LangError and expose it via source().
    let err = Slicer::from_source("int main( {").unwrap_err();
    assert!(matches!(err, SpecError::Parse(_)), "{err:?}");
    let src_err = err.source().expect("parse errors chain their cause");
    assert!(src_err.to_string().contains("expected"), "{src_err}");

    // Semantic errors classify separately.
    let err = Slicer::from_source("int main() { x = 1; return 0; }").unwrap_err();
    assert!(matches!(err, SpecError::Sema(_)), "{err:?}");
    assert!(err.source().is_some());

    // SDG-stage errors (no main) classify and chain too.
    let program =
        specslice_lang::frontend("int f(int a) { return a; } int main() { return 0; }").unwrap();
    let mut no_main = program;
    no_main.functions.retain(|f| f.name != "main");
    let err = Slicer::from_program(no_main).unwrap_err();
    assert!(
        matches!(err, SpecError::SdgBuild(specslice_sdg::SdgError::NoMain)),
        "{err:?}"
    );
    assert!(err.source().is_some());

    // Bad criteria carry a reason and no source.
    let slicer = Slicer::from_source("int main() { printf(\"%d\", 1); return 0; }").unwrap();
    let err = slicer
        .slice(&Criterion::vertex(specslice_sdg::VertexId(9_999)))
        .unwrap_err();
    match &err {
        SpecError::BadCriterion { reason } => assert!(reason.contains("out of range")),
        other => panic!("expected BadCriterion, got {other:?}"),
    }
    assert!(err.source().is_none());
}

/// Batch errors name the offending criterion by index.
#[test]
fn batch_errors_identify_the_criterion() {
    let _guard = serial();
    let slicer = Slicer::from_source("int main() { printf(\"%d\", 1); return 0; }").unwrap();
    let good = Criterion::printf_actuals(slicer.sdg());
    let bad = Criterion::vertex(specslice_sdg::VertexId(9_999));
    let err = slicer.slice_batch(&[good.clone(), good, bad]).unwrap_err();
    match err {
        SpecError::BadCriterion { reason } => {
            assert!(reason.contains("#2"), "{reason}");
        }
        other => panic!("expected BadCriterion, got {other:?}"),
    }
}

/// Config toggles: stats collection can be disabled for hot loops; the
/// validation toggle only skips the audit, never changes results.
#[test]
fn config_controls_stats_and_validation() {
    let _guard = serial();
    let prog = specslice_corpus::by_name("replace").unwrap();
    let audited = Slicer::from_source(prog.source).unwrap();
    let unaudited = Slicer::from_source_with(
        prog.source,
        SlicerConfig {
            validate: false,
            collect_stats: false,
            ..SlicerConfig::default()
        },
    )
    .unwrap();
    let criteria = per_printf_criteria(&audited);

    let with = audited.slice_batch(&criteria).unwrap();
    let without = unaudited.slice_batch(&criteria).unwrap();
    assert_eq!(with.per_criterion.len(), criteria.len());
    assert!(
        without.per_criterion.is_empty(),
        "stats collection disabled"
    );
    assert!(with.aggregate.prestar_transitions > 0);
    for (a, b) in with.slices.iter().zip(&without.slices) {
        assert_same_slice(a, b, "validate toggle must not change slices");
    }
}

/// Sessions built from a bare SDG slice fine but cannot regenerate source.
#[test]
fn from_sdg_sessions_slice_but_cannot_regenerate() {
    let _guard = serial();
    let program = specslice_lang::frontend(specslice_corpus::examples::FIG1).unwrap();
    let sdg = build_sdg(&program).unwrap();
    let slicer = Slicer::from_sdg(sdg).unwrap();
    assert!(slicer.program().is_none());
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    assert_eq!(slice.variants_of_proc(slicer.sdg(), "p").len(), 2);
    let err = slicer.regenerate(&slice).unwrap_err();
    assert!(
        matches!(
            err,
            SpecError::Internal {
                context: "regen",
                ..
            }
        ),
        "{err:?}"
    );
}

/// `approx_bytes` charges the warm scratch pool: after a batch leaves
/// recycled `QueryScratch`es behind, the session's resident estimate is
/// exactly its component sum *including* the pool (the server's
/// `--budget-bytes` LRU eviction would otherwise under-charge warm
/// sessions by megabytes at scale).
#[test]
fn approx_bytes_includes_warm_scratch_pool() {
    let _guard = serial();
    let slicer = Slicer::from_source_with(
        specslice_corpus::examples::FIG1,
        SlicerConfig {
            memoize: false, // memo bytes out of the picture: exact sum below
            num_threads: 1,
            ..SlicerConfig::default()
        },
    )
    .unwrap();
    let criteria: Vec<Criterion> = slicer
        .sdg()
        .printf_actual_in_vertices()
        .into_iter()
        .map(Criterion::vertex)
        .collect();
    slicer.slice_batch(&criteria).unwrap();

    let scratch = slicer.scratch_stats();
    assert!(
        scratch.pooled >= 1,
        "batch must leave a warm scratch pooled"
    );
    assert!(
        scratch.approx_bytes > 0,
        "warm scratch tables have non-zero footprint"
    );
    let expected = slicer.sdg().approx_bytes()
        + slicer.encoding().approx_bytes()
        + slicer.store_stats().approx_bytes()
        + scratch.approx_bytes;
    assert_eq!(
        slicer.approx_bytes(),
        expected,
        "session estimate must be the component sum including the pool"
    );
}
