//! The unified execution API: [`ExecRequest`] in, [`ExecOutcome`] out,
//! behind the [`ExecBackend`] trait.
//!
//! Historically the only way to run a MiniC program was a bare
//! `run(&program, &input, fuel)` entry point, called directly from
//! validation, tests, and benches (removed after a deprecation release).
//! This module replaced that signature with a request/outcome pair so
//! callers *select a backend*
//! (the tree-walking interpreter, or the `specslice-vm` bytecode machine)
//! instead of hard-coding one — the contract is that every backend produces
//! the **same** [`ExecOutcome`] (output vector, step accounting, exit path)
//! and the **same** [`ExecError`] variants for the same request.
//!
//! Backend selection for default-configured callers is environmental:
//! `SPECSLICE_EXEC_BACKEND=interp|vm` (parsed strictly, in the style of
//! `SPECSLICE_NUM_THREADS` — see [`parse_backend`] / [`configured_backend`]).
//! The selection helpers that need to *name* both backends live in
//! `specslice-vm` (`default_backend()`), re-exported as `specslice::exec`.

use crate::{ExecError, ExecOutcome};
use specslice_lang::ast::Program;
use std::fmt;

/// A single program execution: what to run, on which input stream, and
/// under which resource bounds.
///
/// The defaults ([`ExecRequest::DEFAULT_FUEL`],
/// [`ExecRequest::DEFAULT_RECURSION_LIMIT`]) are the named versions of the
/// magic numbers that used to be scattered across tests and benches; use
/// [`ExecRequest::DEEP_FUEL`] for long-running bench workloads.
///
/// ```
/// let program = specslice_lang::frontend(
///     "int main() { int x; scanf(\"%d\", &x); printf(\"%d\", x + 1); return 0; }",
/// )?;
/// let req = specslice_interp::ExecRequest::new(&program).with_input(&[41]);
/// let out = specslice_interp::exec(&req)?;
/// assert_eq!(out.output, vec![42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExecRequest<'a> {
    /// The (checked, normalized) program to run.
    pub program: &'a Program,
    /// The input stream `scanf` reads from; exhausted reads yield 0.
    pub input: &'a [i64],
    /// Statement budget: execution fails with [`ExecError::OutOfFuel`]
    /// once more than `fuel` statements have been executed.
    pub fuel: u64,
    /// Call-depth budget: a call that would exceed this depth fails with
    /// [`ExecError::RecursionLimit`] (`main` runs at depth 0).
    pub recursion_limit: u32,
}

impl<'a> ExecRequest<'a> {
    /// The default statement budget: ample for every corpus program and
    /// grid workload, small enough that an accidental infinite loop fails
    /// in well under a second.
    pub const DEFAULT_FUEL: u64 = 5_000_000;

    /// A deep statement budget for bench workloads that intentionally run
    /// long (merged grid programs, the §5 step-count experiments).
    pub const DEEP_FUEL: u64 = 50_000_000;

    /// The default call-depth budget (keeps runaway recursion off the host
    /// stack in every backend).
    pub const DEFAULT_RECURSION_LIMIT: u32 = 192;

    /// A request for `program` with empty input and the default budgets.
    pub fn new(program: &'a Program) -> Self {
        ExecRequest {
            program,
            input: &[],
            fuel: Self::DEFAULT_FUEL,
            recursion_limit: Self::DEFAULT_RECURSION_LIMIT,
        }
    }

    /// Replaces the input stream.
    #[must_use]
    pub fn with_input(mut self, input: &'a [i64]) -> Self {
        self.input = input;
        self
    }

    /// Replaces the statement budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Replaces the call-depth budget.
    #[must_use]
    pub fn with_recursion_limit(mut self, limit: u32) -> Self {
        self.recursion_limit = limit;
        self
    }
}

/// An execution engine for MiniC programs.
///
/// Implementations must be observationally interchangeable: for any checked
/// program and request, every backend returns the same [`ExecOutcome`]
/// (including the deterministic step count) or the same [`ExecError`]
/// variant. `tests/vm_differential.rs` enforces this across the corpus, the
/// feature grids, specialized programs, and a seeded random sweep.
pub trait ExecBackend: Sync {
    /// Stable backend name (`"interp"`, `"vm"`), as accepted by
    /// [`parse_backend`].
    fn name(&self) -> &'static str;

    /// Runs the request to completion or to a structured failure.
    ///
    /// # Errors
    ///
    /// [`ExecError::OutOfFuel`] / [`ExecError::RecursionLimit`] when a
    /// budget is exhausted, and arithmetic/pointer errors as they occur.
    fn exec(&self, req: &ExecRequest<'_>) -> Result<ExecOutcome, ExecError>;
}

/// The available execution backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The tree-walking interpreter ([`crate::Interp`]).
    #[default]
    Interp,
    /// The `specslice-vm` bytecode machine.
    Vm,
}

impl BackendKind {
    /// The backend's stable name (the value [`parse_backend`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Vm => "vm",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A present-but-invalid `SPECSLICE_EXEC_BACKEND` value: what was set, why
/// it was rejected, and the backend used instead.
///
/// Mirrors `specslice_exec::ThreadConfigError`: a silently ignored
/// misconfiguration is the worst kind — a CI matrix leg that exports
/// `SPECSLICE_EXEC_BACKEND=mv` would happily "pass" on the interpreter.
/// [`configured_backend`] surfaces this as a value; `specslice-vm`'s
/// `default_backend()` additionally logs it (once per process) and falls
/// back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendConfigError {
    /// The rejected value, verbatim.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
    /// The backend used instead.
    pub fallback: BackendKind,
}

impl fmt::Display for BackendConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid SPECSLICE_EXEC_BACKEND={:?}: {}; using {}",
            self.value, self.reason, self.fallback
        )
    }
}

impl std::error::Error for BackendConfigError {}

/// Strictly parses a backend name: `interp` or `vm` (surrounding
/// whitespace tolerated, nothing else — no prefixes, no case variants).
///
/// # Errors
///
/// Any other value is rejected with a structured [`BackendConfigError`]
/// naming the interpreter as the fallback.
pub fn parse_backend(value: &str) -> Result<BackendKind, BackendConfigError> {
    match value.trim() {
        "interp" => Ok(BackendKind::Interp),
        "vm" => Ok(BackendKind::Vm),
        _ => Err(BackendConfigError {
            value: value.to_string(),
            reason: "expected \"interp\" or \"vm\"".to_string(),
            fallback: BackendKind::Interp,
        }),
    }
}

/// Reads `SPECSLICE_EXEC_BACKEND` strictly: `Ok(None)` when unset,
/// `Ok(Some(kind))` for a valid name, and a structured
/// [`BackendConfigError`] for a present-but-invalid value. Servers and CLIs
/// should call this once at startup and surface the error.
///
/// # Errors
///
/// A present-but-invalid value yields the [`parse_backend`] error.
pub fn configured_backend() -> Result<Option<BackendKind>, BackendConfigError> {
    match std::env::var("SPECSLICE_EXEC_BACKEND") {
        Ok(v) => parse_backend(&v).map(Some),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_exact_names_only() {
        assert_eq!(parse_backend("interp"), Ok(BackendKind::Interp));
        assert_eq!(parse_backend(" vm\n"), Ok(BackendKind::Vm));
        for bad in ["", "Interp", "VM", "vm2", "interpreter", "0"] {
            let err = parse_backend(bad).unwrap_err();
            assert_eq!(err.fallback, BackendKind::Interp, "{bad:?}");
            assert_eq!(err.value, bad);
        }
    }

    #[test]
    fn request_defaults_and_builders() {
        let program = specslice_lang::frontend("int main() { return 0; }").unwrap();
        let req = ExecRequest::new(&program);
        assert_eq!(req.fuel, ExecRequest::DEFAULT_FUEL);
        assert_eq!(req.recursion_limit, ExecRequest::DEFAULT_RECURSION_LIMIT);
        assert!(req.input.is_empty());
        let req = req
            .with_input(&[1, 2])
            .with_fuel(10)
            .with_recursion_limit(3);
        assert_eq!(
            (req.input, req.fuel, req.recursion_limit),
            (&[1i64, 2][..], 10, 3)
        );
    }
}
