//! The deterministic MiniC tree-walking interpreter, and the home of the
//! **unified execution API** ([`ExecRequest`] / [`ExecOutcome`] /
//! [`ExecBackend`]).
//!
//! Execution is used to *validate executability*: the paper's central claim
//! is that specialization slices are runnable programs that agree with the
//! original on the slicing criterion. Callers run both against the same
//! input stream and compare outputs; the step counter backs the §5
//! "executable `wc` slices run in 32.5% of the original's time" experiment.
//!
//! Two backends implement the API: the tree-walker in this crate
//! ([`Interp`]) and the `specslice-vm` bytecode machine. Their observable
//! behavior is identical by contract:
//!
//! * `scanf` pops values from a caller-supplied input vector (exhausted
//!   input yields 0, like EOF with an unset variable — deterministic);
//! * `printf` appends each formatted argument to the output vector;
//! * execution is fuel-bounded so non-terminating slices fail cleanly
//!   ([`ExecError::OutOfFuel`] reports the step at which fuel ran out);
//! * uninitialized variables read as 0 (MiniC has no trap representation —
//!   this matches what slicing's semantic guarantee needs: criterion values
//!   agree; junk values may differ elsewhere).
//!
//! # Example
//!
//! ```
//! use specslice_interp::{ExecBackend, ExecRequest, Interp};
//!
//! let program = specslice_lang::frontend(
//!     "int main() { int x; scanf(\"%d\", &x); printf(\"%d\", x + 1); return 0; }",
//! )?;
//! let out = Interp.exec(&ExecRequest::new(&program).with_input(&[41]))?;
//! assert_eq!(out.output, vec![42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod api;

pub use api::{
    configured_backend, parse_backend, BackendConfigError, BackendKind, ExecBackend, ExecRequest,
};

use specslice_lang::ast::{BinOp, Callee, Expr, Function, Program, StmtKind, UnOp};
use specslice_lang::Block;
use std::collections::HashMap;
use std::fmt;

/// Errors during execution (any backend).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget was exhausted (possible non-termination).
    OutOfFuel {
        /// The step count at which fuel ran out (always `fuel + 1`: the
        /// first statement the budget no longer covers).
        steps: u64,
    },
    /// The call-depth limit was exceeded (runaway recursion).
    RecursionLimit,
    /// Division or remainder by zero.
    DivisionByZero {
        /// Source line.
        line: u32,
    },
    /// Call through a pointer value that is not a function.
    BadFunctionPointer {
        /// Source line.
        line: u32,
    },
    /// Internal error (should not happen on checked programs).
    Internal(String),
}

/// The execution API's error type — shared by every [`ExecBackend`].
/// (`InterpError` is the historical name; new code should say `ExecError`.)
pub type ExecError = InterpError;

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel { steps } => write!(f, "out of fuel at step {steps}"),
            InterpError::RecursionLimit => write!(f, "recursion limit exceeded"),
            InterpError::DivisionByZero { line } => write!(f, "line {line}: division by zero"),
            InterpError::BadFunctionPointer { line } => {
                write!(f, "line {line}: bad function pointer")
            }
            InterpError::Internal(m) => write!(f, "internal interpreter error: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The observable result of a run — identical across backends by contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Values printed by `printf`, in order (one entry per argument).
    pub output: Vec<i64>,
    /// Source line of the `printf` that produced each output entry
    /// (parallel to `output`; regenerated slices preserve original lines,
    /// so per-criterion output streams can be compared across programs).
    pub output_sites: Vec<u32>,
    /// Exit code (`exit(n)`, or `main`'s return value, or 0).
    pub exit_code: i64,
    /// Number of statements executed — the deterministic work measure the
    /// §5 speed-up experiment compares (identical across backends).
    pub steps: u64,
    /// Number of input values consumed.
    pub inputs_consumed: usize,
}

/// The tree-walking interpreter backend.
pub struct Interp;

impl ExecBackend for Interp {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn exec(&self, req: &ExecRequest<'_>) -> Result<ExecOutcome, ExecError> {
        exec(req)
    }
}

/// Values: MiniC ints double as function pointers (index+1 of the function;
/// 0 is the null pointer).
type Value = i64;

enum Flow {
    Normal,
    Return(Option<Value>),
    Break,
    Continue,
    Exit(Value),
}

struct Walker<'p> {
    program: &'p Program,
    fn_index: HashMap<&'p str, usize>,
    globals: HashMap<String, Value>,
    input: &'p [Value],
    input_pos: usize,
    output: Vec<Value>,
    output_sites: Vec<u32>,
    steps: u64,
    fuel: u64,
    depth: u32,
    recursion_limit: u32,
}

/// Runs `req` on the tree-walking interpreter.
///
/// # Errors
///
/// Returns [`ExecError::OutOfFuel`] if the budget is exhausted, and
/// arithmetic/pointer errors as they occur.
pub fn exec(req: &ExecRequest<'_>) -> Result<ExecOutcome, ExecError> {
    let program = req.program;
    let main = program
        .main()
        .ok_or_else(|| InterpError::Internal("no main".into()))?;
    let mut interp = Walker {
        program,
        fn_index: program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect(),
        globals: program.globals.iter().map(|g| (g.clone(), 0)).collect(),
        input: req.input,
        input_pos: 0,
        output: Vec::new(),
        output_sites: Vec::new(),
        steps: 0,
        fuel: req.fuel,
        depth: 0,
        recursion_limit: req.recursion_limit,
    };
    let mut frame: HashMap<String, Value> = HashMap::new();
    let flow = interp.exec_block(&main.body, &mut frame)?;
    let exit_code = match flow {
        Flow::Exit(c) => c,
        Flow::Return(Some(v)) => v,
        _ => 0,
    };
    Ok(ExecOutcome {
        output: interp.output,
        output_sites: interp.output_sites,
        exit_code,
        steps: interp.steps,
        inputs_consumed: interp.input_pos,
    })
}

impl<'p> Walker<'p> {
    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(InterpError::OutOfFuel { steps: self.steps })
        } else {
            Ok(())
        }
    }

    fn read_var(&self, name: &str, frame: &HashMap<String, Value>) -> Value {
        frame
            .get(name)
            .or_else(|| self.globals.get(name))
            .copied()
            .unwrap_or(0)
    }

    fn write_var(&mut self, name: &str, v: Value, frame: &mut HashMap<String, Value>) {
        if frame.contains_key(name) || !self.globals.contains_key(name) {
            frame.insert(name.to_string(), v);
        } else {
            self.globals.insert(name.to_string(), v);
        }
    }

    fn eval(
        &mut self,
        e: &Expr,
        frame: &HashMap<String, Value>,
        line: u32,
    ) -> Result<Value, InterpError> {
        Ok(match e {
            Expr::Int(n) => *n,
            Expr::Var(v) => self.read_var(v, frame),
            Expr::FuncRef(f) => {
                *self
                    .fn_index
                    .get(f.as_str())
                    .ok_or_else(|| InterpError::Internal(format!("unknown fn {f}")))?
                    as i64
                    + 1
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, frame, line)?;
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                }
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        let va = self.eval(a, frame, line)?;
                        if va == 0 {
                            return Ok(0);
                        }
                        return Ok(i64::from(self.eval(b, frame, line)? != 0));
                    }
                    BinOp::Or => {
                        let va = self.eval(a, frame, line)?;
                        if va != 0 {
                            return Ok(1);
                        }
                        return Ok(i64::from(self.eval(b, frame, line)? != 0));
                    }
                    _ => {}
                }
                let va = self.eval(a, frame, line)?;
                let vb = self.eval(b, frame, line)?;
                match op {
                    BinOp::Add => va.wrapping_add(vb),
                    BinOp::Sub => va.wrapping_sub(vb),
                    BinOp::Mul => va.wrapping_mul(vb),
                    BinOp::Div => {
                        if vb == 0 {
                            return Err(InterpError::DivisionByZero { line });
                        }
                        va.wrapping_div(vb)
                    }
                    BinOp::Rem => {
                        if vb == 0 {
                            return Err(InterpError::DivisionByZero { line });
                        }
                        va.wrapping_rem(vb)
                    }
                    BinOp::Lt => i64::from(va < vb),
                    BinOp::Le => i64::from(va <= vb),
                    BinOp::Gt => i64::from(va > vb),
                    BinOp::Ge => i64::from(va >= vb),
                    BinOp::Eq => i64::from(va == vb),
                    BinOp::Ne => i64::from(va != vb),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Expr::Call(_) => {
                return Err(InterpError::Internal(
                    "call in expression after normalization".into(),
                ))
            }
        })
    }

    fn call(
        &mut self,
        func: &'p Function,
        args: &[Value],
        ref_backs: &[Option<String>],
        caller_frame: &mut HashMap<String, Value>,
    ) -> Result<Option<Value>, InterpError> {
        self.depth += 1;
        if self.depth > self.recursion_limit {
            return Err(InterpError::RecursionLimit);
        }
        let mut frame: HashMap<String, Value> = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            frame.insert(p.name.clone(), *v);
        }
        let flow = self.exec_block(&func.body, &mut frame);
        self.depth -= 1;
        let flow = flow?;
        // Copy back by-reference parameters.
        for (p, back) in func.params.iter().zip(ref_backs) {
            if let Some(target) = back {
                let v = self.read_var(&p.name, &frame);
                self.write_var(target, v, caller_frame);
            }
        }
        match flow {
            Flow::Exit(c) => Err(InterpError::Internal(format!("__exit:{c}"))), // unwound below
            Flow::Return(v) => Ok(v),
            _ => Ok(None),
        }
    }

    fn exec_block(
        &mut self,
        block: &'p Block,
        frame: &mut HashMap<String, Value>,
    ) -> Result<Flow, InterpError> {
        for s in &block.stmts {
            // Bare declarations are storage, not work: they do not count as
            // execution steps (regenerated slices relocate declarations, and
            // the §5 speed-up experiment compares real work).
            if !matches!(s.kind, StmtKind::Decl { init: None, .. }) {
                self.tick()?;
            }
            let line = s.line;
            match &s.kind {
                StmtKind::Decl { name, init, .. } => {
                    let v = match init {
                        Some(e) => self.eval(e, frame, line)?,
                        None => 0,
                    };
                    frame.insert(name.clone(), v);
                }
                StmtKind::Assign { name, value } => {
                    let v = self.eval(value, frame, line)?;
                    self.write_var(name, v, frame);
                }
                StmtKind::Call(c) => {
                    let fname: String = match &c.callee {
                        Callee::Named(n) => n.clone(),
                        Callee::Indirect(ptr) => {
                            let v = self.read_var(ptr, frame);
                            let idx = v - 1;
                            if idx < 0 || idx as usize >= self.program.functions.len() {
                                return Err(InterpError::BadFunctionPointer { line });
                            }
                            self.program.functions[idx as usize].name.clone()
                        }
                    };
                    let func = self
                        .program
                        .function(&fname)
                        .ok_or_else(|| InterpError::Internal(format!("unknown fn {fname}")))?;
                    let mut args = Vec::with_capacity(c.args.len());
                    let mut ref_backs = Vec::with_capacity(c.args.len());
                    for (p, a) in func.params.iter().zip(&c.args) {
                        args.push(self.eval(a, frame, line)?);
                        ref_backs.push(match (p.mode, a) {
                            (specslice_lang::ast::ParamMode::Ref, Expr::Var(v)) => Some(v.clone()),
                            _ => None,
                        });
                    }
                    match self.call(func, &args, &ref_backs, frame) {
                        Ok(ret) => {
                            if let (Some(t), Some(v)) = (&c.assign_to, ret) {
                                self.write_var(t, v, frame);
                            }
                        }
                        Err(InterpError::Internal(m)) if m.starts_with("__exit:") => {
                            let code: i64 = m[7..].parse().unwrap_or(0);
                            return Ok(Flow::Exit(code));
                        }
                        Err(e) => return Err(e),
                    }
                }
                StmtKind::Printf { args, .. } => {
                    for a in args {
                        let v = self.eval(a, frame, line)?;
                        self.output.push(v);
                        self.output_sites.push(line);
                    }
                }
                StmtKind::Scanf {
                    targets, assign_to, ..
                } => {
                    let mut read = 0i64;
                    for t in targets {
                        let v = if self.input_pos < self.input.len() {
                            let v = self.input[self.input_pos];
                            self.input_pos += 1;
                            read += 1;
                            v
                        } else {
                            0
                        };
                        self.write_var(t, v, frame);
                    }
                    if let Some(t) = assign_to {
                        self.write_var(t, read, frame);
                    }
                }
                StmtKind::Exit { code } => {
                    let v = self.eval(code, frame, line)?;
                    return Ok(Flow::Exit(v));
                }
                StmtKind::If {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let v = self.eval(cond, frame, line)?;
                    let flow = if v != 0 {
                        self.exec_block(then_block, frame)?
                    } else if let Some(e) = else_block {
                        self.exec_block(e, frame)?
                    } else {
                        Flow::Normal
                    };
                    match flow {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                StmtKind::While { cond, body } => loop {
                    self.tick()?;
                    let v = self.eval(cond, frame, line)?;
                    if v == 0 {
                        break;
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                },
                StmtKind::Return { value } => {
                    let v = match value {
                        Some(e) => Some(self.eval(e, frame, line)?),
                        None => None,
                    };
                    return Ok(Flow::Return(v));
                }
                StmtKind::Break => return Ok(Flow::Break),
                StmtKind::Continue => return Ok(Flow::Continue),
            }
        }
        Ok(Flow::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    fn go(src: &str, input: &[i64]) -> ExecOutcome {
        exec(&ExecRequest::new(&frontend(src).unwrap()).with_input(input)).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let r = go(
            r#"int main() { printf("%d %d", 2 + 3 * 4, (2 + 3) * 4); return 0; }"#,
            &[],
        );
        assert_eq!(r.output, vec![14, 20]);
    }

    #[test]
    fn globals_params_and_refs() {
        let r = go(
            r#"
            int g;
            void bump(int& x, int by) { x = x + by; g = g + 1; }
            int main() {
                int v;
                v = 10;
                bump(v, 5);
                bump(v, 5);
                printf("%d %d", v, g);
                return 0;
            }
            "#,
            &[],
        );
        assert_eq!(r.output, vec![20, 2]);
    }

    #[test]
    fn recursion_factorial() {
        let r = go(
            r#"
            int fact(int n) {
                if (n <= 1) { return 1; }
                int rest;
                rest = fact(n - 1);
                return n * rest;
            }
            int main() { printf("%d", fact(6)); return 0; }
            "#,
            &[],
        );
        assert_eq!(r.output, vec![720]);
    }

    #[test]
    fn loops_break_continue() {
        let r = go(
            r#"
            int main() {
                int i;
                int sum;
                i = 0;
                sum = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    sum = sum + i;
                }
                printf("%d", sum);
                return 0;
            }
            "#,
            &[],
        );
        assert_eq!(r.output, vec![25]); // 1+3+5+7+9
    }

    #[test]
    fn scanf_consumes_input_in_order() {
        let r = go(
            r#"
            int main() {
                int a;
                int b;
                scanf("%d", &a);
                scanf("%d", &b);
                printf("%d", a - b);
                return 0;
            }
            "#,
            &[10, 4],
        );
        assert_eq!(r.output, vec![6]);
        assert_eq!(r.inputs_consumed, 2);
    }

    #[test]
    fn scanf_returns_read_count_and_eof_zeroes() {
        let r = go(
            r#"
            int main() {
                int a;
                int n;
                n = scanf("%d", &a);
                printf("%d %d", n, a);
                n = scanf("%d", &a);
                printf("%d %d", n, a);
                return 0;
            }
            "#,
            &[7],
        );
        assert_eq!(r.output, vec![1, 7, 0, 0]);
    }

    #[test]
    fn exit_unwinds_from_callee() {
        let r = go(
            r#"
            int g;
            void die(int c) { exit(c); }
            int main() { g = 1; die(3); g = 2; printf("%d", g); return 0; }
            "#,
            &[],
        );
        assert_eq!(r.exit_code, 3);
        assert!(r.output.is_empty());
    }

    #[test]
    fn function_pointers_dispatch() {
        let r = go(
            r#"
            int add(int a, int b) { return a + b; }
            int sub(int a, int b) { return a - b; }
            int main() {
                int (*p)(int, int);
                int x;
                int which;
                scanf("%d", &which);
                if (which == 1) { p = add; } else { p = sub; }
                x = p(10, 3);
                printf("%d", x);
                return 0;
            }
            "#,
            &[1],
        );
        assert_eq!(r.output, vec![13]);
        let r2 = go(
            r#"
            int add(int a, int b) { return a + b; }
            int sub(int a, int b) { return a - b; }
            int main() {
                int (*p)(int, int);
                int x;
                int which;
                scanf("%d", &which);
                if (which == 1) { p = add; } else { p = sub; }
                x = p(10, 3);
                printf("%d", x);
                return 0;
            }
            "#,
            &[2],
        );
        assert_eq!(r2.output, vec![7]);
    }

    #[test]
    fn fuel_limit_detects_infinite_loops() {
        let p = frontend("int main() { while (1) { } return 0; }").unwrap();
        assert_eq!(
            exec(&ExecRequest::new(&p).with_fuel(1000)),
            Err(InterpError::OutOfFuel { steps: 1001 })
        );
    }

    #[test]
    fn recursion_limit_is_configurable() {
        let p = frontend(
            r#"
            int f(int n) { int r; r = f(n + 1); return r; }
            int main() { printf("%d", f(0)); return 0; }
            "#,
        )
        .unwrap();
        assert_eq!(
            exec(&ExecRequest::new(&p).with_recursion_limit(8)),
            Err(InterpError::RecursionLimit)
        );
    }

    #[test]
    fn division_by_zero_reported() {
        let p = frontend("int main() { int x; x = 1 / 0; return x; }").unwrap();
        assert!(matches!(
            exec(&ExecRequest::new(&p).with_fuel(1000)),
            Err(InterpError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn short_circuit_evaluation() {
        // 1 || (1/0) must not divide; 0 && (1/0) must not divide.
        let r = go(
            r#"int main() { printf("%d %d", 1 || (1 / 0), 0 && (1 / 0)); return 0; }"#,
            &[],
        );
        assert_eq!(r.output, vec![1, 0]);
    }

    #[test]
    fn fig1_program_behavior() {
        let r = go(
            r#"
            int g1, g2, g3;
            void p(int a, int b) { g1 = a; g2 = b; g3 = g2; }
            int main() {
                g2 = 100;
                p(g2, 2);
                p(g2, 3);
                p(4, g1 + g2);
                printf("%d", g2);
            }
            "#,
            &[],
        );
        // p(g2,2): g1=100,g2=2; p(g2,3): g1=2,g2=3; p(4,g1+g2)=p(4,5): g2=5.
        assert_eq!(r.output, vec![5]);
    }
}
