//! Degenerate-input coverage for the automaton toolkit: empty languages,
//! single-state automata through the full MRD chain, and `remap_symbols`
//! under identity and permutation maps. These are the shapes the slicing
//! pipeline produces for unreachable criteria and trivial programs, where
//! off-by-one state handling is easiest to get wrong.

use specslice_fsa::dfa::Dfa;
use specslice_fsa::hopcroft::{minimize, trim};
use specslice_fsa::mrd::{is_reverse_deterministic, mrd, mrd_with_stats};
use specslice_fsa::ops::equivalent;
use specslice_fsa::{Nfa, Symbol};

fn sym(i: u32) -> Symbol {
    Symbol(i)
}

// ---- empty-language DFA minimization -----------------------------------

#[test]
fn minimize_fresh_dfa_is_single_dead_state() {
    let m = minimize(&Dfa::new());
    assert_eq!(m.state_count(), 1);
    assert!(m.finals().is_empty());
    assert_eq!(m.transition_count(), 0);
    assert!(!m.accepts(&[]));
    assert!(!m.accepts(&[sym(0)]));
}

#[test]
fn minimize_unreachable_finals_is_empty_language() {
    // The only accepting state is unreachable; the language is empty and
    // minimization must collapse everything to the canonical dead DFA.
    let mut d = Dfa::new();
    let q1 = d.add_state();
    let island = d.add_state();
    d.set_transition(d.initial(), sym(0), q1);
    d.set_transition(island, sym(1), island);
    d.set_final(island);
    let m = minimize(&d);
    assert_eq!(m.state_count(), 1);
    assert!(m.finals().is_empty());
    assert!(!m.accepts(&[sym(0)]));
}

#[test]
fn minimize_cycle_with_no_finals() {
    // A strongly-connected DFA with no accepting state: trim keeps only the
    // initial state, minimize yields the dead DFA, and neither loops.
    let mut d = Dfa::new();
    let q1 = d.add_state();
    d.set_transition(d.initial(), sym(0), q1);
    d.set_transition(q1, sym(0), d.initial());
    assert_eq!(trim(&d).state_count(), 1);
    let m = minimize(&d);
    assert_eq!(m.state_count(), 1);
    assert!(m.finals().is_empty());
}

// ---- single-state automata through the full MRD chain ------------------

#[test]
fn mrd_of_single_state_empty_language() {
    // One non-accepting state: L = ∅. The MRD pipeline must survive the
    // reverse (no finals → no ε-seeds), determinize, minimize, reverse,
    // ε-removal, trim chain and still denote ∅.
    let n = Nfa::new();
    assert!(n.is_empty_language());
    let (m, stats) = mrd_with_stats(&n);
    assert!(m.is_empty_language());
    assert!(m.finals().is_empty());
    assert!(equivalent(&n, &m));
    assert!(stats.mrd_states >= 1, "the initial state always exists");
}

#[test]
fn mrd_of_single_state_epsilon_language() {
    // One accepting initial state: L = {ε}. The unique final state of the
    // MRD automaton is the initial state itself.
    let mut n = Nfa::new();
    n.set_final(n.initial());
    let m = mrd(&n);
    assert!(m.accepts(&[]));
    assert!(!m.accepts(&[sym(0)]));
    assert!(equivalent(&n, &m));
    assert!(is_reverse_deterministic(&m));
    assert_eq!(m.state_count(), 1);
    assert_eq!(m.transition_count(), 0);
}

#[test]
fn mrd_of_single_state_with_self_loop() {
    // L = a*: one accepting state with a self loop — the smallest infinite
    // language. ε ∈ L, which no slice language ever has (words are always
    // `vertex · call-site*`), so the strict unique-final-state form of
    // reverse determinism is out of reach here; the pipeline must still
    // terminate and preserve the language exactly.
    let mut n = Nfa::new();
    n.set_final(n.initial());
    n.add_transition(n.initial(), Some(sym(7)), n.initial());
    let m = mrd(&n);
    assert!(equivalent(&n, &m));
    for len in 0..4 {
        assert!(m.accepts(&vec![sym(7); len]), "a^{len}");
    }
    assert!(!m.accepts(&[sym(8)]));
    // The ε-word forces a second accepting state (the initial one); adding
    // a non-ε variant of the same loop stays in the MRD domain:
    let mut anchored = Nfa::new(); // L = b a*
    let q1 = anchored.add_state();
    anchored.add_transition(anchored.initial(), Some(sym(9)), q1);
    anchored.add_transition(q1, Some(sym(7)), q1);
    anchored.set_final(q1);
    let am = mrd(&anchored);
    assert!(equivalent(&anchored, &am));
    assert!(is_reverse_deterministic(&am));
    assert_eq!(am.state_count(), 2);
}

#[test]
fn mrd_idempotent_on_degenerate_inputs() {
    for build in [Nfa::new, || {
        let mut n = Nfa::new();
        n.set_final(n.initial());
        n
    }] {
        let once = mrd(&build());
        let twice = mrd(&once);
        assert_eq!(format!("{once:?}"), format!("{twice:?}"));
    }
}

// ---- remap_symbols: identity and permutations --------------------------

/// L = a b* c ∪ d, with a dead branch so the state structure is not trim.
fn sample() -> Nfa {
    let (a, b, c, d) = (sym(0), sym(1), sym(2), sym(3));
    let mut n = Nfa::new();
    let q1 = n.add_state();
    let q2 = n.add_state();
    let dead = n.add_state();
    n.add_transition(n.initial(), Some(a), q1);
    n.add_transition(q1, Some(b), q1);
    n.add_transition(q1, Some(c), q2);
    n.add_transition(n.initial(), Some(d), q2);
    n.add_transition(q2, Some(a), dead);
    n.set_final(q2);
    n
}

#[test]
fn remap_symbols_identity_is_verbatim() {
    let n = sample();
    let id = n.remap_symbols(Some).expect("identity covers the alphabet");
    // Identity preserves the structure exactly — state count, transitions,
    // finals, and the deterministic Debug rendering.
    assert_eq!(format!("{n:?}"), format!("{id:?}"));
    assert!(equivalent(&n, &id));
}

#[test]
fn remap_symbols_permutation_relabels_language() {
    let n = sample();
    // The permutation (0 1 2 3) → (3 2 1 0).
    let perm = |s: Symbol| Some(Symbol(3 - s.0));
    let p = n
        .remap_symbols(perm)
        .expect("permutation covers the alphabet");
    let (a, b, c, d) = (sym(0), sym(1), sym(2), sym(3));
    // a b b c ∈ L maps to d c c b; d maps to a.
    assert!(p.accepts(&[d, c, c, b]));
    assert!(p.accepts(&[a]));
    assert!(!p.accepts(&[a, b, b, c]));
    // Applying the (self-inverse) permutation twice is the identity.
    let back = p.remap_symbols(perm).expect("round trip");
    assert_eq!(format!("{n:?}"), format!("{back:?}"));
    assert!(equivalent(&n, &back));
    // State structure is preserved, only labels change.
    assert_eq!(n.state_count(), p.state_count());
    assert_eq!(n.transition_count(), p.transition_count());
}

#[test]
fn remap_symbols_partial_map_fails_without_side_effects() {
    let n = sample();
    // A map with no image for symbol 3 cannot relabel faithfully.
    let partial = |s: Symbol| (s.0 < 3).then_some(s);
    assert!(n.remap_symbols(partial).is_none());
    // ε-transitions pass through even when the map would reject symbols.
    let mut eps = Nfa::new();
    let q1 = eps.add_state();
    eps.add_transition(eps.initial(), None, q1);
    eps.set_final(q1);
    let out = eps.remap_symbols(|_| None).expect("ε-only automaton");
    assert!(out.accepts(&[]));
}
