//! Nondeterministic finite automata with ε-transitions.

use crate::hash::{FxHashMap, FxHashSet};
use crate::Symbol;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Identifier of an automaton state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Dense index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Row length beyond which transition dedup switches from a linear scan of
/// the source state's row to a hashed triple set. The query pipeline builds
/// thousands of tiny automata (MRD chains run seven passes over automata
/// with a handful of states), and for those the hash set's growth-and-rehash
/// cost dwarfs the handful of comparisons a row scan needs; only automata
/// with genuinely wide rows (saturation outputs, the reachable automaton)
/// ever pay for hashing.
const LINEAR_DEDUP_MAX: usize = 32;

/// A nondeterministic finite automaton with a single initial state,
/// optional ε-transitions (`label = None`), and any number of final states.
#[derive(Clone, Default)]
pub struct Nfa {
    n_states: u32,
    n_transitions: usize,
    finals: BTreeSet<StateId>,
    /// Outgoing transitions per state: `(label, target)`.
    out: Vec<Vec<(Option<Symbol>, StateId)>>,
    /// Deduplication of transitions (fast deterministic hasher). `None`
    /// while every row is short enough for an exact linear scan; built
    /// lazily from the rows the first time one crosses
    /// [`LINEAR_DEDUP_MAX`].
    seen: Option<FxHashSet<(StateId, Option<Symbol>, StateId)>>,
}

impl fmt::Debug for Nfa {
    /// Deterministic rendering: states, finals, and transitions in
    /// insertion order. The `seen` dedup set is omitted — it is backed by a
    /// randomly-seeded hasher, and printing it would make equal automata
    /// render differently across runs (clients fingerprint slices by their
    /// Debug output to check cross-thread determinism).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Nfa")
            .field("n_states", &self.n_states)
            .field("finals", &self.finals)
            .field("out", &self.out)
            .finish_non_exhaustive()
    }
}

impl Nfa {
    /// Creates an automaton with a single (initial) state `q0`.
    pub fn new() -> Nfa {
        let mut n = Nfa::default();
        n.add_state();
        n
    }

    /// The initial state (always state 0).
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.n_states);
        self.n_states += 1;
        self.out.push(Vec::new());
        id
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of transitions (including ε).
    pub fn transition_count(&self) -> usize {
        self.n_transitions
    }

    /// Marks `q` as accepting.
    pub fn set_final(&mut self, q: StateId) {
        self.finals.insert(q);
    }

    /// The accepting states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `q` is accepting.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals.contains(&q)
    }

    /// Adds a transition; `label = None` is an ε-transition. Duplicate
    /// transitions are ignored. Returns `true` if the transition is new.
    pub fn add_transition(&mut self, from: StateId, label: Option<Symbol>, to: StateId) -> bool {
        assert!(from.index() < self.out.len(), "from-state out of range");
        assert!(to.index() < self.out.len(), "to-state out of range");
        let is_new = match &mut self.seen {
            Some(seen) => seen.insert((from, label, to)),
            None => {
                let row = &self.out[from.index()];
                if row.len() < LINEAR_DEDUP_MAX {
                    !row.iter().any(|&(l, t)| l == label && t == to)
                } else {
                    // A row outgrew the linear scan: hash every existing
                    // transition once and stay hashed from here on.
                    let mut seen = FxHashSet::default();
                    seen.reserve(self.n_transitions + 1);
                    seen.extend(self.transitions());
                    let is_new = seen.insert((from, label, to));
                    self.seen = Some(seen);
                    is_new
                }
            }
        };
        if is_new {
            self.out[from.index()].push((label, to));
            self.n_transitions += 1;
        }
        is_new
    }

    /// Whether a given transition exists.
    pub fn has_transition(&self, from: StateId, label: Option<Symbol>, to: StateId) -> bool {
        match &self.seen {
            Some(seen) => seen.contains(&(from, label, to)),
            None => self.out[from.index()]
                .iter()
                .any(|&(l, t)| l == label && t == to),
        }
    }

    /// Outgoing transitions of `q`.
    pub fn transitions_from(&self, q: StateId) -> &[(Option<Symbol>, StateId)] {
        &self.out[q.index()]
    }

    /// Iterates over every transition `(from, label, to)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Option<Symbol>, StateId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(i, ts)| ts.iter().map(move |&(l, t)| (StateId(i as u32), l, t)))
    }

    /// The set of symbols that occur on transitions.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        self.transitions().filter_map(|(_, l, _)| l).collect()
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = set.clone();
        let mut work: Vec<StateId> = set.iter().copied().collect();
        while let Some(q) = work.pop() {
            for &(l, t) in self.transitions_from(q) {
                if l.is_none() && closure.insert(t) {
                    work.push(t);
                }
            }
        }
        closure
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut cur: BTreeSet<StateId> = BTreeSet::new();
        cur.insert(self.initial());
        cur = self.epsilon_closure(&cur);
        for &sym in word {
            let mut next = BTreeSet::new();
            for &q in &cur {
                for &(l, t) in self.transitions_from(q) {
                    if l == Some(sym) {
                        next.insert(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = self.epsilon_closure(&next);
        }
        cur.iter().any(|q| self.is_final(q.to_owned()))
    }

    /// Whether the accepted language is empty.
    pub fn is_empty_language(&self) -> bool {
        // BFS from the initial state; empty iff no final state is reachable.
        let mut seen = vec![false; self.state_count()];
        let mut work = vec![self.initial()];
        seen[self.initial().index()] = true;
        while let Some(q) = work.pop() {
            if self.is_final(q) {
                return false;
            }
            for &(_, t) in self.transitions_from(q) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    work.push(t);
                }
            }
        }
        true
    }

    /// Enumerates up to `limit` accepted words of length ≤ `max_len`,
    /// shortest first (deterministic order). Intended for tests.
    pub fn words(&self, max_len: usize, limit: usize) -> Vec<Vec<Symbol>> {
        let mut results = Vec::new();
        let mut queue: VecDeque<(BTreeSet<StateId>, Vec<Symbol>)> = VecDeque::new();
        let mut start = BTreeSet::new();
        start.insert(self.initial());
        start = self.epsilon_closure(&start);
        queue.push_back((start, Vec::new()));
        while let Some((states, word)) = queue.pop_front() {
            if results.len() >= limit {
                break;
            }
            if states.iter().any(|&q| self.is_final(q)) {
                results.push(word.clone());
            }
            if word.len() >= max_len {
                continue;
            }
            // Group successors by symbol, deterministically.
            let mut by_sym: std::collections::BTreeMap<Symbol, BTreeSet<StateId>> =
                Default::default();
            for &q in &states {
                for &(l, t) in self.transitions_from(q) {
                    if let Some(sym) = l {
                        by_sym.entry(sym).or_default().insert(t);
                    }
                }
            }
            for (sym, next) in by_sym {
                let closure = self.epsilon_closure(&next);
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((closure, w));
            }
        }
        results
    }

    /// Rewrites every transition label through `map`, preserving the state
    /// structure (ε-transitions pass through unchanged). Returns `None` when
    /// `map` has no image for some symbol — the caller's mapping does not
    /// cover this automaton's alphabet, so no faithful relabeling exists.
    pub fn remap_symbols(&self, map: impl Fn(Symbol) -> Option<Symbol>) -> Option<Nfa> {
        let mut out = Nfa::new();
        for _ in 1..self.state_count() {
            out.add_state();
        }
        for (from, label, to) in self.transitions() {
            let label = match label {
                None => None,
                Some(s) => Some(map(s)?),
            };
            out.add_transition(from, label, to);
        }
        for &f in &self.finals {
            out.set_final(f);
        }
        Some(out)
    }

    /// Restricts the automaton to states both reachable from the initial
    /// state and co-reachable to a final state ("trim"). State ids are
    /// renumbered; the mapping old→new is returned alongside.
    pub fn trimmed(&self) -> (Nfa, FxHashMap<StateId, StateId>) {
        let n = self.state_count();
        let mut reach = vec![false; n];
        let mut work = vec![self.initial()];
        reach[self.initial().index()] = true;
        while let Some(q) = work.pop() {
            for &(_, t) in self.transitions_from(q) {
                if !reach[t.index()] {
                    reach[t.index()] = true;
                    work.push(t);
                }
            }
        }
        // Co-reachability over reversed transitions.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (f, _, t) in self.transitions() {
            rev[t.index()].push(f);
        }
        let mut coreach = vec![false; n];
        let mut work: Vec<StateId> = self.finals.iter().copied().collect();
        for &q in &self.finals {
            coreach[q.index()] = true;
        }
        while let Some(q) = work.pop() {
            for &p in &rev[q.index()] {
                if !coreach[p.index()] {
                    coreach[p.index()] = true;
                    work.push(p);
                }
            }
        }
        let keep = |q: StateId| reach[q.index()] && coreach[q.index()];

        let mut out = Nfa::new();
        let mut map: FxHashMap<StateId, StateId> = FxHashMap::default();
        map.insert(self.initial(), out.initial());
        // The initial state is always kept (it may be dead; then language is ∅).
        for q in (0..n as u32).map(StateId) {
            if q != self.initial() && keep(q) {
                map.insert(q, out.add_state());
            }
        }
        for (f, l, t) in self.transitions() {
            if (f == self.initial() || keep(f)) && keep(t) {
                if let (Some(&nf), Some(&nt)) = (map.get(&f), map.get(&t)) {
                    out.add_transition(nf, l, nt);
                }
            }
        }
        for &q in &self.finals {
            if let Some(&nq) = map.get(&q) {
                out.set_final(nq);
            }
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn accepts_simple_word() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        n.add_transition(q0, Some(sym(7)), q1);
        n.set_final(q1);
        assert!(n.accepts(&[sym(7)]));
        assert!(!n.accepts(&[sym(8)]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn epsilon_closure_chains() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_transition(q0, None, q1);
        n.add_transition(q1, None, q2);
        n.set_final(q2);
        assert!(n.accepts(&[]));
    }

    #[test]
    fn duplicate_transitions_ignored() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        assert!(n.add_transition(q0, Some(sym(1)), q1));
        assert!(!n.add_transition(q0, Some(sym(1)), q1));
        assert_eq!(n.transition_count(), 1);
    }

    #[test]
    fn empty_language_detection() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let dead = n.add_state();
        n.add_transition(q0, Some(sym(1)), dead);
        assert!(n.is_empty_language());
        n.add_transition(q0, Some(sym(2)), q1);
        n.set_final(q1);
        assert!(!n.is_empty_language());
    }

    #[test]
    fn word_enumeration_shortest_first() {
        // L = a b* over {a=1, b=2}
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        n.add_transition(q0, Some(sym(1)), q1);
        n.add_transition(q1, Some(sym(2)), q1);
        n.set_final(q1);
        let ws = n.words(3, 10);
        assert_eq!(
            ws,
            vec![
                vec![sym(1)],
                vec![sym(1), sym(2)],
                vec![sym(1), sym(2), sym(2)]
            ]
        );
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let dead = n.add_state(); // reachable but not co-reachable
        let unreach = n.add_state(); // co-reachable but not reachable
        n.add_transition(q0, Some(sym(1)), q1);
        n.add_transition(q0, Some(sym(2)), dead);
        n.add_transition(unreach, Some(sym(3)), q1);
        n.set_final(q1);
        let (t, map) = n.trimmed();
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts(&[sym(1)]));
        assert!(!t.accepts(&[sym(2)]));
        assert!(map.contains_key(&q1));
        assert!(!map.contains_key(&dead));
        assert!(!map.contains_key(&unreach));
    }

    #[test]
    fn symbols_collects_alphabet() {
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        n.add_transition(q0, Some(sym(5)), q1);
        n.add_transition(q0, None, q1);
        assert_eq!(n.symbols().into_iter().collect::<Vec<_>>(), vec![sym(5)]);
    }
}
