//! Minimal reverse-deterministic (MRD) automaton construction — the
//! automaton-theoretic core of the specialization-slicing algorithm
//! (Alg. 1, lines 4–8; Obs. 3.11 and Thm. 3.16 of the paper).

use crate::dfa::Dfa;
use crate::hopcroft::minimize;
use crate::nfa::{Nfa, StateId};
use crate::ops::{remove_epsilon, reverse};
use std::collections::HashMap;

/// Computes the minimal reverse-deterministic automaton for `L(a1)`:
///
/// ```text
/// A6 = removeEpsilonTransitions(reverse(minimize(determinize(reverse(A1)))))
/// ```
///
/// The language is unchanged (`L(A6) = L(A1)`); only the *structure* becomes
/// canonical: deterministic and minimal when read backwards from the unique
/// final state. For stack-configuration-slice languages, the transitions out
/// of the initial state of the result then spell out the solution of the
/// configuration-partitioning problem (Thm. 3.17).
///
/// Also returns the intermediate determinized-reversed automaton's state
/// count, which the evaluation section compares against the minimized size
/// (§4.2's "determinize output shrinks by 4.4–34%" observation).
pub fn mrd_with_stats(a1: &Nfa) -> (Nfa, MrdStats) {
    let a2 = reverse(a1);
    let a3 = Dfa::determinize(&a2);
    let a4 = minimize(&a3);
    let a5 = reverse(&a4.to_nfa());
    let a6 = remove_epsilon(&a5);
    let (a6, _) = a6.trimmed();
    let stats = MrdStats {
        input_states: a1.state_count(),
        determinized_states: a3.state_count(),
        minimized_states: a4.state_count(),
        mrd_states: a6.state_count(),
        mrd_transitions: a6.transition_count(),
    };
    (a6, stats)
}

/// Convenience wrapper around [`mrd_with_stats`] discarding the statistics.
pub fn mrd(a1: &Nfa) -> Nfa {
    mrd_with_stats(a1).0
}

/// Size observations made during the MRD pipeline (used by the `det-shrink`
/// experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MrdStats {
    /// States of the input automaton `A1`.
    pub input_states: usize,
    /// States after `determinize(reverse(A1))` (`A3`).
    pub determinized_states: usize,
    /// States after minimization (`A4`).
    pub minimized_states: usize,
    /// States of the final MRD automaton (`A6`).
    pub mrd_states: usize,
    /// Transitions of the final MRD automaton.
    pub mrd_transitions: usize,
}

impl MrdStats {
    /// Fractional shrink achieved by minimization relative to the
    /// determinized automaton (the paper reports 4.4%–34%).
    pub fn minimize_shrink(&self) -> f64 {
        if self.determinized_states == 0 {
            return 0.0;
        }
        1.0 - self.minimized_states as f64 / self.determinized_states as f64
    }
}

/// Checks reverse determinism: read backwards from a unique final state, the
/// automaton is deterministic — i.e. there is exactly one final state, and no
/// two transitions with the same label enter the same state.
pub fn is_reverse_deterministic(nfa: &Nfa) -> bool {
    if nfa.finals().len() != 1 {
        return false;
    }
    let mut seen: HashMap<(StateId, Option<crate::Symbol>), StateId> = HashMap::new();
    for (from, l, to) in nfa.transitions() {
        if l.is_none() {
            return false; // ε would make backward reading nondeterministic
        }
        if let Some(&prev) = seen.get(&(to, l)) {
            if prev != from {
                return false;
            }
        }
        seen.insert((to, l), from);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::equivalent;
    use crate::Symbol;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// A deliberately redundant NFA for
    /// L = { v C1, v C3, w C2 } ∪ { u } — the shape of Fig. 10(a): vertex
    /// symbol then call-string.
    fn fig10_like() -> Nfa {
        let v = sym(0);
        let w = sym(1);
        let u = sym(2);
        let (c1, c2, c3) = (sym(10), sym(11), sym(12));
        let mut n = Nfa::new();
        let q0 = n.initial();
        // duplicate paths on purpose
        let a1 = n.add_state();
        let a2 = n.add_state();
        let b = n.add_state();
        let f = n.add_state();
        n.add_transition(q0, Some(v), a1);
        n.add_transition(q0, Some(v), a2);
        n.add_transition(q0, Some(w), b);
        n.add_transition(q0, Some(u), f);
        n.add_transition(a1, Some(c1), f);
        n.add_transition(a2, Some(c3), f);
        n.add_transition(b, Some(c2), f);
        n.set_final(f);
        n
    }

    #[test]
    fn mrd_preserves_language() {
        let n = fig10_like();
        let m = mrd(&n);
        assert!(equivalent(&n, &m), "language changed by MRD pipeline");
    }

    #[test]
    fn mrd_is_reverse_deterministic() {
        let m = mrd(&fig10_like());
        assert!(is_reverse_deterministic(&m));
    }

    #[test]
    fn mrd_merges_same_context_vertices() {
        // v C1 and v C3 share the suffix languages {C1, C3}; the MRD
        // automaton routes both through one intermediate state (the
        // "specialized procedure" state of the paper).
        let m = mrd(&fig10_like());
        // states: initial, final, state for {C1,C3}-contexts, state for {C2}.
        assert_eq!(m.state_count(), 4);
    }

    #[test]
    fn mrd_idempotent_language_and_size() {
        let m1 = mrd(&fig10_like());
        let m2 = mrd(&m1);
        assert!(equivalent(&m1, &m2));
        assert_eq!(m1.state_count(), m2.state_count());
    }

    #[test]
    fn mrd_on_infinite_language() {
        // L = r (CC)* C  ∪  m — recursion-shaped context language.
        let r = sym(0);
        let m_ = sym(1);
        let c = sym(10);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_transition(q0, Some(r), q1);
        n.add_transition(q1, Some(c), q2);
        n.add_transition(q2, Some(c), q1);
        n.add_transition(q2, None, f);
        n.add_transition(q0, Some(m_), f);
        n.set_final(f);
        let out = mrd(&n);
        assert!(is_reverse_deterministic(&out));
        assert!(out.accepts(&[r, c]));
        assert!(out.accepts(&[r, c, c, c]));
        assert!(!out.accepts(&[r, c, c]));
        assert!(out.accepts(&[m_]));
        assert!(equivalent(&n, &out));
    }

    #[test]
    fn stats_report_shrink() {
        let (_, stats) = mrd_with_stats(&fig10_like());
        assert!(stats.minimized_states <= stats.determinized_states);
        assert!(stats.minimize_shrink() >= 0.0);
    }

    #[test]
    fn reverse_determinism_detector() {
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_transition(n.initial(), Some(sym(0)), q1);
        n.add_transition(n.initial(), Some(sym(0)), q2);
        n.add_transition(q1, Some(sym(1)), f);
        n.add_transition(q2, Some(sym(1)), f);
        n.set_final(f);
        // two 1-labeled transitions enter f from different states
        assert!(!is_reverse_deterministic(&n));
    }
}
