//! Minimal reverse-deterministic (MRD) automaton construction — the
//! automaton-theoretic core of the specialization-slicing algorithm
//! (Alg. 1, lines 4–8; Obs. 3.11 and Thm. 3.16 of the paper).

use crate::dfa::Dfa;
use crate::hash::FxHashMap;
use crate::hopcroft::minimize;
use crate::nfa::{Nfa, StateId};
use crate::ops::{remove_epsilon, reverse};
use crate::Symbol;
use std::collections::VecDeque;

/// Computes the minimal reverse-deterministic automaton for `L(a1)`:
///
/// ```text
/// A6 = removeEpsilonTransitions(reverse(minimize(determinize(reverse(A1)))))
/// ```
///
/// The language is unchanged (`L(A6) = L(A1)`); only the *structure* becomes
/// canonical: deterministic and minimal when read backwards from the unique
/// final state. For stack-configuration-slice languages, the transitions out
/// of the initial state of the result then spell out the solution of the
/// configuration-partitioning problem (Thm. 3.17).
///
/// Also returns the intermediate determinized-reversed automaton's state
/// count, which the evaluation section compares against the minimized size
/// (§4.2's "determinize output shrinks by 4.4–34%" observation).
pub fn mrd_with_stats(a1: &Nfa) -> (Nfa, MrdStats) {
    // `determinize(reverse(a1))`, fused — the reversed NFA is never
    // materialized. ε-transitions in `a1` (always present in forward/post*
    // pipelines, possible for library callers) are closed in place during
    // the subset construction.
    let a3 = determinize_reversed(a1);
    let a4 = minimize(&a3);
    // `reverse → remove_epsilon → trim → canonicalize` over `a4`, fused:
    // `a4` is trim (a `minimize` guarantee), so in the common case the
    // reversed automaton needs no ε-bridge, no ε-removal, and no trim pass —
    // and because the canonical renumbering is a backward BFS of the
    // reversal (= a forward BFS of `a4`), the canonical form can be written
    // down directly, skipping the intermediate automaton entirely. The
    // fallback runs the original pass sequence for the degenerate shapes
    // (empty language, ε ∈ L) where `canonicalize_mrd`'s precondition
    // bail-outs keep the input presentation.
    //
    // Canonical renumbering: the MRD automaton of a language is unique up
    // to isomorphism, and the canonical pass picks one representative — so
    // two pipelines that arrive at the same *language* through differently
    // presented inputs (a fresh `Prestar` run vs. a symbol-remapped cached
    // automaton, see `specslice`'s incremental re-slicing) emit bit-for-bit
    // identical automata.
    let a6 = match reverse_trim_canonical(&a4) {
        Some(a6) => a6,
        None => {
            let a5 = reverse(&a4.to_nfa());
            let a6 = remove_epsilon(&a5);
            canonicalize_mrd(&a6.trimmed().0)
        }
    };
    let stats = MrdStats {
        input_states: a1.state_count(),
        determinized_states: a3.state_count(),
        minimized_states: a4.state_count(),
        mrd_states: a6.state_count(),
        mrd_transitions: a6.transition_count(),
    };
    (a6, stats)
}

/// Convenience wrapper around [`mrd_with_stats`] discarding the statistics.
pub fn mrd(a1: &Nfa) -> Nfa {
    mrd_with_stats(a1).0
}

/// The *canonical* trimmed ε-free reversal of a trim DFA, or `None` for
/// the degenerate shapes (no final state, or an accepting initial state —
/// i.e. ε ∈ L) that need the general ε-bridged reversal plus a trim and a
/// canonicalize pass.
///
/// Equal, bit for bit, to
/// `canonicalize_mrd(&remove_epsilon(reverse(dfa.to_nfa())).trimmed().0)`:
///
/// - The ε-bridge from the fresh initial to the old finals is flattened on
///   the spot by giving the fresh initial a copy of every transition into a
///   final, reversed; the states that survive the trim are exactly those
///   with an original path of length ≥ 1 to a final (a final with no
///   outgoing edges exists in the reversal only through the fresh
///   initial's copies).
/// - The canonical numbering is computed directly on `dfa`:
///   `canonicalize_mrd`'s backward BFS from the reversal's unique final
///   state over symbol-sorted incoming transitions *is* a forward BFS over
///   `dfa` from its initial state over symbol-sorted rows (the reversal
///   flips every edge), with the reversal's fresh initial pinned to 0 and
///   its final — the image of `dfa`'s initial — numbered 1. The fresh
///   initial also shows up as a BFS source (once per edge into a `dfa`
///   final) but its number is already pinned, so it never disturbs the
///   discovery order.
///
/// Every trimmed state is discovered: a kept state lies on a path
/// initial → q → final whose prefix states are all kept (each has a ≥
/// 1-edge path to a final through q), so the forward BFS reaches q through
/// kept states. The defensive check below bails to the general path rather
/// than rely on that argument at runtime.
fn reverse_trim_canonical(dfa: &Dfa) -> Option<Nfa> {
    if dfa.finals().is_empty() || dfa.is_final(dfa.initial()) {
        return None;
    }
    let n = dfa.state_count();
    // Keep set: states with a ≥ 1-edge path to a final (backward closure
    // over predecessor edges, seeded from the finals' predecessors). In a
    // trim DFA this is every non-final state plus any final that reaches a
    // final again.
    let mut pred_off: Vec<u32> = vec![0; n + 1];
    for (_, _, t) in dfa.transitions() {
        pred_off[t.index() + 1] += 1;
    }
    for i in 0..n {
        pred_off[i + 1] += pred_off[i];
    }
    let mut preds: Vec<StateId> = vec![StateId(0); *pred_off.last().unwrap() as usize];
    let mut pred_cur = pred_off.clone();
    for (f, _, t) in dfa.transitions() {
        let at = &mut pred_cur[t.index()];
        preds[*at as usize] = f;
        *at += 1;
    }
    let pred_row =
        |q: StateId| &preds[pred_off[q.index()] as usize..pred_off[q.index() + 1] as usize];
    let mut keep = vec![false; n];
    let mut work: Vec<StateId> = Vec::new();
    for &f in dfa.finals() {
        for &q in pred_row(f) {
            if !keep[q.index()] {
                keep[q.index()] = true;
                work.push(q);
            }
        }
    }
    while let Some(q) = work.pop() {
        for &p in pred_row(q) {
            if !keep[p.index()] {
                keep[p.index()] = true;
                work.push(p);
            }
        }
    }
    if !keep[dfa.initial().index()] {
        // No edge into a final is reachable through the initial state —
        // possible only for shapes the checks above should have excluded;
        // bail to the general path rather than reason about it.
        return None;
    }
    // Canonical ids, indexed by `dfa` state (the reversal's fresh initial
    // is 0 and never appears here): breadth-first from `dfa`'s initial
    // (the reversal's final, number 1), following symbol-sorted rows into
    // kept states.
    const UNASSIGNED: u32 = u32::MAX;
    let mut canon: Vec<u32> = vec![UNASSIGNED; n];
    canon[dfa.initial().index()] = 1;
    let mut next = 1u32;
    let mut queue = VecDeque::new();
    queue.push_back(dfa.initial());
    let mut kept_edges = 0usize;
    while let Some(f) = queue.pop_front() {
        for &(_, t) in dfa.transitions_from(f) {
            kept_edges += 1 + usize::from(dfa.is_final(t));
            if keep[t.index()] && canon[t.index()] == UNASSIGNED {
                next += 1;
                canon[t.index()] = next;
                queue.push_back(t);
            }
        }
    }
    if keep.iter().zip(&canon).any(|(&k, &c)| k && c == UNASSIGNED) {
        // A kept state the forward BFS cannot reach — possible only for
        // shapes the checks above should have excluded; bail to the
        // general path rather than reason about it.
        return None;
    }
    // Emit the reversed transitions under the canonical numbering, sorted —
    // exactly the presentation `canonicalize_mrd` produces.
    let mut ts: Vec<(u32, Symbol, u32)> = Vec::with_capacity(kept_edges);
    for (f, s, t) in dfa.transitions() {
        if !keep[f.index()] {
            continue; // a final that never reaches another accepting path
        }
        if keep[t.index()] {
            ts.push((canon[t.index()], s, canon[f.index()]));
        }
        if dfa.is_final(t) {
            ts.push((0, s, canon[f.index()]));
        }
    }
    ts.sort_unstable();
    let mut out = Nfa::new();
    for _ in 1..=next {
        out.add_state();
    }
    for (f, s, t) in ts {
        out.add_transition(StateId(f), Some(s), StateId(t));
    }
    out.set_final(StateId(1));
    Some(out)
}

/// `Dfa::determinize(&reverse(a1))` in one pass: the subset construction
/// runs directly over `a1`'s transposed adjacency, so the reversed NFA is
/// never materialized. The reversal's ε-transitions come from two sources,
/// both handled in place: the ε-bridge from its fresh initial to `a1`'s
/// finals (folded into the start subset), and `a1`'s own ε-transitions,
/// flipped (closed over `eps_inc` exactly where `determinize` would close
/// over the reversed NFA — so forward-oriented inputs such as `post*`
/// results, which always carry ε, take the fused path too).
///
/// Bit-identical to the unfused sequence: subsets correspond 1:1 (original
/// state ids here, shifted ids there, with a sentinel standing in for the
/// reversal's fresh initial — which only ever appears in the start subset,
/// contributes no labeled successors, and is never accepting), successor
/// pairs sort identically either way (the shift is monotone), ε-closures
/// add the same members (the reversal never gains an ε *into* its fresh
/// initial, so the sentinel stays confined to the start subset), and the
/// worklist is driven the same — so even the output's state numbering
/// matches.
fn determinize_reversed(a1: &Nfa) -> Dfa {
    let n = a1.state_count();
    // Transposed adjacency in CSR form (count pass, prefix sums, fill
    // pass): the query pipeline runs this on thousands of small automata
    // per batch, and per-state `Vec` rows would pay one heap allocation
    // per state with an incoming edge — the CSR pays six, total.
    let mut inc_off: Vec<u32> = vec![0; n + 1];
    let mut eps_off: Vec<u32> = vec![0; n + 1];
    for (_, l, t) in a1.transitions() {
        match l {
            Some(_) => inc_off[t.index() + 1] += 1,
            None => eps_off[t.index() + 1] += 1,
        }
    }
    for i in 0..n {
        inc_off[i + 1] += inc_off[i];
        eps_off[i + 1] += eps_off[i];
    }
    let mut inc: Vec<(Symbol, StateId)> =
        vec![(Symbol(0), StateId(0)); *inc_off.last().unwrap() as usize];
    // ε-successors *in the reversal*: reversed state q steps by ε to every
    // a1-state with an ε-edge into q.
    let mut eps_inc: Vec<u32> = vec![0; *eps_off.last().unwrap() as usize];
    let mut inc_cur = inc_off.clone();
    let mut eps_cur = eps_off.clone();
    for (f, l, t) in a1.transitions() {
        match l {
            Some(s) => {
                let at = &mut inc_cur[t.index()];
                inc[*at as usize] = (s, f);
                *at += 1;
            }
            None => {
                let at = &mut eps_cur[t.index()];
                eps_inc[*at as usize] = f.0;
                *at += 1;
            }
        }
    }
    const SENTINEL: u32 = u32::MAX;
    let mut mark = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    // ε-closes `set` (sorted, duplicate-free, sentinel-free) in place over
    // the reversal's ε-edges, keeping it sorted and duplicate-free; `mark`
    // and `stack` are scratch (`mark` false on entry/exit, `stack` empty) —
    // mirrors `Dfa::determinize`'s closure step by step so membership and
    // order come out identical.
    let close = |set: &mut Vec<u32>, mark: &mut Vec<bool>, stack: &mut Vec<u32>| {
        stack.clear();
        stack.extend_from_slice(set);
        for &q in set.iter() {
            mark[q as usize] = true;
        }
        while let Some(q) = stack.pop() {
            let (lo, hi) = (
                eps_off[q as usize] as usize,
                eps_off[q as usize + 1] as usize,
            );
            for &t in &eps_inc[lo..hi] {
                if !mark[t as usize] {
                    mark[t as usize] = true;
                    set.push(t);
                    stack.push(t);
                }
            }
        }
        set.sort_unstable();
        for &q in set.iter() {
            mark[q as usize] = false;
        }
    };
    let mut dfa = Dfa::new();
    let initial = a1.initial().0;
    // Start subset = ε-closure of the reversal's fresh initial: the finals
    // (via the ε-bridge), their closure over flipped ε-edges, and the fresh
    // initial itself. Subsets are sorted dense id vectors; `close` sorts
    // and the sentinel sorts last, so the start subset is sorted too.
    //
    // Discovered subsets live contiguously in `pool` (the worklist holds
    // `(start, end, id)` spans into it); the interning map clones each
    // distinct subset exactly once, at its final size. A reused `targets`
    // buffer stands in for the per-symbol-group temporary, so the subset
    // construction's steady state allocates only on genuinely new subsets.
    let mut targets: Vec<u32> = a1.finals().iter().map(|q| q.0).collect();
    close(&mut targets, &mut mark, &mut stack);
    targets.push(SENTINEL);
    let mut subset_ids: FxHashMap<Vec<u32>, StateId> = FxHashMap::default();
    subset_ids.insert(targets.clone(), dfa.initial());
    if targets.contains(&initial) {
        dfa.set_final(dfa.initial());
    }
    let mut pool: Vec<u32> = Vec::new();
    pool.extend_from_slice(&targets);
    let mut work: Vec<(u32, u32, StateId)> = vec![(0, pool.len() as u32, dfa.initial())];
    let mut pairs: Vec<(Symbol, StateId)> = Vec::new();
    while let Some((lo, hi, did)) = work.pop() {
        // Flatten all reversed successors, then group by symbol — exactly
        // `determinize`'s one-sort grouping.
        pairs.clear();
        for at in lo..hi {
            let q = pool[at as usize];
            if q != SENTINEL {
                let (s, e) = (
                    inc_off[q as usize] as usize,
                    inc_off[q as usize + 1] as usize,
                );
                pairs.extend_from_slice(&inc[s..e]);
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut i = 0;
        while i < pairs.len() {
            let sym = pairs[i].0;
            targets.clear();
            while i < pairs.len() && pairs[i].0 == sym {
                targets.push(pairs[i].1 .0);
                i += 1;
            }
            // `pairs` is sorted and deduplicated, so `targets` is too;
            // ε-closure keeps it that way.
            close(&mut targets, &mut mark, &mut stack);
            let target_id = match subset_ids.get(targets.as_slice()) {
                Some(&id) => id,
                None => {
                    let id = dfa.add_state();
                    if targets.contains(&initial) {
                        dfa.set_final(id);
                    }
                    subset_ids.insert(targets.clone(), id);
                    let start = pool.len() as u32;
                    pool.extend_from_slice(&targets);
                    work.push((start, pool.len() as u32, id));
                    id
                }
            };
            dfa.set_transition(did, sym, target_id);
        }
    }
    dfa
}

/// Size observations made during the MRD pipeline (used by the `det-shrink`
/// experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MrdStats {
    /// States of the input automaton `A1`.
    pub input_states: usize,
    /// States after `determinize(reverse(A1))` (`A3`).
    pub determinized_states: usize,
    /// States after minimization (`A4`).
    pub minimized_states: usize,
    /// States of the final MRD automaton (`A6`).
    pub mrd_states: usize,
    /// Transitions of the final MRD automaton.
    pub mrd_transitions: usize,
}

impl MrdStats {
    /// Fractional shrink achieved by minimization relative to the
    /// determinized automaton (the paper reports 4.4%–34%).
    pub fn minimize_shrink(&self) -> f64 {
        if self.determinized_states == 0 {
            return 0.0;
        }
        1.0 - self.minimized_states as f64 / self.determinized_states as f64
    }
}

/// Renumbers a trim, ε-free, reverse-deterministic automaton into a
/// presentation-independent canonical form.
///
/// Reverse determinism makes the automaton a partial DFA when read backwards
/// from its unique final state, so a backward BFS that explores incoming
/// transitions in symbol order visits states in an order determined by the
/// *language* alone. States are renumbered in that order (the initial state
/// keeps number 0, as [`Nfa`] requires) and transitions are re-inserted
/// sorted, so two automata accepting the same language — however they were
/// produced — canonicalize to identical values.
///
/// Inputs that do not satisfy the preconditions (no unique final state,
/// ε-transitions, or states a backward search cannot reach) are returned
/// unchanged: canonicalization is an optimization of *presentation*, never a
/// change of language.
pub fn canonicalize_mrd(a: &Nfa) -> Nfa {
    let [final_state] = a.finals().iter().copied().collect::<Vec<_>>()[..] else {
        return a.clone();
    };
    let n = a.state_count();
    // Incoming transitions per state, sorted by (symbol, source) — the
    // source component never decides anything when the automaton is truly
    // reverse-deterministic, but keeps the traversal total otherwise.
    let mut inc: Vec<Vec<(Symbol, StateId)>> = vec![Vec::new(); n];
    for (from, label, to) in a.transitions() {
        let Some(sym) = label else {
            return a.clone();
        };
        inc[to.index()].push((sym, from));
    }
    for v in &mut inc {
        v.sort_unstable();
    }

    let mut newid: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    let assign = |state: StateId, newid: &mut Vec<Option<u32>>, next: &mut u32| {
        if newid[state.index()].is_none() {
            // The initial state is pinned to 0; everything else gets the
            // next backward-BFS discovery number.
            let id = if state == a.initial() {
                0
            } else {
                *next += 1;
                *next
            };
            newid[state.index()] = Some(id);
            true
        } else {
            false
        }
    };
    assign(a.initial(), &mut newid, &mut next);
    let mut queue = VecDeque::new();
    if final_state != a.initial() {
        assign(final_state, &mut newid, &mut next);
    }
    queue.push_back(final_state);
    let mut visited = vec![false; n];
    visited[final_state.index()] = true;
    while let Some(t) = queue.pop_front() {
        for &(_, from) in &inc[t.index()] {
            assign(from, &mut newid, &mut next);
            if !visited[from.index()] {
                visited[from.index()] = true;
                queue.push_back(from);
            }
        }
    }
    if newid.iter().any(Option::is_none) {
        return a.clone(); // not trim: keep the input presentation
    }

    let mut out = Nfa::new();
    for _ in 1..n {
        out.add_state();
    }
    let mut ts: Vec<(u32, Symbol, u32)> = a
        .transitions()
        .map(|(f, l, t)| {
            (
                newid[f.index()].expect("assigned"),
                l.expect("ε-free checked above"),
                newid[t.index()].expect("assigned"),
            )
        })
        .collect();
    ts.sort_unstable();
    for (f, s, t) in ts {
        out.add_transition(StateId(f), Some(s), StateId(t));
    }
    out.set_final(StateId(newid[final_state.index()].expect("assigned")));
    out
}

/// Checks reverse determinism: read backwards from a unique final state, the
/// automaton is deterministic — i.e. there is exactly one final state, and no
/// two transitions with the same label enter the same state.
pub fn is_reverse_deterministic(nfa: &Nfa) -> bool {
    if nfa.finals().len() != 1 {
        return false;
    }
    let mut seen: FxHashMap<(StateId, Option<crate::Symbol>), StateId> = FxHashMap::default();
    for (from, l, to) in nfa.transitions() {
        if l.is_none() {
            return false; // ε would make backward reading nondeterministic
        }
        if let Some(&prev) = seen.get(&(to, l)) {
            if prev != from {
                return false;
            }
        }
        seen.insert((to, l), from);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::equivalent;
    use crate::Symbol;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// A deliberately redundant NFA for
    /// L = { v C1, v C3, w C2 } ∪ { u } — the shape of Fig. 10(a): vertex
    /// symbol then call-string.
    fn fig10_like() -> Nfa {
        let v = sym(0);
        let w = sym(1);
        let u = sym(2);
        let (c1, c2, c3) = (sym(10), sym(11), sym(12));
        let mut n = Nfa::new();
        let q0 = n.initial();
        // duplicate paths on purpose
        let a1 = n.add_state();
        let a2 = n.add_state();
        let b = n.add_state();
        let f = n.add_state();
        n.add_transition(q0, Some(v), a1);
        n.add_transition(q0, Some(v), a2);
        n.add_transition(q0, Some(w), b);
        n.add_transition(q0, Some(u), f);
        n.add_transition(a1, Some(c1), f);
        n.add_transition(a2, Some(c3), f);
        n.add_transition(b, Some(c2), f);
        n.set_final(f);
        n
    }

    #[test]
    fn mrd_preserves_language() {
        let n = fig10_like();
        let m = mrd(&n);
        assert!(equivalent(&n, &m), "language changed by MRD pipeline");
    }

    #[test]
    fn mrd_is_reverse_deterministic() {
        let m = mrd(&fig10_like());
        assert!(is_reverse_deterministic(&m));
    }

    #[test]
    fn mrd_merges_same_context_vertices() {
        // v C1 and v C3 share the suffix languages {C1, C3}; the MRD
        // automaton routes both through one intermediate state (the
        // "specialized procedure" state of the paper).
        let m = mrd(&fig10_like());
        // states: initial, final, state for {C1,C3}-contexts, state for {C2}.
        assert_eq!(m.state_count(), 4);
    }

    #[test]
    fn mrd_idempotent_language_and_size() {
        let m1 = mrd(&fig10_like());
        let m2 = mrd(&m1);
        assert!(equivalent(&m1, &m2));
        assert_eq!(m1.state_count(), m2.state_count());
    }

    #[test]
    fn mrd_on_infinite_language() {
        // L = r (CC)* C  ∪  m — recursion-shaped context language.
        let r = sym(0);
        let m_ = sym(1);
        let c = sym(10);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_transition(q0, Some(r), q1);
        n.add_transition(q1, Some(c), q2);
        n.add_transition(q2, Some(c), q1);
        n.add_transition(q2, None, f);
        n.add_transition(q0, Some(m_), f);
        n.set_final(f);
        let out = mrd(&n);
        assert!(is_reverse_deterministic(&out));
        assert!(out.accepts(&[r, c]));
        assert!(out.accepts(&[r, c, c, c]));
        assert!(!out.accepts(&[r, c, c]));
        assert!(out.accepts(&[m_]));
        assert!(equivalent(&n, &out));
    }

    /// The fused subset construction must match the unfused oracle bit for
    /// bit: same state numbering, same finals, same transition list.
    fn assert_fused_matches_oracle(a1: &Nfa) {
        let fused = determinize_reversed(a1);
        let oracle = Dfa::determinize(&reverse(a1));
        assert_eq!(fused.state_count(), oracle.state_count(), "state count");
        assert_eq!(fused.initial(), oracle.initial(), "initial");
        assert_eq!(fused.finals(), oracle.finals(), "finals");
        let tf: Vec<_> = fused.transitions().collect();
        let to: Vec<_> = oracle.transitions().collect();
        assert_eq!(tf, to, "transitions");
    }

    #[test]
    fn fused_determinize_matches_oracle_epsilon_free() {
        assert_fused_matches_oracle(&fig10_like());
    }

    #[test]
    fn fused_determinize_matches_oracle_epsilon_into_final() {
        // The `mrd_on_infinite_language` fixture: an ε-edge into the final
        // state, plus a labeled cycle — the shape pop rules give `post*`
        // output.
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_transition(n.initial(), Some(sym(0)), q1);
        n.add_transition(q1, Some(sym(10)), q2);
        n.add_transition(q2, Some(sym(10)), q1);
        n.add_transition(q2, None, f);
        n.add_transition(n.initial(), Some(sym(1)), f);
        n.set_final(f);
        assert_fused_matches_oracle(&n);
    }

    #[test]
    fn fused_determinize_matches_oracle_epsilon_chains_and_cycles() {
        // ε from the initial state, an ε-chain, an ε-cycle, and several ε
        // edges converging on one state — every ε shape the closure must
        // walk.
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let q3 = n.add_state();
        let q4 = n.add_state();
        let f = n.add_state();
        n.add_transition(n.initial(), None, q1);
        n.add_transition(q1, None, q2);
        n.add_transition(q2, Some(sym(3)), q3);
        n.add_transition(q3, None, q4);
        n.add_transition(q4, None, q3);
        n.add_transition(q1, None, q4);
        n.add_transition(q4, Some(sym(4)), f);
        n.add_transition(q2, Some(sym(4)), f);
        n.set_final(f);
        assert_fused_matches_oracle(&n);
    }

    #[test]
    fn fused_determinize_matches_oracle_multiple_finals_with_epsilon() {
        // Two finals, one reachable from the other by ε — exercises the
        // start-subset closure (the reversal's ε-bridge composed with a1's
        // own flipped ε-edges).
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let f1 = n.add_state();
        let f2 = n.add_state();
        n.add_transition(n.initial(), Some(sym(0)), q1);
        n.add_transition(q1, Some(sym(1)), f1);
        n.add_transition(q1, None, f2);
        n.add_transition(f2, Some(sym(2)), f1);
        n.set_final(f1);
        n.set_final(f2);
        assert_fused_matches_oracle(&n);
    }

    #[test]
    fn mrd_on_epsilon_bearing_input_is_canonical() {
        // An ε-bearing presentation and an ε-free presentation of the same
        // language must canonicalize to identical MRD automata — the
        // property the forward pipeline (whose A1 always carries ε) relies
        // on for memo byte-equality.
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut with_eps = Nfa::new();
        let q1 = with_eps.add_state();
        let q2 = with_eps.add_state();
        let f = with_eps.add_state();
        with_eps.add_transition(with_eps.initial(), Some(a), q1);
        with_eps.add_transition(q1, None, q2);
        with_eps.add_transition(q2, Some(b), f);
        with_eps.add_transition(q1, Some(c), f);
        with_eps.set_final(f);
        let mut plain = Nfa::new();
        let p1 = plain.add_state();
        let pf = plain.add_state();
        plain.add_transition(plain.initial(), Some(a), p1);
        plain.add_transition(p1, Some(b), pf);
        plain.add_transition(p1, Some(c), pf);
        plain.set_final(pf);
        let m1 = mrd(&with_eps);
        let m2 = mrd(&plain);
        assert!(equivalent(&with_eps, &m1));
        assert!(is_reverse_deterministic(&m1));
        assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
    }

    #[test]
    fn stats_report_shrink() {
        let (_, stats) = mrd_with_stats(&fig10_like());
        assert!(stats.minimized_states <= stats.determinized_states);
        assert!(stats.minimize_shrink() >= 0.0);
    }

    #[test]
    fn canonicalize_is_presentation_independent() {
        // Build the same language twice with different state numberings and
        // insertion orders; after canonicalization both must render
        // identically (Debug output is deterministic by construction).
        let m1 = mrd(&fig10_like());
        // A shuffled presentation: same language, permuted construction.
        let v = sym(0);
        let w = sym(1);
        let u = sym(2);
        let (c1, c2, c3) = (sym(10), sym(11), sym(12));
        let mut n = Nfa::new();
        let q0 = n.initial();
        let f = n.add_state();
        let b = n.add_state();
        let a = n.add_state();
        n.set_final(f);
        n.add_transition(b, Some(c2), f);
        n.add_transition(q0, Some(u), f);
        n.add_transition(a, Some(c3), f);
        n.add_transition(q0, Some(w), b);
        n.add_transition(a, Some(c1), f);
        n.add_transition(q0, Some(v), a);
        let m2 = mrd(&n);
        assert!(equivalent(&m1, &m2));
        assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
    }

    #[test]
    fn canonicalize_after_symbol_remap_matches_direct_pipeline() {
        // remap-then-canonicalize equals building with the target symbols
        // from scratch — the property `specslice`'s slice memo relies on.
        let base = fig10_like();
        let shift = |s: Symbol| Some(Symbol(s.0 + 5));
        let remapped = mrd(&base).remap_symbols(shift).unwrap();
        let direct = mrd(&base.remap_symbols(shift).unwrap());
        let recanon = canonicalize_mrd(&remapped);
        assert_eq!(format!("{recanon:?}"), format!("{direct:?}"));
    }

    #[test]
    fn canonicalize_preserves_degenerate_inputs() {
        // Empty language: no final state — returned unchanged.
        let empty = Nfa::new();
        assert_eq!(
            format!("{:?}", canonicalize_mrd(&empty)),
            format!("{empty:?}")
        );
    }

    #[test]
    fn reverse_determinism_detector() {
        let mut n = Nfa::new();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_transition(n.initial(), Some(sym(0)), q1);
        n.add_transition(n.initial(), Some(sym(0)), q2);
        n.add_transition(q1, Some(sym(1)), f);
        n.add_transition(q2, Some(sym(1)), f);
        n.set_final(f);
        // two 1-labeled transitions enter f from different states
        assert!(!is_reverse_deterministic(&n));
    }
}
