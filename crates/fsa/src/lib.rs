//! Finite-state automaton toolkit (the paper's OpenFST substitute).
//!
//! Provides exactly the operations Alg. 1 and Alg. 2 of *Specialization
//! Slicing* need, over an interned `u32` symbol alphabet shared with the
//! pushdown-system layer:
//!
//! * [`Nfa`] with ε-transitions; [`Dfa`] (partial, sparse);
//! * `reverse`, `determinize` (subset construction), `minimize` (sparse
//!   Hopcroft), ε-removal;
//! * product `intersect`, `difference` (`A ∩ ¬B` without materializing the
//!   complement — needed because SDG alphabets are large), language
//!   [`ops::equivalent`], emptiness;
//! * the [`mod@mrd`] pipeline: *minimal reverse-deterministic* automaton
//!   construction (`reverse ∘ minimize ∘ determinize ∘ reverse` plus
//!   ε-removal), which is the heart of the specialization-slicing algorithm.
//!
//! # Example
//!
//! ```
//! use specslice_fsa::{Nfa, Symbol};
//!
//! // L = a(bb)* : the paper's "(C3 C3)* C1"-style context language shape.
//! let a = Symbol(0);
//! let b = Symbol(1);
//! let mut n = Nfa::new();
//! let s0 = n.initial();
//! let s1 = n.add_state();
//! let s2 = n.add_state();
//! n.add_transition(s0, Some(a), s1);
//! n.add_transition(s1, Some(b), s2);
//! n.add_transition(s2, Some(b), s1);
//! n.set_final(s1);
//! assert!(n.accepts(&[a]));
//! assert!(n.accepts(&[a, b, b]));
//! assert!(!n.accepts(&[a, b]));
//! ```

pub mod dfa;
pub mod hash;
pub mod hopcroft;
pub mod mrd;
pub mod nfa;
pub mod ops;

pub use dfa::Dfa;
pub use hash::{FxHashMap, FxHashSet};
pub use mrd::{canonicalize_mrd, is_reverse_deterministic, mrd};
pub use nfa::{Nfa, StateId};

use std::fmt;

/// An interned alphabet symbol.
///
/// The slicing pipeline uses one symbol per SDG vertex and one per call site;
/// the mapping lives in `specslice::encode`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y{}", self.0)
    }
}
