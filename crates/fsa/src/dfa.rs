//! Deterministic finite automata (partial transition function) and the
//! subset construction.

use crate::nfa::{Nfa, StateId};
use crate::Symbol;
use std::collections::{BTreeSet, HashMap};

/// A deterministic automaton with a *partial* transition function: a missing
/// entry means the word is rejected (implicit dead state). This keeps large
/// alphabets (one symbol per SDG vertex) tractable.
#[derive(Clone, Debug)]
pub struct Dfa {
    n_states: u32,
    initial: StateId,
    finals: BTreeSet<StateId>,
    /// Per-state sparse successor map.
    trans: Vec<HashMap<Symbol, StateId>>,
}

impl Dfa {
    /// Creates a DFA with a single initial state and no transitions.
    pub fn new() -> Dfa {
        Dfa {
            n_states: 1,
            initial: StateId(0),
            finals: BTreeSet::new(),
            trans: vec![HashMap::new()],
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.n_states);
        self.n_states += 1;
        self.trans.push(HashMap::new());
        id
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of (explicit) transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.iter().map(HashMap::len).sum()
    }

    /// Marks `q` accepting.
    pub fn set_final(&mut self, q: StateId) {
        self.finals.insert(q);
    }

    /// Whether `q` is accepting.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals.contains(&q)
    }

    /// The accepting states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Sets `δ(from, sym) = to`, replacing any previous entry.
    pub fn set_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        self.trans[from.index()].insert(sym, to);
    }

    /// Looks up `δ(from, sym)`.
    pub fn step(&self, from: StateId, sym: Symbol) -> Option<StateId> {
        self.trans[from.index()].get(&sym).copied()
    }

    /// The successor map of `q`.
    pub fn transitions_from(&self, q: StateId) -> &HashMap<Symbol, StateId> {
        &self.trans[q.index()]
    }

    /// Iterates over every transition `(from, sym, to)`, in state order and
    /// sorted by symbol within a state.
    ///
    /// The order is part of the contract: per-state successors live in
    /// randomly-seeded `HashMap`s, and letting that order leak (e.g. into
    /// [`Dfa::to_nfa`]'s insertion order, and from there into the MRD
    /// automaton a `SpecSlice` carries) would make byte-identical pipeline
    /// runs render differently from one process to the next. The sort costs
    /// one allocation per state per call — order-insensitive hot loops
    /// should iterate [`Dfa::transitions_from`] directly instead.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.trans.iter().enumerate().flat_map(|(i, m)| {
            let mut entries: Vec<(StateId, Symbol, StateId)> =
                m.iter().map(|(&s, &t)| (StateId(i as u32), s, t)).collect();
            entries.sort_unstable_by_key(|&(_, s, _)| s);
            entries
        })
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut q = self.initial;
        for &sym in word {
            match self.step(q, sym) {
                Some(n) => q = n,
                None => return false,
            }
        }
        self.is_final(q)
    }

    /// Converts to an equivalent NFA (for composing with NFA-level ops).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::new();
        // state i of the DFA maps to state i of the NFA; add the rest.
        for _ in 1..self.state_count() {
            n.add_state();
        }
        for (f, s, t) in self.transitions() {
            n.add_transition(f, Some(s), t);
        }
        for &f in &self.finals {
            n.set_final(f);
        }
        n
    }

    /// Determinizes `nfa` by the subset construction (ε-closures included).
    ///
    /// Only reachable subset states are materialized.
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let mut dfa = Dfa::new();
        let mut start = BTreeSet::new();
        start.insert(nfa.initial());
        let start = nfa.epsilon_closure(&start);

        let mut subset_ids: HashMap<Vec<u32>, StateId> = HashMap::new();
        let key = |s: &BTreeSet<StateId>| s.iter().map(|q| q.0).collect::<Vec<u32>>();

        subset_ids.insert(key(&start), dfa.initial());
        if start.iter().any(|&q| nfa.is_final(q)) {
            dfa.set_final(dfa.initial());
        }
        let mut work: Vec<(BTreeSet<StateId>, StateId)> = vec![(start, dfa.initial())];

        while let Some((subset, did)) = work.pop() {
            // Group successor NFA states by symbol.
            let mut by_sym: HashMap<Symbol, BTreeSet<StateId>> = HashMap::new();
            for &q in &subset {
                for &(l, t) in nfa.transitions_from(q) {
                    if let Some(sym) = l {
                        by_sym.entry(sym).or_default().insert(t);
                    }
                }
            }
            // Deterministic iteration order for reproducible state numbering.
            let mut entries: Vec<(Symbol, BTreeSet<StateId>)> = by_sym.into_iter().collect();
            entries.sort_by_key(|(s, _)| *s);
            for (sym, targets) in entries {
                let closure = nfa.epsilon_closure(&targets);
                let k = key(&closure);
                let target_id = match subset_ids.get(&k) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state();
                        subset_ids.insert(k, id);
                        if closure.iter().any(|&q| nfa.is_final(q)) {
                            dfa.set_final(id);
                        }
                        work.push((closure, id));
                        id
                    }
                };
                dfa.set_transition(did, sym, target_id);
            }
        }
        dfa
    }
}

impl Default for Dfa {
    fn default() -> Self {
        Dfa::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// NFA for (a|b)*b — classic determinization example.
    fn ab_star_b() -> Nfa {
        let a = sym(0);
        let b = sym(1);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        n.add_transition(q0, Some(a), q0);
        n.add_transition(q0, Some(b), q0);
        n.add_transition(q0, Some(b), q1);
        n.set_final(q1);
        n
    }

    #[test]
    fn determinize_preserves_language() {
        let n = ab_star_b();
        let d = Dfa::determinize(&n);
        for w in n.words(6, 200) {
            assert!(d.accepts(&w), "{w:?}");
        }
        // And the DFA accepts nothing extra on short words.
        let (a, b) = (sym(0), sym(1));
        for w in [vec![], vec![a], vec![a, a], vec![b, a], vec![a, b, a]] {
            assert_eq!(d.accepts(&w), n.accepts(&w), "{w:?}");
        }
    }

    #[test]
    fn determinize_handles_epsilon() {
        let a = sym(3);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_transition(q0, None, q1);
        n.add_transition(q1, Some(a), q2);
        n.set_final(q2);
        let d = Dfa::determinize(&n);
        assert!(d.accepts(&[a]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn determinization_is_deterministic_construction() {
        let n = ab_star_b();
        let d1 = Dfa::determinize(&n);
        let d2 = Dfa::determinize(&n);
        assert_eq!(d1.state_count(), d2.state_count());
        let t1: Vec<_> = {
            let mut v: Vec<_> = d1.transitions().collect();
            v.sort();
            v
        };
        let t2: Vec<_> = {
            let mut v: Vec<_> = d2.transitions().collect();
            v.sort();
            v
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn to_nfa_round_trips_language() {
        let n = ab_star_b();
        let d = Dfa::determinize(&n);
        let n2 = d.to_nfa();
        for w in n.words(5, 100) {
            assert!(n2.accepts(&w));
        }
    }

    #[test]
    fn partial_function_rejects_unknown_symbols() {
        let d = {
            let mut d = Dfa::new();
            let q1 = d.add_state();
            d.set_transition(d.initial(), sym(1), q1);
            d.set_final(q1);
            d
        };
        assert!(d.accepts(&[sym(1)]));
        assert!(!d.accepts(&[sym(2)]));
    }
}
