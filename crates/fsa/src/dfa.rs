//! Deterministic finite automata (partial transition function) and the
//! subset construction.

use crate::hash::FxHashMap;
use crate::nfa::{Nfa, StateId};
use crate::Symbol;

/// A deterministic automaton with a *partial* transition function: a missing
/// entry means the word is rejected (implicit dead state). This keeps large
/// alphabets (one symbol per SDG vertex) tractable.
///
/// Successors are stored as flat per-state rows sorted by symbol — a dense
/// cache-friendly layout the query path iterates without per-call sorting
/// or hashing ([`Dfa::step`] is a binary search, [`Dfa::transitions`] a
/// plain walk).
#[derive(Clone, Debug)]
pub struct Dfa {
    n_states: u32,
    initial: StateId,
    finals: std::collections::BTreeSet<StateId>,
    /// Per-state successor row, sorted by symbol (each symbol at most once).
    trans: Vec<Vec<(Symbol, StateId)>>,
}

impl Dfa {
    /// Creates a DFA with a single initial state and no transitions.
    pub fn new() -> Dfa {
        Dfa {
            n_states: 1,
            initial: StateId(0),
            finals: std::collections::BTreeSet::new(),
            trans: vec![Vec::new()],
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.n_states);
        self.n_states += 1;
        self.trans.push(Vec::new());
        id
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of (explicit) transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// Marks `q` accepting.
    pub fn set_final(&mut self, q: StateId) {
        self.finals.insert(q);
    }

    /// Whether `q` is accepting.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals.contains(&q)
    }

    /// The accepting states.
    pub fn finals(&self) -> &std::collections::BTreeSet<StateId> {
        &self.finals
    }

    /// Sets `δ(from, sym) = to`, replacing any previous entry. Appending in
    /// ascending symbol order is O(1); out-of-order inserts shift the row.
    pub fn set_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        let row = &mut self.trans[from.index()];
        if row.last().is_none_or(|&(s, _)| s < sym) {
            row.push((sym, to));
            return;
        }
        match row.binary_search_by_key(&sym, |&(s, _)| s) {
            Ok(i) => row[i].1 = to,
            Err(i) => row.insert(i, (sym, to)),
        }
    }

    /// Looks up `δ(from, sym)`.
    pub fn step(&self, from: StateId, sym: Symbol) -> Option<StateId> {
        let row = &self.trans[from.index()];
        row.binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| row[i].1)
    }

    /// The successor row of `q`, sorted by symbol.
    pub fn transitions_from(&self, q: StateId) -> &[(Symbol, StateId)] {
        &self.trans[q.index()]
    }

    /// Iterates over every transition `(from, sym, to)`, in state order and
    /// sorted by symbol within a state. The order falls out of the storage
    /// layout (rows are kept sorted), so — unlike the former map-backed
    /// representation — this allocates nothing and is safe to use in hot
    /// loops as well as in deterministic output paths.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.trans
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&(s, t)| (StateId(i as u32), s, t)))
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut q = self.initial;
        for &sym in word {
            match self.step(q, sym) {
                Some(n) => q = n,
                None => return false,
            }
        }
        self.is_final(q)
    }

    /// Converts to an equivalent NFA (for composing with NFA-level ops).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::new();
        // state i of the DFA maps to state i of the NFA; add the rest.
        for _ in 1..self.state_count() {
            n.add_state();
        }
        for (f, s, t) in self.transitions() {
            n.add_transition(f, Some(s), t);
        }
        for &f in &self.finals {
            n.set_final(f);
        }
        n
    }

    /// Determinizes `nfa` by the subset construction (ε-closures included).
    ///
    /// Only reachable subset states are materialized. Subsets are sorted
    /// dense `u32` vectors (keys in a fast hash map), ε-closure runs over a
    /// reusable visited bitmap, and successors are grouped by sorting one
    /// flat pair list per subset — no per-subset trees or nested maps.
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let n = nfa.state_count();
        let mut dfa = Dfa::new();
        let mut mark = vec![false; n];

        // ε-closes `set` (sorted, duplicate-free) in place, keeping it
        // sorted and duplicate-free; `mark` is scratch, false on entry/exit.
        let close = |set: &mut Vec<StateId>, mark: &mut [bool]| {
            let mut stack: Vec<StateId> = set.clone();
            for &q in set.iter() {
                mark[q.index()] = true;
            }
            while let Some(q) = stack.pop() {
                for &(l, t) in nfa.transitions_from(q) {
                    if l.is_none() && !mark[t.index()] {
                        mark[t.index()] = true;
                        set.push(t);
                        stack.push(t);
                    }
                }
            }
            set.sort_unstable();
            for &q in set.iter() {
                mark[q.index()] = false;
            }
        };

        let key = |s: &[StateId]| s.iter().map(|q| q.0).collect::<Vec<u32>>();

        let mut start = vec![nfa.initial()];
        close(&mut start, &mut mark);

        let mut subset_ids: FxHashMap<Vec<u32>, StateId> = FxHashMap::default();
        subset_ids.insert(key(&start), dfa.initial());
        if start.iter().any(|&q| nfa.is_final(q)) {
            dfa.set_final(dfa.initial());
        }
        let mut work: Vec<(Vec<StateId>, StateId)> = vec![(start, dfa.initial())];
        let mut pairs: Vec<(Symbol, StateId)> = Vec::new();

        while let Some((subset, did)) = work.pop() {
            // Flatten all labeled successors, then group by symbol: one sort
            // replaces the per-subset symbol map. Sorting also fixes the
            // symbol order, keeping state numbering deterministic.
            pairs.clear();
            for &q in &subset {
                for &(l, t) in nfa.transitions_from(q) {
                    if let Some(sym) = l {
                        pairs.push((sym, t));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let mut i = 0;
            while i < pairs.len() {
                let sym = pairs[i].0;
                let mut targets: Vec<StateId> = Vec::new();
                while i < pairs.len() && pairs[i].0 == sym {
                    targets.push(pairs[i].1);
                    i += 1;
                }
                close(&mut targets, &mut mark);
                let k = key(&targets);
                let target_id = match subset_ids.get(&k) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state();
                        subset_ids.insert(k, id);
                        if targets.iter().any(|&q| nfa.is_final(q)) {
                            dfa.set_final(id);
                        }
                        work.push((targets, id));
                        id
                    }
                };
                dfa.set_transition(did, sym, target_id);
            }
        }
        dfa
    }
}

impl Default for Dfa {
    fn default() -> Self {
        Dfa::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// NFA for (a|b)*b — classic determinization example.
    fn ab_star_b() -> Nfa {
        let a = sym(0);
        let b = sym(1);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        n.add_transition(q0, Some(a), q0);
        n.add_transition(q0, Some(b), q0);
        n.add_transition(q0, Some(b), q1);
        n.set_final(q1);
        n
    }

    #[test]
    fn determinize_preserves_language() {
        let n = ab_star_b();
        let d = Dfa::determinize(&n);
        for w in n.words(6, 200) {
            assert!(d.accepts(&w), "{w:?}");
        }
        // And the DFA accepts nothing extra on short words.
        let (a, b) = (sym(0), sym(1));
        for w in [vec![], vec![a], vec![a, a], vec![b, a], vec![a, b, a]] {
            assert_eq!(d.accepts(&w), n.accepts(&w), "{w:?}");
        }
    }

    #[test]
    fn determinize_handles_epsilon() {
        let a = sym(3);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_transition(q0, None, q1);
        n.add_transition(q1, Some(a), q2);
        n.set_final(q2);
        let d = Dfa::determinize(&n);
        assert!(d.accepts(&[a]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn determinization_is_deterministic_construction() {
        let n = ab_star_b();
        let d1 = Dfa::determinize(&n);
        let d2 = Dfa::determinize(&n);
        assert_eq!(d1.state_count(), d2.state_count());
        let t1: Vec<_> = d1.transitions().collect();
        let t2: Vec<_> = d2.transitions().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn to_nfa_round_trips_language() {
        let n = ab_star_b();
        let d = Dfa::determinize(&n);
        let n2 = d.to_nfa();
        for w in n.words(5, 100) {
            assert!(n2.accepts(&w));
        }
    }

    #[test]
    fn partial_function_rejects_unknown_symbols() {
        let d = {
            let mut d = Dfa::new();
            let q1 = d.add_state();
            d.set_transition(d.initial(), sym(1), q1);
            d.set_final(q1);
            d
        };
        assert!(d.accepts(&[sym(1)]));
        assert!(!d.accepts(&[sym(2)]));
    }

    #[test]
    fn rows_stay_sorted_under_out_of_order_inserts() {
        let mut d = Dfa::new();
        let q1 = d.add_state();
        let q2 = d.add_state();
        d.set_transition(d.initial(), sym(5), q1);
        d.set_transition(d.initial(), sym(1), q2);
        d.set_transition(d.initial(), sym(3), q1);
        // Replacement keeps a single entry per symbol.
        d.set_transition(d.initial(), sym(3), q2);
        let row = d.transitions_from(d.initial());
        assert_eq!(row, &[(sym(1), q2), (sym(3), q2), (sym(5), q1)]);
        assert_eq!(d.step(d.initial(), sym(3)), Some(q2));
        assert_eq!(d.step(d.initial(), sym(2)), None);
        assert_eq!(d.transition_count(), 3);
    }
}
