//! Language-level automaton operations: reversal, ε-removal, product
//! intersection, difference, equivalence, relabeling.

use crate::dfa::Dfa;
use crate::hash::FxHashMap;
use crate::nfa::{Nfa, StateId};
use crate::Symbol;
use std::collections::BTreeSet;

/// Reverses an automaton: `L(reverse(A)) = { wᴿ | w ∈ L(A) }`.
///
/// A fresh initial state is connected by ε-transitions to the old final
/// states (mirroring the OpenFST behavior the paper describes in the proof of
/// Thm. 3.16); the old initial state becomes the unique final state.
pub fn reverse(nfa: &Nfa) -> Nfa {
    let mut out = Nfa::new();
    // out state i+1 corresponds to input state i; state 0 is the new initial.
    let map = |q: StateId| StateId(q.0 + 1);
    for _ in 0..nfa.state_count() {
        out.add_state();
    }
    for (f, l, t) in nfa.transitions() {
        out.add_transition(map(t), l, map(f));
    }
    for &f in nfa.finals() {
        out.add_transition(out.initial(), None, map(f));
    }
    out.set_final(map(nfa.initial()));
    out
}

/// Removes ε-transitions without changing the language.
pub fn remove_epsilon(nfa: &Nfa) -> Nfa {
    let mut out = Nfa::new();
    for _ in 1..nfa.state_count() {
        out.add_state();
    }
    for q in (0..nfa.state_count() as u32).map(StateId) {
        let mut set = BTreeSet::new();
        set.insert(q);
        let closure = nfa.epsilon_closure(&set);
        for &p in &closure {
            if nfa.is_final(p) {
                out.set_final(q);
            }
            for &(l, t) in nfa.transitions_from(p) {
                if let Some(sym) = l {
                    out.add_transition(q, Some(sym), t);
                }
            }
        }
    }
    out
}

/// Intersection by product construction. Handles ε-transitions by removing
/// them first.
pub fn intersect(a: &Nfa, b: &Nfa) -> Nfa {
    let a = remove_epsilon(a);
    let b = remove_epsilon(b);
    // Sorted successor rows of `b`, built once: product states re-visit the
    // same `b` state many times, and a binary-searched row replaces the
    // symbol map the old implementation rebuilt on every visit.
    let b_rows: Vec<Vec<(Symbol, StateId)>> = (0..b.state_count() as u32)
        .map(|i| {
            let mut row: Vec<(Symbol, StateId)> = b
                .transitions_from(StateId(i))
                .iter()
                .filter_map(|&(l, t)| l.map(|s| (s, t)))
                .collect();
            row.sort_unstable();
            row
        })
        .collect();
    let mut out = Nfa::new();
    let mut ids: FxHashMap<(StateId, StateId), StateId> = FxHashMap::default();
    let start = (a.initial(), b.initial());
    ids.insert(start, out.initial());
    if a.is_final(a.initial()) && b.is_final(b.initial()) {
        out.set_final(out.initial());
    }
    let mut work = vec![start];
    while let Some((qa, qb)) = work.pop() {
        let from = ids[&(qa, qb)];
        let row = &b_rows[qb.index()];
        for &(l, ta) in a.transitions_from(qa) {
            let Some(sym) = l else { continue };
            let lo = row.partition_point(|&(s, _)| s < sym);
            for &(s, tb) in &row[lo..] {
                if s != sym {
                    break;
                }
                let key = (ta, tb);
                let to = match ids.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = out.add_state();
                        ids.insert(key, id);
                        if a.is_final(ta) && b.is_final(tb) {
                            out.set_final(id);
                        }
                        work.push(key);
                        id
                    }
                };
                out.add_transition(from, Some(sym), to);
            }
        }
    }
    out
}

/// Difference `L(a) \ L(b)` where `b` is given deterministically.
///
/// The complement of `b` is never materialized: the product tracks an
/// `Option<StateId>` for `b`'s position, `None` meaning "b is dead" — this is
/// what keeps Alg. 2's `… ∩ complement(determinize(A0))` feasible over SDG
/// alphabets with tens of thousands of symbols.
pub fn difference(a: &Nfa, b: &Dfa) -> Nfa {
    let a = remove_epsilon(a);
    let mut out = Nfa::new();
    let mut ids: FxHashMap<(StateId, Option<StateId>), StateId> = FxHashMap::default();
    let start = (a.initial(), Some(b.initial()));
    ids.insert(start, out.initial());
    let accepts = |qa: StateId, qb: Option<StateId>, a: &Nfa, b: &Dfa| {
        a.is_final(qa) && !qb.is_some_and(|q| b.is_final(q))
    };
    if accepts(a.initial(), Some(b.initial()), &a, b) {
        out.set_final(out.initial());
    }
    let mut work = vec![start];
    while let Some((qa, qb)) = work.pop() {
        let from = ids[&(qa, qb)];
        for &(l, ta) in a.transitions_from(qa) {
            let Some(sym) = l else { continue };
            let tb = qb.and_then(|q| b.step(q, sym));
            let key = (ta, tb);
            let to = match ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = out.add_state();
                    ids.insert(key, id);
                    if accepts(ta, tb, &a, b) {
                        out.set_final(id);
                    }
                    work.push(key);
                    id
                }
            };
            out.add_transition(from, Some(sym), to);
        }
    }
    out
}

/// Language equality test: `L(a) = L(b)`.
pub fn equivalent(a: &Nfa, b: &Nfa) -> bool {
    let da = Dfa::determinize(a);
    let db = Dfa::determinize(b);
    difference(a, &db).is_empty_language() && difference(b, &da).is_empty_language()
}

/// Language inclusion test: `L(a) ⊆ L(b)`.
pub fn subset_of(a: &Nfa, b: &Nfa) -> bool {
    let db = Dfa::determinize(b);
    difference(a, &db).is_empty_language()
}

/// Applies a symbol-to-symbol map (a functional finite-state transduction) to
/// every transition; used by the reslicing check's `T_C` (§8.3).
pub fn relabel(nfa: &Nfa, f: impl Fn(Symbol) -> Symbol) -> Nfa {
    let mut out = Nfa::new();
    for _ in 1..nfa.state_count() {
        out.add_state();
    }
    for (from, l, to) in nfa.transitions() {
        out.add_transition(from, l.map(&f), to);
    }
    for &q in nfa.finals() {
        out.set_final(q);
    }
    out
}

/// Applies the inverse of a (many-to-one) symbol map: each transition on `s`
/// is replaced by transitions on every symbol in `preimages(s)`; used by the
/// reslicing check's `T_C⁻¹` (§8.3).
pub fn relabel_inverse(nfa: &Nfa, preimages: impl Fn(Symbol) -> Vec<Symbol>) -> Nfa {
    let mut out = Nfa::new();
    for _ in 1..nfa.state_count() {
        out.add_state();
    }
    for (from, l, to) in nfa.transitions() {
        match l {
            None => {
                out.add_transition(from, None, to);
            }
            Some(s) => {
                for pre in preimages(s) {
                    out.add_transition(from, Some(pre), to);
                }
            }
        }
    }
    for &q in nfa.finals() {
        out.set_final(q);
    }
    out
}

/// Projects an automaton onto a transition subset: same state space, only
/// the transitions `keep` admits, and `finals` replacing the final-state
/// set.
///
/// Used by the one-pass multi-criterion solver to split a single saturated
/// union automaton into per-criterion `A1`s — `keep` tests the criterion's
/// bit in the saturation's transition masks, `finals` is that criterion's
/// final set. Dead states are left in place (callers trim), so state ids
/// stay comparable to the input's.
pub fn project(
    nfa: &Nfa,
    mut keep: impl FnMut(StateId, Option<Symbol>, StateId) -> bool,
    finals: &BTreeSet<StateId>,
) -> Nfa {
    let mut out = Nfa::new();
    for _ in 1..nfa.state_count() {
        out.add_state();
    }
    for (from, l, to) in nfa.transitions() {
        if keep(from, l, to) {
            out.add_transition(from, l, to);
        }
    }
    for &q in finals {
        debug_assert!(q.0 < nfa.state_count() as u32, "final state out of range");
        out.set_final(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// L = a b* c
    fn abc() -> Nfa {
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_transition(q0, Some(a), q1);
        n.add_transition(q1, Some(b), q1);
        n.add_transition(q1, Some(c), q2);
        n.set_final(q2);
        n
    }

    #[test]
    fn reverse_reverses_words() {
        let n = abc();
        let r = reverse(&n);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        assert!(r.accepts(&[c, a]));
        assert!(r.accepts(&[c, b, b, a]));
        assert!(!r.accepts(&[a, c]));
    }

    #[test]
    fn double_reverse_preserves_language() {
        let n = abc();
        let rr = reverse(&reverse(&n));
        assert!(equivalent(&n, &rr));
    }

    #[test]
    fn epsilon_removal_preserves_language() {
        let n = reverse(&abc()); // reverse introduces ε-transitions
        let ne = remove_epsilon(&n);
        assert!(ne.transitions().all(|(_, l, _)| l.is_some()));
        assert!(equivalent(&n, &ne));
    }

    #[test]
    fn intersect_is_conjunction() {
        // L1 = a b* c, L2 = words of even length. Intersection: a b^(2k) c.
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut even = Nfa::new();
        let e0 = even.initial();
        let e1 = even.add_state();
        for s in [a, b, c] {
            even.add_transition(e0, Some(s), e1);
            even.add_transition(e1, Some(s), e0);
        }
        even.set_final(e0);
        let i = intersect(&abc(), &even);
        assert!(i.accepts(&[a, c]));
        assert!(i.accepts(&[a, b, b, c]));
        assert!(!i.accepts(&[a, b, c]));
    }

    #[test]
    fn difference_subtracts() {
        // abc() \ {a c} = a b+ c
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut just_ac = Nfa::new();
        let q1 = just_ac.add_state();
        let q2 = just_ac.add_state();
        just_ac.add_transition(just_ac.initial(), Some(a), q1);
        just_ac.add_transition(q1, Some(c), q2);
        just_ac.set_final(q2);
        let d = difference(&abc(), &Dfa::determinize(&just_ac));
        assert!(!d.accepts(&[a, c]));
        assert!(d.accepts(&[a, b, c]));
        assert!(d.accepts(&[a, b, b, c]));
    }

    #[test]
    fn equivalence_and_subset() {
        let n = abc();
        assert!(equivalent(&n, &n.clone()));
        assert!(subset_of(&n, &n));
        let (a, c) = (sym(0), sym(2));
        let mut smaller = Nfa::new();
        let q1 = smaller.add_state();
        let q2 = smaller.add_state();
        smaller.add_transition(smaller.initial(), Some(a), q1);
        smaller.add_transition(q1, Some(c), q2);
        smaller.set_final(q2);
        assert!(subset_of(&smaller, &n));
        assert!(!subset_of(&n, &smaller));
        assert!(!equivalent(&n, &smaller));
    }

    #[test]
    fn relabel_roundtrip() {
        let n = abc();
        let shifted = relabel(&n, |s| Symbol(s.0 + 10));
        assert!(shifted.accepts(&[sym(10), sym(12)]));
        // inverse relabel maps back (many-to-one with singleton preimages)
        let back = relabel_inverse(&shifted, |s| vec![Symbol(s.0 - 10)]);
        assert!(equivalent(&n, &back));
    }

    #[test]
    fn difference_with_empty_dfa_is_identity() {
        let n = abc();
        let empty = Dfa::new();
        let d = difference(&n, &empty);
        assert!(equivalent(&n, &d));
    }

    #[test]
    fn project_filters_transitions_and_replaces_finals() {
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let n = abc(); // a b* c, final = q2
                       // Keep everything, same finals: identity.
        let id = project(&n, |_, _, _| true, &n.finals().iter().copied().collect());
        assert_eq!(id.state_count(), n.state_count());
        assert_eq!(id.transition_count(), n.transition_count());
        assert!(equivalent(&n, &id));
        // Drop the b-loop: language collapses to { a c }.
        let no_loop = project(
            &n,
            |_, l, _| l != Some(b),
            &n.finals().iter().copied().collect(),
        );
        assert!(no_loop.accepts(&[a, c]));
        assert!(!no_loop.accepts(&[a, b, c]));
        // Replace finals with q1: language becomes a b*.
        let q1: BTreeSet<StateId> = [StateId(1)].into_iter().collect();
        let mid = project(&n, |_, _, _| true, &q1);
        assert!(mid.accepts(&[a]));
        assert!(mid.accepts(&[a, b, b]));
        assert!(!mid.accepts(&[a, c]));
        // Keep nothing: empty language, but the state space survives.
        let none = project(&n, |_, _, _| false, &BTreeSet::new());
        assert_eq!(none.state_count(), n.state_count());
        assert_eq!(none.transition_count(), 0);
        assert!(!none.accepts(&[]));
    }
}
