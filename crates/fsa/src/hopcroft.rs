//! DFA minimization by partition refinement.
//!
//! Works directly on *partial* DFAs: the automaton is first trimmed (states
//! must be reachable and co-reachable), after which a missing transition can
//! never be equivalent to a present one (a present transition leads to a live
//! state, and no live state is equivalent to the implicit dead state). Plain
//! Moore-style refinement over the sparse successor rows is therefore exact,
//! and avoids materializing the `|Q| × |Σ|` complete transition table —
//! essential here because slicing alphabets contain one symbol per SDG
//! vertex.

use crate::dfa::Dfa;
use crate::nfa::StateId;
use crate::Symbol;

/// Returns the minimal partial DFA recognizing the same language as `dfa`.
///
/// The result is trim (every state reachable and co-reachable) except for the
/// degenerate empty-language case, which yields a single non-accepting state.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let trimmed = trim(dfa);
    if trimmed.finals().is_empty() {
        return Dfa::new(); // empty language: one initial, non-final state
    }
    let n = trimmed.state_count();

    // Initial partition: accepting vs non-accepting.
    let mut class: Vec<u32> = (0..n)
        .map(|i| u32::from(trimmed.is_final(StateId(i as u32))))
        .collect();
    let mut n_classes = if class.contains(&0) && class.contains(&1) {
        2
    } else {
        1
    };
    if n_classes == 1 {
        // normalize ids to 0
        for c in class.iter_mut() {
            *c = 0;
        }
    }

    // Signature: (current class, successor (symbol, class) pairs). The
    // successor rows are stored sorted by symbol, so the signature is
    // canonical without a per-state sort. Signatures live flattened in one
    // pool and states are grouped by sorting span indices — no per-state
    // key allocation, and every buffer is reused across rounds (the MRD
    // pipeline minimizes thousands of small DFAs per batch).
    let mut sig_pool: Vec<(Symbol, u32)> = Vec::new();
    let mut bounds: Vec<u32> = Vec::new();
    let mut order: Vec<u32> = Vec::new();
    let mut new_class = vec![0u32; n];
    let mut first_seen: Vec<u32> = Vec::new();
    const UNSEEN: u32 = u32::MAX;
    loop {
        sig_pool.clear();
        bounds.clear();
        bounds.push(0);
        for i in 0..n {
            let q = StateId(i as u32);
            sig_pool.extend(
                trimmed
                    .transitions_from(q)
                    .iter()
                    .map(|&(s, t)| (s, class[t.index()])),
            );
            bounds.push(sig_pool.len() as u32);
        }
        let sig = |i: u32| {
            let (lo, hi) = (bounds[i as usize], bounds[i as usize + 1]);
            (class[i as usize], &sig_pool[lo as usize..hi as usize])
        };
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by(|&a, &b| sig(a).cmp(&sig(b)));
        // Tag each run of equal signatures, then renumber tags by first
        // occurrence in *state* order — the id assignment the former
        // insertion-ordered map produced, so the quotient construction
        // below is unchanged.
        let mut tag = 0u32;
        for w in 0..order.len() {
            if w > 0 && sig(order[w]) != sig(order[w - 1]) {
                tag += 1;
            }
            new_class[order[w] as usize] = tag;
        }
        let new_n = tag as usize + 1;
        first_seen.clear();
        first_seen.resize(new_n, UNSEEN);
        let mut next_id = 0u32;
        for c in new_class.iter_mut() {
            let slot = &mut first_seen[*c as usize];
            if *slot == UNSEEN {
                *slot = next_id;
                next_id += 1;
            }
            *c = *slot;
        }
        std::mem::swap(&mut class, &mut new_class);
        if new_n == n_classes {
            break;
        }
        n_classes = new_n;
    }

    // Build the quotient automaton. Renumber classes so the initial state's
    // class is 0 (the quotient DFA's initial state).
    let init_class = class[trimmed.initial().index()];
    let remap = |c: u32| -> u32 {
        if c == init_class {
            0
        } else if c < init_class {
            c + 1
        } else {
            c
        }
    };
    let mut out = Dfa::new();
    for _ in 1..n_classes {
        out.add_state();
    }
    // One representative per class suffices: states share a class only when
    // their (symbol → class) successor maps and acceptance agree, so copying
    // every member would re-set identical transitions.
    let mut rep: Vec<Option<StateId>> = vec![None; n_classes];
    for i in 0..n {
        rep[class[i] as usize].get_or_insert(StateId(i as u32));
    }
    for (c, r) in rep.iter().enumerate() {
        let q = r.expect("every class has a member");
        let cq = StateId(remap(c as u32));
        if trimmed.is_final(q) {
            out.set_final(cq);
        }
        for &(s, t) in trimmed.transitions_from(q) {
            out.set_transition(cq, s, StateId(remap(class[t.index()])));
        }
    }
    out
}

/// Restricts a DFA to reachable and co-reachable states (the initial state is
/// always kept).
pub fn trim(dfa: &Dfa) -> Dfa {
    let n = dfa.state_count();
    let mut reach = vec![false; n];
    reach[dfa.initial().index()] = true;
    let mut work = vec![dfa.initial()];
    while let Some(q) = work.pop() {
        for &(_, t) in dfa.transitions_from(q) {
            if !reach[t.index()] {
                reach[t.index()] = true;
                work.push(t);
            }
        }
    }
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for i in 0..n {
        let q = StateId(i as u32);
        for &(_, t) in dfa.transitions_from(q) {
            rev[t.index()].push(q);
        }
    }
    let mut coreach = vec![false; n];
    let mut work: Vec<StateId> = dfa.finals().iter().copied().collect();
    for &f in dfa.finals() {
        coreach[f.index()] = true;
    }
    while let Some(q) = work.pop() {
        for &p in &rev[q.index()] {
            if !coreach[p.index()] {
                coreach[p.index()] = true;
                work.push(p);
            }
        }
    }

    let keep = |q: StateId| reach[q.index()] && coreach[q.index()];
    let mut map: Vec<Option<StateId>> = vec![None; n];
    let mut out = Dfa::new();
    map[dfa.initial().index()] = Some(out.initial());
    for i in 0..n as u32 {
        let q = StateId(i);
        if q != dfa.initial() && keep(q) {
            map[q.index()] = Some(out.add_state());
        }
    }
    // Rows are sorted by symbol, and kept targets map in id order, so the
    // rebuilt rows append in sorted order (O(1) per transition).
    for i in 0..n as u32 {
        let f = StateId(i);
        if !(f == dfa.initial() || keep(f)) {
            continue;
        }
        let nf = map[f.index()].expect("kept states are mapped");
        for &(s, t) in dfa.transitions_from(f) {
            if keep(t) {
                if let Some(nt) = map[t.index()] {
                    out.set_transition(nf, s, nt);
                }
            }
        }
    }
    for &f in dfa.finals() {
        if let Some(nf) = map[f.index()] {
            out.set_final(nf);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// DFA with two redundant accepting states for L = a(b)* .
    fn redundant_dfa() -> Dfa {
        let a = sym(0);
        let b = sym(1);
        let mut d = Dfa::new();
        let q1 = d.add_state();
        let q2 = d.add_state();
        d.set_transition(d.initial(), a, q1);
        d.set_transition(q1, b, q2);
        d.set_transition(q2, b, q1);
        d.set_final(q1);
        d.set_final(q2);
        d
    }

    #[test]
    fn merges_equivalent_states() {
        let d = redundant_dfa();
        let m = minimize(&d);
        assert_eq!(m.state_count(), 2);
        let (a, b) = (sym(0), sym(1));
        for w in [vec![a], vec![a, b], vec![a, b, b], vec![a, b, b, b]] {
            assert!(m.accepts(&w), "{w:?}");
        }
        assert!(!m.accepts(&[b]));
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn minimization_is_idempotent() {
        let m1 = minimize(&redundant_dfa());
        let m2 = minimize(&m1);
        assert_eq!(m1.state_count(), m2.state_count());
        assert_eq!(m1.transition_count(), m2.transition_count());
    }

    #[test]
    fn distinguishes_by_partiality() {
        // q1 has an outgoing a-transition (to a live accepting state), q2 does
        // not; they must not merge even though both are accepting.
        let a = sym(0);
        let b = sym(1);
        let mut d = Dfa::new();
        let q1 = d.add_state();
        let q2 = d.add_state();
        d.set_transition(d.initial(), a, q1);
        d.set_transition(d.initial(), b, q2);
        d.set_transition(q1, a, q2);
        d.set_final(q1);
        d.set_final(q2);
        let m = minimize(&d);
        assert_eq!(m.state_count(), 3);
        assert!(m.accepts(&[a, a]));
        assert!(!m.accepts(&[b, a]));
    }

    #[test]
    fn empty_language_minimizes_to_one_state() {
        let mut d = Dfa::new();
        let q1 = d.add_state();
        d.set_transition(d.initial(), sym(1), q1);
        // no finals
        let m = minimize(&d);
        assert_eq!(m.state_count(), 1);
        assert!(m.finals().is_empty());
    }

    #[test]
    fn trim_drops_unreachable_and_dead() {
        let a = sym(0);
        let mut d = Dfa::new();
        let q1 = d.add_state();
        let dead = d.add_state();
        let unreach = d.add_state();
        d.set_transition(d.initial(), a, q1);
        d.set_transition(q1, a, dead);
        d.set_transition(unreach, a, q1);
        d.set_final(q1);
        let t = trim(&d);
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts(&[a]));
        assert!(!t.accepts(&[a, a]));
    }

    #[test]
    fn agrees_with_subset_construction_language() {
        // Random-ish NFA; check minimize(determinize(n)) ≡ n on enumerated words.
        let a = sym(0);
        let b = sym(1);
        let mut n = Nfa::new();
        let q0 = n.initial();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_transition(q0, Some(a), q0);
        n.add_transition(q0, Some(a), q1);
        n.add_transition(q1, Some(b), q2);
        n.add_transition(q2, Some(a), q1);
        n.set_final(q2);
        let m = minimize(&Dfa::determinize(&n));
        for w in n.words(6, 500) {
            assert!(m.accepts(&w), "{w:?}");
        }
        // Sample of rejected words.
        for w in [vec![], vec![a], vec![b], vec![a, b, a]] {
            assert_eq!(m.accepts(&w), n.accepts(&w), "{w:?}");
        }
    }
}
