//! A fast, deterministic hasher for the automaton hot paths (an in-tree
//! stand-in for `rustc-hash`, the way `specslice_corpus::rng` stands in for
//! `rand`).
//!
//! The slicing pipeline hashes nothing adversarial — keys are interned
//! `u32` state/symbol ids and small tuples of them — so the DoS-resistant,
//! randomly-seeded SipHash behind `std`'s default `HashMap` buys nothing
//! here and costs a large constant factor on every transition insert and
//! lookup. This multiply-rotate hash (the `FxHasher` scheme from the Rust
//! compiler, itself from Firefox) is a handful of instructions per word.
//!
//! Determinism note: the hash function is fixed (no per-process seed), but
//! nothing in the pipeline may *iterate* one of these maps into an output —
//! the same rule that already applied to the `std` maps they replace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (a 64-bit cousin of the
/// golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, folded word-at-a-time.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        m.entry((1, 2)).or_default().push(3);
        m.entry((1, 2)).or_default().push(4);
        assert_eq!(m[&(1, 2)], vec![3, 4]);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Nearby keys must not collide (sanity, not a statistical test).
        let hashes: FxHashSet<u64> = (0..10_000u64).map(h).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_tail_is_hashed() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefgh-x"), h(b"abcdefgh-y"));
    }
}
