//! Precomputed rule indexes for the saturation engines.
//!
//! `Prestar`/`Poststar` match rules against automaton transitions millions
//! of times per multi-criterion workload, but the *rules* never change
//! between queries over one pushdown system. A [`RuleIndex`] is built once
//! per PDS (sessions cache it alongside the encoding) and holds every
//! lookup table saturation needs as CSR-style flat vectors over the
//! interned symbol alphabet:
//!
//! * internal rules `⟨p, γ⟩ ↪ ⟨p', γ'⟩` grouped by `γ'` (matched when
//!   `Prestar` pops a transition out of `p'` labeled `γ'`);
//! * push rules `⟨p, γ⟩ ↪ ⟨p', γ' γ''⟩` grouped by `γ'` (same match, plus
//!   the pending second hop on `γ''`);
//! * every rule grouped by its left-hand-side symbol `γ` (matched when
//!   `Poststar` pops a transition out of control state `p` labeled `γ`);
//! * the pop-rule list (`Prestar`'s unconditional seeds);
//! * the dense numbering of distinct push-rule target pairs `(p', γ')`
//!   (`Poststar`'s Phase-I states), with each push rule's pair id stored in
//!   its CSR payload so Phase II never hashes.
//!
//! A CSR row lookup is two array reads — no hashing, no per-query
//! rebuilding, and (unlike the former `HashMap<…, Vec<…>>` tables) no
//! cloning of match lists to satisfy the borrow checker in the hot loop.

use crate::system::{ControlLoc, Pds, Rhs};
use specslice_fsa::{FxHashMap, Symbol};

/// A compressed sparse row table: `row(k)` is the payload slice of key `k`,
/// keys are dense `u32`s (here: interned stack symbols).
#[derive(Clone, Debug)]
struct Csr<T> {
    offsets: Vec<u32>,
    payload: Vec<T>,
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Csr {
            offsets: Vec::new(),
            payload: Vec::new(),
        }
    }
}

impl<T: Copy> Csr<T> {
    /// Builds the table with a stable sort on the key, so insertion order is
    /// preserved within each row.
    fn build(n_keys: u32, entries: &[(u32, T)]) -> Csr<T> {
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| entries[i as usize].0);
        let mut offsets = vec![0u32; n_keys as usize + 1];
        for &(k, _) in entries {
            offsets[k as usize + 1] += 1;
        }
        for i in 0..n_keys as usize {
            offsets[i + 1] += offsets[i];
        }
        let payload = order.iter().map(|&i| entries[i as usize].1).collect();
        Csr { offsets, payload }
    }

    /// The payload slice of key `k` (empty when `k` is out of range).
    #[inline]
    fn row(&self, k: u32) -> &[T] {
        let k = k as usize;
        if k + 1 >= self.offsets.len() {
            return &[];
        }
        &self.payload[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }
}

/// An internal rule `⟨p, γ⟩ ↪ ⟨p', γ'⟩`, stored under key `γ'`.
#[derive(Clone, Copy, Debug)]
pub struct InternalMatch {
    /// `p'` — the control location the matched transition must leave.
    pub to_loc: ControlLoc,
    /// `p` — source control location of the inferred transition.
    pub from_loc: ControlLoc,
    /// `γ` — label of the inferred transition.
    pub from_sym: Symbol,
}

/// A push rule `⟨p, γ⟩ ↪ ⟨p', γ' γ''⟩`, stored under key `γ'`.
#[derive(Clone, Copy, Debug)]
pub struct PushMatch {
    /// `p'` — the control location the first-hop transition must leave.
    pub to_loc: ControlLoc,
    /// `p` — source control location of the inferred transition.
    pub from_loc: ControlLoc,
    /// `γ` — label of the inferred transition.
    pub from_sym: Symbol,
    /// `γ''` — symbol of the second hop still to match.
    pub below: Symbol,
}

/// Any rule, stored under its left-hand-side symbol `γ` (the `Poststar`
/// orientation).
#[derive(Clone, Copy, Debug)]
pub struct LhsRule {
    /// `p` — the control location the matched transition must leave.
    pub from_loc: ControlLoc,
    /// `p'` — target control location.
    pub to_loc: ControlLoc,
    /// The rule's right-hand side.
    pub rhs: Rhs,
    /// For push rules: the dense id of the `(p', γ')` target pair —
    /// `Poststar`'s Phase-I state for this rule. [`u32::MAX`] otherwise.
    pub push_pair: u32,
}

/// The per-PDS saturation lookup tables. Build once with
/// [`RuleIndex::new`], share (immutably) across every query.
#[derive(Clone, Debug, Default)]
pub struct RuleIndex {
    n_controls: u32,
    n_symbols: u32,
    pops: Vec<(ControlLoc, Symbol, ControlLoc)>,
    internal_by_rhs: Csr<InternalMatch>,
    push_by_rhs: Csr<PushMatch>,
    by_lhs: Csr<LhsRule>,
    push_pairs: Vec<(ControlLoc, Symbol)>,
    rule_count: usize,
}

impl RuleIndex {
    /// Indexes every rule of `pds`.
    pub fn new(pds: &Pds) -> RuleIndex {
        let n_symbols = pds.symbol_bound();
        let mut pops = Vec::new();
        let mut internal: Vec<(u32, InternalMatch)> = Vec::new();
        let mut push: Vec<(u32, PushMatch)> = Vec::new();
        let mut lhs: Vec<(u32, LhsRule)> = Vec::new();
        let mut push_pairs: Vec<(ControlLoc, Symbol)> = Vec::new();
        let mut pair_ids: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for rule in pds.rules() {
            let mut push_pair = u32::MAX;
            match rule.rhs {
                Rhs::Pop => pops.push((rule.from_loc, rule.from_sym, rule.to_loc)),
                Rhs::Internal(g2) => internal.push((
                    g2.0,
                    InternalMatch {
                        to_loc: rule.to_loc,
                        from_loc: rule.from_loc,
                        from_sym: rule.from_sym,
                    },
                )),
                Rhs::Push(g1, g2) => {
                    // Dense pair ids in first-encounter (rule) order — the
                    // same numbering the saturation's Phase-I states use.
                    push_pair = *pair_ids.entry((rule.to_loc.0, g1.0)).or_insert_with(|| {
                        push_pairs.push((rule.to_loc, g1));
                        (push_pairs.len() - 1) as u32
                    });
                    push.push((
                        g1.0,
                        PushMatch {
                            to_loc: rule.to_loc,
                            from_loc: rule.from_loc,
                            from_sym: rule.from_sym,
                            below: g2,
                        },
                    ));
                }
            }
            lhs.push((
                rule.from_sym.0,
                LhsRule {
                    from_loc: rule.from_loc,
                    to_loc: rule.to_loc,
                    rhs: rule.rhs,
                    push_pair,
                },
            ));
        }
        RuleIndex {
            n_controls: pds.control_count(),
            n_symbols,
            pops,
            internal_by_rhs: Csr::build(n_symbols, &internal),
            push_by_rhs: Csr::build(n_symbols, &push),
            by_lhs: Csr::build(n_symbols, &lhs),
            push_pairs,
            rule_count: pds.rule_count(),
        }
    }

    /// Control locations of the indexed PDS.
    pub fn control_count(&self) -> u32 {
        self.n_controls
    }

    /// One past the largest symbol any indexed rule mentions.
    pub fn symbol_bound(&self) -> u32 {
        self.n_symbols
    }

    /// Number of indexed rules.
    pub fn rule_count(&self) -> usize {
        self.rule_count
    }

    /// The pop rules `⟨p, γ⟩ ↪ ⟨p', ε⟩` as `(p, γ, p')` triples.
    pub fn pops(&self) -> &[(ControlLoc, Symbol, ControlLoc)] {
        &self.pops
    }

    /// Internal rules whose right-hand-side symbol is `sym`. Callers filter
    /// on [`InternalMatch::to_loc`].
    #[inline]
    pub fn internal_by_rhs(&self, sym: Symbol) -> &[InternalMatch] {
        self.internal_by_rhs.row(sym.0)
    }

    /// Push rules whose first right-hand-side symbol is `sym`. Callers
    /// filter on [`PushMatch::to_loc`].
    #[inline]
    pub fn push_by_rhs(&self, sym: Symbol) -> &[PushMatch] {
        self.push_by_rhs.row(sym.0)
    }

    /// Every rule whose left-hand-side symbol is `sym`. Callers filter on
    /// [`LhsRule::from_loc`].
    #[inline]
    pub fn rules_for_lhs(&self, sym: Symbol) -> &[LhsRule] {
        self.by_lhs.row(sym.0)
    }

    /// The full rules whose left-hand side is `⟨p, γ⟩`, reconstructed from
    /// the CSR row of `γ` (insertion order within the row). This is the
    /// indexed form of [`crate::Pds::rules_for`]; the saturation engines
    /// use the rawer [`RuleIndex::rules_for_lhs`] directly.
    pub fn rules_for(
        &self,
        p: ControlLoc,
        gamma: Symbol,
    ) -> impl Iterator<Item = crate::system::Rule> + '_ {
        self.by_lhs
            .row(gamma.0)
            .iter()
            .filter(move |r| r.from_loc == p)
            .map(move |r| crate::system::Rule {
                from_loc: r.from_loc,
                from_sym: gamma,
                to_loc: r.to_loc,
                rhs: r.rhs,
            })
    }

    /// The distinct push-rule target pairs `(p', γ')`, in dense-id order.
    pub fn push_pairs(&self) -> &[(ControlLoc, Symbol)] {
        &self.push_pairs
    }

    /// Approximate retained bytes of the index tables.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pops.len() * size_of::<(ControlLoc, Symbol, ControlLoc)>()
            + self.internal_by_rhs.payload.len() * size_of::<InternalMatch>()
            + self.push_by_rhs.payload.len() * size_of::<PushMatch>()
            + self.by_lhs.payload.len() * size_of::<LhsRule>()
            + (self.internal_by_rhs.offsets.len()
                + self.push_by_rhs.offsets.len()
                + self.by_lhs.offsets.len())
                * size_of::<u32>()
            + self.push_pairs.len() * size_of::<(ControlLoc, Symbol)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Pds;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn csr_groups_preserve_order_and_bounds() {
        let entries = vec![(2u32, 'a'), (0, 'b'), (2, 'c'), (1, 'd')];
        let csr = Csr::build(3, &entries);
        assert_eq!(csr.row(0), &['b']);
        assert_eq!(csr.row(1), &['d']);
        assert_eq!(csr.row(2), &['a', 'c']);
        assert_eq!(csr.row(3), &[] as &[char]);
        assert_eq!(csr.row(99), &[] as &[char]);
        let empty: Csr<char> = Csr::build(0, &[]);
        assert_eq!(empty.row(0), &[] as &[char]);
    }

    #[test]
    fn index_matches_rule_inventory() {
        let (p, q) = (ControlLoc(0), ControlLoc(1));
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(2);
        pds.add_internal(p, a, p, b);
        pds.add_pop(p, a, q);
        pds.add_push(q, b, p, a, c);
        pds.add_push(q, c, p, a, b); // same (p, a) target pair
        let idx = RuleIndex::new(&pds);
        assert_eq!(idx.control_count(), 2);
        assert_eq!(idx.symbol_bound(), 3);
        assert_eq!(idx.rule_count(), 4);
        assert_eq!(idx.pops(), &[(p, a, q)]);
        // Internal rule stored under its RHS symbol b.
        assert_eq!(idx.internal_by_rhs(b).len(), 1);
        assert_eq!(idx.internal_by_rhs(b)[0].from_sym, a);
        assert!(idx.internal_by_rhs(a).is_empty());
        // Both pushes stored under first RHS symbol a, sharing one pair id.
        let pushes = idx.push_by_rhs(a);
        assert_eq!(pushes.len(), 2);
        assert_eq!(pushes[0].below, c);
        assert_eq!(pushes[1].below, b);
        assert_eq!(idx.push_pairs(), &[(p, a)]);
        // LHS rows: symbol a has the internal + pop, b has one push.
        assert_eq!(idx.rules_for_lhs(a).len(), 2);
        assert_eq!(idx.rules_for_lhs(b).len(), 1);
        assert_eq!(idx.rules_for_lhs(b)[0].push_pair, 0);
        // Out-of-alphabet symbols simply match nothing.
        assert!(idx.rules_for_lhs(sym(77)).is_empty());
    }
}
