//! Reusable working memory for the saturation engines.
//!
//! Saturation state is dense and short-lived: per-(state, symbol) target
//! sets, a transition worklist, per-state adjacency, and the push-rule
//! pending table. A [`SaturationScratch`] owns all of it and is reset —
//! not reallocated — between queries, so a batch worker's hot loop runs
//! against warm, already-sized buffers instead of hammering the global
//! allocator (one scratch per worker thread; see `specslice`'s
//! `QueryScratch`).
//!
//! Transition labels are stored encoded as `u32`: `0` is ε, a stack symbol
//! `γ` is `γ + 1`. Target-set membership starts as a linear scan over a
//! small vector and upgrades to a bitset over the (fixed) state space once
//! a set grows past a threshold — the "bitset-deduped worklist": a
//! transition enters the worklist exactly once, when its target first
//! enters its row's set.

use specslice_fsa::FxHashMap;

/// Linear-scan → bitset upgrade point for one row's target set.
const BITSET_THRESHOLD: usize = 16;

/// A deduplicated target set for one `(state, label)` row.
#[derive(Clone, Debug, Default)]
pub(crate) struct Row {
    /// Targets in insertion order (always complete, bitset or not).
    pub(crate) targets: Vec<u32>,
    /// Membership bitset over the state space; empty until the row grows
    /// past [`BITSET_THRESHOLD`].
    bits: Vec<u64>,
}

impl Row {
    /// Inserts `to`, returning `true` if it was new.
    fn insert(&mut self, to: u32, n_states: u32) -> bool {
        if self.bits.is_empty() {
            if self.targets.contains(&to) {
                return false;
            }
            self.targets.push(to);
            if self.targets.len() >= BITSET_THRESHOLD {
                self.bits.resize((n_states as usize).div_ceil(64), 0);
                for &t in &self.targets {
                    self.bits[(t / 64) as usize] |= 1 << (t % 64);
                }
            }
            true
        } else {
            let (w, b) = ((to / 64) as usize, to % 64);
            if self.bits[w] & (1 << b) != 0 {
                return false;
            }
            self.bits[w] |= 1 << b;
            self.targets.push(to);
            true
        }
    }

    fn reset(&mut self) {
        self.targets.clear();
        self.bits.clear();
    }
}

/// The per-`(state, label)` row table: a fast hash map from packed keys to
/// pooled rows. Rows are recycled across queries (their `Vec` capacity
/// survives the reset).
#[derive(Debug, Default)]
pub(crate) struct RowTable {
    map: FxHashMap<u64, u32>,
    rows: Vec<Row>,
    live: usize,
    n_states: u32,
}

#[inline]
fn pack(state: u32, label: u32) -> u64 {
    ((state as u64) << 32) | label as u64
}

impl RowTable {
    fn reset(&mut self, n_states: u32) {
        self.map.clear();
        self.live = 0;
        self.n_states = n_states;
    }

    /// Inserts the transition `(state, label, to)`; `true` when new.
    pub(crate) fn insert(&mut self, state: u32, label: u32, to: u32) -> bool {
        let n_states = self.n_states;
        let id = *self.map.entry(pack(state, label)).or_insert_with(|| {
            if self.live == self.rows.len() {
                self.rows.push(Row::default());
            }
            self.rows[self.live].reset();
            self.live += 1;
            (self.live - 1) as u32
        });
        self.rows[id as usize].insert(to, n_states)
    }

    /// The targets recorded for `(state, label)` so far.
    pub(crate) fn targets(&self, state: u32, label: u32) -> &[u32] {
        match self.map.get(&pack(state, label)) {
            Some(&id) => &self.rows[id as usize].targets,
            None => &[],
        }
    }

    /// Live `(state, label)` rows.
    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// The pending-match table for push rules: `(state, symbol)` → waiters
/// `(control, symbol)` still needing a second hop. Pooled like [`RowTable`].
#[derive(Debug, Default)]
pub(crate) struct PendTable {
    map: FxHashMap<u64, u32>,
    lists: Vec<Vec<(u32, u32)>>,
    live: usize,
}

impl PendTable {
    fn reset(&mut self) {
        self.map.clear();
        self.live = 0;
    }

    /// Registers a waiter for `(state, label)`.
    pub(crate) fn push(&mut self, state: u32, label: u32, waiter: (u32, u32)) {
        let id = *self.map.entry(pack(state, label)).or_insert_with(|| {
            if self.live == self.lists.len() {
                self.lists.push(Vec::new());
            }
            self.lists[self.live].clear();
            self.live += 1;
            (self.live - 1) as u32
        });
        self.lists[id as usize].push(waiter);
    }

    /// The waiters registered for `(state, label)` so far.
    pub(crate) fn waiters(&self, state: u32, label: u32) -> &[(u32, u32)] {
        match self.map.get(&pack(state, label)) {
            Some(&id) => &self.lists[id as usize],
            None => &[],
        }
    }

    /// Live waiter lists.
    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// Reusable saturation buffers — one per worker thread. Allocate once
/// (`SaturationScratch::default()`), hand `&mut` to every
/// [`crate::prestar::prestar_indexed_with_stats`] /
/// [`crate::poststar::poststar_indexed_with_stats`] call.
#[derive(Debug, Default)]
pub struct SaturationScratch {
    /// Dedup rows: `(state, label)` → target set.
    pub(crate) rows: RowTable,
    /// Per-state adjacency `(label, to)`, the automaton being built.
    pub(crate) out: Vec<Vec<(u32, u32)>>,
    /// Worklist of `(state, label, to)` transitions, each entering once.
    pub(crate) worklist: Vec<(u32, u32, u32)>,
    /// Push-rule partial matches awaiting their second hop.
    pub(crate) pending: PendTable,
    /// `Poststar` only: sources of ε-transitions into each state.
    pub(crate) eps_into: Vec<Vec<u32>>,
    /// Borrow-splitting copy buffers for the hot loop.
    pub(crate) tmp: Vec<u32>,
    /// Copy buffer for `(label, state)` pairs.
    pub(crate) tmp_pairs: Vec<(u32, u32)>,
}

impl SaturationScratch {
    /// Prepares the scratch for a run over `n_states` automaton states.
    pub(crate) fn reset(&mut self, n_states: u32) {
        self.rows.reset(n_states);
        for row in &mut self.out {
            row.clear();
        }
        self.out.resize(n_states as usize, Vec::new());
        self.worklist.clear();
        self.pending.reset();
        for v in &mut self.eps_into {
            v.clear();
        }
        self.eps_into.resize(n_states as usize, Vec::new());
        self.tmp.clear();
        self.tmp_pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_dedup_across_bitset_upgrade() {
        let mut rows = RowTable::default();
        rows.reset(1000);
        // Push enough targets through one row to cross the bitset
        // threshold; dedup must hold on both sides of the upgrade.
        for round in 0..2 {
            for t in 0..100u32 {
                let fresh = rows.insert(3, 7, t * 3);
                assert_eq!(fresh, round == 0, "t={t} round={round}");
            }
        }
        assert_eq!(rows.targets(3, 7).len(), 100);
        assert_eq!(rows.targets(3, 8), &[] as &[u32]);
        assert_eq!(rows.len(), 1);
        // Reset recycles rows without leaking previous targets.
        rows.reset(10);
        assert_eq!(rows.targets(3, 7), &[] as &[u32]);
        assert!(rows.insert(3, 7, 9));
    }

    #[test]
    fn pending_lists_accumulate_and_reset() {
        let mut pend = PendTable::default();
        pend.reset();
        pend.push(1, 2, (10, 11));
        pend.push(1, 2, (12, 13));
        assert_eq!(pend.waiters(1, 2), &[(10, 11), (12, 13)]);
        assert_eq!(pend.waiters(2, 1), &[] as &[(u32, u32)]);
        pend.reset();
        assert_eq!(pend.waiters(1, 2), &[] as &[(u32, u32)]);
    }

    #[test]
    fn scratch_reset_sizes_state_tables() {
        let mut s = SaturationScratch::default();
        s.reset(4);
        s.out[3].push((1, 2));
        s.eps_into[2].push(9);
        s.reset(2);
        assert_eq!(s.out.len(), 2);
        assert!(s.out.iter().all(Vec::is_empty));
        assert!(s.eps_into.iter().all(Vec::is_empty));
        s.reset(8);
        assert_eq!(s.out.len(), 8);
    }
}
