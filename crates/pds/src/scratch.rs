//! Reusable working memory for the saturation engines.
//!
//! Saturation state is dense and short-lived: per-(state, symbol) target
//! sets, a transition worklist, per-state adjacency, and the push-rule
//! pending table. A [`SaturationScratch`] owns all of it and is reset —
//! not reallocated — between queries, so a batch worker's hot loop runs
//! against warm, already-sized buffers instead of hammering the global
//! allocator (one scratch per worker thread; see `specslice`'s
//! `QueryScratch`).
//!
//! Transition labels are stored encoded as `u32`: `0` is ε, a stack symbol
//! `γ` is `γ + 1`. Target-set membership starts as a linear scan over a
//! small vector and upgrades to a bitset over the (fixed) state space once
//! a set grows past a threshold — the "bitset-deduped worklist": a
//! transition enters the worklist exactly once, when its target first
//! enters its row's set.

use crate::arena::BumpLists;
use specslice_fsa::FxHashMap;

/// Linear-scan → bitset upgrade point for one row's target set.
const BITSET_THRESHOLD: usize = 16;

/// A deduplicated target set for one `(state, label)` row.
#[derive(Clone, Debug, Default)]
pub(crate) struct Row {
    /// Targets in insertion order (always complete, bitset or not).
    pub(crate) targets: Vec<u32>,
    /// Membership bitset over the state space; empty until the row grows
    /// past [`BITSET_THRESHOLD`].
    bits: Vec<u64>,
}

impl Row {
    /// Inserts `to`, returning `true` if it was new.
    fn insert(&mut self, to: u32, n_states: u32) -> bool {
        if self.bits.is_empty() {
            if self.targets.contains(&to) {
                return false;
            }
            self.targets.push(to);
            if self.targets.len() >= BITSET_THRESHOLD {
                self.bits.resize((n_states as usize).div_ceil(64), 0);
                for &t in &self.targets {
                    self.bits[(t / 64) as usize] |= 1 << (t % 64);
                }
            }
            true
        } else {
            let (w, b) = ((to / 64) as usize, to % 64);
            if self.bits[w] & (1 << b) != 0 {
                return false;
            }
            self.bits[w] |= 1 << b;
            self.targets.push(to);
            true
        }
    }

    fn reset(&mut self) {
        self.targets.clear();
        self.bits.clear();
    }
}

/// The per-`(state, label)` row table: a fast hash map from packed keys to
/// pooled rows. Rows are recycled across queries (their `Vec` capacity
/// survives the reset).
#[derive(Debug, Default)]
pub(crate) struct RowTable {
    map: FxHashMap<u64, u32>,
    rows: Vec<Row>,
    live: usize,
    n_states: u32,
}

#[inline]
fn pack(state: u32, label: u32) -> u64 {
    ((state as u64) << 32) | label as u64
}

impl RowTable {
    fn reset(&mut self, n_states: u32) {
        self.map.clear();
        self.live = 0;
        self.n_states = n_states;
    }

    /// Inserts the transition `(state, label, to)`; `true` when new.
    pub(crate) fn insert(&mut self, state: u32, label: u32, to: u32) -> bool {
        let n_states = self.n_states;
        let id = *self.map.entry(pack(state, label)).or_insert_with(|| {
            if self.live == self.rows.len() {
                self.rows.push(Row::default());
            }
            self.rows[self.live].reset();
            self.live += 1;
            (self.live - 1) as u32
        });
        self.rows[id as usize].insert(to, n_states)
    }

    /// The targets recorded for `(state, label)` so far.
    pub(crate) fn targets(&self, state: u32, label: u32) -> &[u32] {
        match self.map.get(&pack(state, label)) {
            Some(&id) => &self.rows[id as usize].targets,
            None => &[],
        }
    }

    /// Live `(state, label)` rows.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Retained capacity estimate (map slots + pooled rows).
    pub(crate) fn approx_bytes(&self) -> usize {
        self.map.capacity() * 16
            + self
                .rows
                .iter()
                .map(|r| 48 + r.targets.capacity() * 4 + r.bits.capacity() * 8)
                .sum::<usize>()
    }
}

/// The batch members a saturation transition belongs to, as a bitset over
/// member indices `0..64`.
///
/// The multi-criterion engine ([`crate::prestar_multi_indexed_with_stats`])
/// labels every transition of the union saturation with the set of criteria
/// whose solo `pre*` would have derived it. Member `i`'s query transitions
/// seed with `singleton(i)`, pop-rule seeds (which fire unconditionally)
/// carry [`CriterionSet::all`], and rule firings intersect their premises'
/// masks — so bit `i` of a transition's mask is set iff the transition
/// appears in criterion `i`'s solo saturation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CriterionSet(pub u64);

impl CriterionSet {
    /// Widest batch one saturation can carry; larger batches are chunked
    /// by the caller.
    pub const MAX_MEMBERS: usize = 64;

    /// The set containing only member `i`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        debug_assert!(i < Self::MAX_MEMBERS);
        CriterionSet(1u64 << i)
    }

    /// The set of all `n` members.
    #[inline]
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= Self::MAX_MEMBERS);
        if n >= Self::MAX_MEMBERS {
            CriterionSet(u64::MAX)
        } else {
            CriterionSet((1u64 << n) - 1)
        }
    }

    /// Does the set contain member `i`?
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        debug_assert!(i < Self::MAX_MEMBERS);
        self.0 & (1u64 << i) != 0
    }

    /// Set intersection.
    #[inline]
    pub fn and(self, other: Self) -> Self {
        CriterionSet(self.0 & other.0)
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The members of the set, ascending.
    #[inline]
    pub fn members(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(i)
        })
    }
}

/// Criterion masks for the multi-criterion saturation: `(state, label, to)`
/// → [`CriterionSet`], OR-accumulated as derivations land. Separate from
/// [`RowTable`] so the solo engine pays nothing for it.
#[derive(Debug, Default)]
pub(crate) struct MaskTable {
    map: FxHashMap<(u64, u32), u64>,
}

impl MaskTable {
    pub(crate) fn reset(&mut self) {
        self.map.clear();
    }

    /// ORs `mask` into the transition's set; `true` when the set grew.
    pub(crate) fn or(&mut self, state: u32, label: u32, to: u32, mask: u64) -> bool {
        let slot = self.map.entry((pack(state, label), to)).or_insert(0);
        let grew = *slot | mask != *slot;
        *slot |= mask;
        grew
    }

    /// The mask recorded for `(state, label, to)` so far (empty if absent).
    pub(crate) fn get(&self, state: u32, label: u32, to: u32) -> u64 {
        self.map
            .get(&(pack(state, label), to))
            .copied()
            .unwrap_or(0)
    }

    /// Recorded transitions.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Retained capacity estimate.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.map.capacity() * 24
    }
}

/// The pending-match table for push rules in the multi-criterion engine.
/// Waiters record the first hop's identity `(control, symbol, hop1_from,
/// hop1_label)` so its *current* mask can be intersected at completion
/// time. Mask growth re-pops transitions, so registration must dedup.
#[derive(Debug, Default)]
pub(crate) struct PendMultiTable {
    map: FxHashMap<u64, u32>,
    lists: Vec<Vec<(u32, u32, u32, u32)>>,
    live: usize,
}

impl PendMultiTable {
    pub(crate) fn reset(&mut self) {
        self.map.clear();
        self.live = 0;
    }

    /// Registers a waiter for `(state, label)` unless already present.
    pub(crate) fn push(&mut self, state: u32, label: u32, waiter: (u32, u32, u32, u32)) {
        let id = *self.map.entry(pack(state, label)).or_insert_with(|| {
            if self.live == self.lists.len() {
                self.lists.push(Vec::new());
            }
            self.lists[self.live].clear();
            self.live += 1;
            (self.live - 1) as u32
        });
        let list = &mut self.lists[id as usize];
        if !list.contains(&waiter) {
            list.push(waiter);
        }
    }

    /// The waiters registered for `(state, label)` so far.
    pub(crate) fn waiters(&self, state: u32, label: u32) -> &[(u32, u32, u32, u32)] {
        match self.map.get(&pack(state, label)) {
            Some(&id) => &self.lists[id as usize],
            None => &[],
        }
    }

    /// Live waiter lists.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Retained capacity estimate (map slots + pooled waiter lists).
    pub(crate) fn approx_bytes(&self) -> usize {
        self.map.capacity() * 16
            + self
                .lists
                .iter()
                .map(|l| 24 + l.capacity() * 16)
                .sum::<usize>()
    }
}

/// The pending-match table for push rules: `(state, symbol)` → waiters
/// `(control, symbol)` still needing a second hop. Pooled like [`RowTable`].
#[derive(Debug, Default)]
pub(crate) struct PendTable {
    map: FxHashMap<u64, u32>,
    lists: Vec<Vec<(u32, u32)>>,
    live: usize,
}

impl PendTable {
    fn reset(&mut self) {
        self.map.clear();
        self.live = 0;
    }

    /// Registers a waiter for `(state, label)`.
    pub(crate) fn push(&mut self, state: u32, label: u32, waiter: (u32, u32)) {
        let id = *self.map.entry(pack(state, label)).or_insert_with(|| {
            if self.live == self.lists.len() {
                self.lists.push(Vec::new());
            }
            self.lists[self.live].clear();
            self.live += 1;
            (self.live - 1) as u32
        });
        self.lists[id as usize].push(waiter);
    }

    /// The waiters registered for `(state, label)` so far.
    pub(crate) fn waiters(&self, state: u32, label: u32) -> &[(u32, u32)] {
        match self.map.get(&pack(state, label)) {
            Some(&id) => &self.lists[id as usize],
            None => &[],
        }
    }

    /// Live waiter lists.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Retained capacity estimate (map slots + pooled waiter lists).
    pub(crate) fn approx_bytes(&self) -> usize {
        self.map.capacity() * 16
            + self
                .lists
                .iter()
                .map(|l| 24 + l.capacity() * 8)
                .sum::<usize>()
    }
}

/// Reusable saturation buffers — one per worker thread. Allocate once
/// (`SaturationScratch::default()`), hand `&mut` to every
/// [`crate::prestar::prestar_indexed_with_stats`] /
/// [`crate::poststar::poststar_indexed_with_stats`] call.
#[derive(Debug, Default)]
pub struct SaturationScratch {
    /// Dedup rows: `(state, label)` → target set.
    pub(crate) rows: RowTable,
    /// Per-state adjacency `(label, to)`, the automaton being built —
    /// bump-arena backed, reset (not freed) between queries.
    pub(crate) out: BumpLists<(u32, u32)>,
    /// Worklist of `(state, label, to)` transitions, each entering once.
    pub(crate) worklist: Vec<(u32, u32, u32)>,
    /// Push-rule partial matches awaiting their second hop.
    pub(crate) pending: PendTable,
    /// `Poststar` only: sources of ε-transitions into each state —
    /// bump-arena backed like `out`.
    pub(crate) eps_into: BumpLists<u32>,
    /// Borrow-splitting copy buffers for the hot loop.
    pub(crate) tmp: Vec<u32>,
    /// Copy buffer for `(label, state)` pairs.
    pub(crate) tmp_pairs: Vec<(u32, u32)>,
    /// Multi-criterion engine only: per-transition criterion masks.
    pub(crate) masks: MaskTable,
    /// Multi-criterion engine only: push-rule waiters with hop-1 identity.
    pub(crate) pending_multi: PendMultiTable,
    /// Copy buffer for `(target, mask)` pairs.
    pub(crate) tmp_masked: Vec<(u32, u64)>,
    /// Copy buffer for multi-engine waiter tuples.
    pub(crate) tmp_waiters: Vec<(u32, u32, u32, u32)>,
}

impl SaturationScratch {
    /// Prepares the scratch for a run over `n_states` automaton states.
    pub(crate) fn reset(&mut self, n_states: u32) {
        self.rows.reset(n_states);
        self.out.reset(n_states as usize);
        self.worklist.clear();
        self.pending.reset();
        self.eps_into.reset(n_states as usize);
        self.tmp.clear();
        self.tmp_pairs.clear();
        self.masks.reset();
        self.pending_multi.reset();
        self.tmp_masked.clear();
        self.tmp_waiters.clear();
    }

    /// Retained capacity estimate: what a warm pooled scratch holds onto
    /// between queries. Feeds the session's resident-byte accounting.
    pub fn approx_bytes(&self) -> usize {
        self.rows.approx_bytes()
            + self.out.approx_bytes()
            + self.eps_into.approx_bytes()
            + self.worklist.capacity() * std::mem::size_of::<(u32, u32, u32)>()
            + self.pending.approx_bytes()
            + self.pending_multi.approx_bytes()
            + self.masks.approx_bytes()
            + self.tmp.capacity() * 4
            + self.tmp_pairs.capacity() * 8
            + self.tmp_masked.capacity() * 16
            + self.tmp_waiters.capacity() * 16
    }

    /// Peak live bump-arena bytes since this scratch was created (the
    /// adjacency and ε-predecessor pools' high-water marks).
    pub fn arena_high_water_bytes(&self) -> usize {
        self.out.high_water_bytes() + self.eps_into.high_water_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_dedup_across_bitset_upgrade() {
        let mut rows = RowTable::default();
        rows.reset(1000);
        // Push enough targets through one row to cross the bitset
        // threshold; dedup must hold on both sides of the upgrade.
        for round in 0..2 {
            for t in 0..100u32 {
                let fresh = rows.insert(3, 7, t * 3);
                assert_eq!(fresh, round == 0, "t={t} round={round}");
            }
        }
        assert_eq!(rows.targets(3, 7).len(), 100);
        assert_eq!(rows.targets(3, 8), &[] as &[u32]);
        assert_eq!(rows.len(), 1);
        // Reset recycles rows without leaking previous targets.
        rows.reset(10);
        assert_eq!(rows.targets(3, 7), &[] as &[u32]);
        assert!(rows.insert(3, 7, 9));
    }

    #[test]
    fn pending_lists_accumulate_and_reset() {
        let mut pend = PendTable::default();
        pend.reset();
        pend.push(1, 2, (10, 11));
        pend.push(1, 2, (12, 13));
        assert_eq!(pend.waiters(1, 2), &[(10, 11), (12, 13)]);
        assert_eq!(pend.waiters(2, 1), &[] as &[(u32, u32)]);
        pend.reset();
        assert_eq!(pend.waiters(1, 2), &[] as &[(u32, u32)]);
    }

    #[test]
    fn criterion_set_algebra() {
        assert_eq!(CriterionSet::singleton(0).0, 1);
        assert_eq!(CriterionSet::singleton(63).0, 1 << 63);
        assert_eq!(CriterionSet::all(0).0, 0);
        assert_eq!(CriterionSet::all(3).0, 0b111);
        assert_eq!(CriterionSet::all(64).0, u64::MAX);
        assert!(CriterionSet::all(5).contains(4));
        assert!(!CriterionSet::all(5).contains(5));
        let meet = CriterionSet(0b110).and(CriterionSet(0b011));
        assert_eq!(meet, CriterionSet(0b010));
        assert!(CriterionSet(0b100).and(CriterionSet(0b011)).is_empty());
    }

    #[test]
    fn mask_table_accumulates_and_reports_growth() {
        let mut masks = MaskTable::default();
        masks.reset();
        assert!(masks.or(1, 2, 3, 0b01));
        assert!(!masks.or(1, 2, 3, 0b01), "no growth on re-OR");
        assert!(masks.or(1, 2, 3, 0b10));
        assert_eq!(masks.get(1, 2, 3), 0b11);
        assert_eq!(masks.get(1, 2, 4), 0);
        assert_eq!(masks.len(), 1);
        masks.reset();
        assert_eq!(masks.get(1, 2, 3), 0);
    }

    #[test]
    fn pend_multi_dedups_reregistration() {
        let mut pend = PendMultiTable::default();
        pend.reset();
        pend.push(1, 2, (10, 11, 5, 6));
        pend.push(1, 2, (10, 11, 5, 6));
        pend.push(1, 2, (10, 11, 7, 6));
        assert_eq!(pend.waiters(1, 2), &[(10, 11, 5, 6), (10, 11, 7, 6)]);
        assert_eq!(pend.len(), 1);
        pend.reset();
        assert_eq!(pend.waiters(1, 2), &[] as &[(u32, u32, u32, u32)]);
    }

    #[test]
    fn scratch_reset_sizes_state_tables() {
        let mut s = SaturationScratch::default();
        s.reset(4);
        s.out.push(3, (1, 2));
        s.eps_into.push(2, 9);
        s.reset(2);
        assert_eq!(s.out.n_lists(), 2);
        assert!((0..2).all(|l| s.out.iter(l).count() == 0));
        assert!((0..2).all(|l| s.eps_into.iter(l).count() == 0));
        s.reset(8);
        assert_eq!(s.out.n_lists(), 8);
        assert!(s.arena_high_water_bytes() > 0);
        assert!(s.approx_bytes() > 0);
    }
}
