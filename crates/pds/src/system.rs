//! Pushdown-system definitions (Defn. 3.1 of the paper).

use crate::index::RuleIndex;
use specslice_fsa::Symbol;
use std::fmt;
use std::sync::OnceLock;

/// A PDS control location (`p`, `p_fo`, … in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControlLoc(pub u32);

impl ControlLoc {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ControlLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Right-hand side of a PDS rule: at most two stack symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rhs {
    /// `⟨p', ε⟩` — a pop rule.
    Pop,
    /// `⟨p', γ'⟩` — an internal rule.
    Internal(Symbol),
    /// `⟨p', γ' γ''⟩` — a push rule (`γ'` becomes the new top of stack).
    Push(Symbol, Symbol),
}

/// A PDS rule `⟨p, γ⟩ ↪ ⟨p', rhs⟩`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Source control location `p`.
    pub from_loc: ControlLoc,
    /// Symbol popped from the top of the stack, `γ`.
    pub from_sym: Symbol,
    /// Target control location `p'`.
    pub to_loc: ControlLoc,
    /// Replacement for `γ`.
    pub rhs: Rhs,
}

/// A pushdown system `(P, Γ, Δ)`.
///
/// `Γ` is implicit: the symbols mentioned by rules (plus whatever query
/// automata use).
#[derive(Clone, Debug, Default)]
pub struct Pds {
    n_controls: u32,
    rules: Vec<Rule>,
    /// One past the largest stack symbol mentioned by any rule (0 when there
    /// are no rules) — the dense alphabet bound used by
    /// [`crate::RuleIndex`]'s CSR tables.
    symbol_bound: u32,
    /// Lazily built CSR index backing [`Pds::rules_for`] / [`Pds::step`]
    /// (the saturation engines use the session-cached [`RuleIndex`]
    /// instead). Invalidated by [`Pds::add_rule`].
    own_index: OnceLock<RuleIndex>,
}

impl Pds {
    /// Creates a PDS with control locations `0..n_controls`.
    pub fn new(n_controls: u32) -> Pds {
        Pds {
            n_controls,
            rules: Vec::new(),
            symbol_bound: 0,
            own_index: OnceLock::new(),
        }
    }

    /// Adds a control location, returning it.
    pub fn add_control(&mut self) -> ControlLoc {
        let c = ControlLoc(self.n_controls);
        self.n_controls += 1;
        c
    }

    /// Number of control locations.
    pub fn control_count(&self) -> u32 {
        self.n_controls
    }

    /// All rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules (`|Δ|`).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// One past the largest stack symbol any rule mentions. Query automata
    /// may use larger symbols; those simply never match a rule.
    pub fn symbol_bound(&self) -> u32 {
        self.symbol_bound
    }

    /// Adds a rule.
    ///
    /// # Panics
    ///
    /// Panics if either control location is out of range.
    pub fn add_rule(&mut self, rule: Rule) {
        assert!(rule.from_loc.0 < self.n_controls, "from_loc out of range");
        assert!(rule.to_loc.0 < self.n_controls, "to_loc out of range");
        let mut touch = |s: Symbol| self.symbol_bound = self.symbol_bound.max(s.0 + 1);
        touch(rule.from_sym);
        match rule.rhs {
            Rhs::Pop => {}
            Rhs::Internal(g) => touch(g),
            Rhs::Push(g1, g2) => {
                touch(g1);
                touch(g2);
            }
        }
        self.rules.push(rule);
        // The cached lookup index (if any) no longer covers this rule.
        self.own_index.take();
    }

    /// Adds a pop rule `⟨p, γ⟩ ↪ ⟨p', ε⟩`.
    pub fn add_pop(&mut self, p: ControlLoc, gamma: Symbol, p2: ControlLoc) {
        self.add_rule(Rule {
            from_loc: p,
            from_sym: gamma,
            to_loc: p2,
            rhs: Rhs::Pop,
        });
    }

    /// Adds an internal rule `⟨p, γ⟩ ↪ ⟨p', γ'⟩`.
    pub fn add_internal(&mut self, p: ControlLoc, gamma: Symbol, p2: ControlLoc, gamma2: Symbol) {
        self.add_rule(Rule {
            from_loc: p,
            from_sym: gamma,
            to_loc: p2,
            rhs: Rhs::Internal(gamma2),
        });
    }

    /// Adds a push rule `⟨p, γ⟩ ↪ ⟨p', γ' γ''⟩`.
    pub fn add_push(
        &mut self,
        p: ControlLoc,
        gamma: Symbol,
        p2: ControlLoc,
        top: Symbol,
        below: Symbol,
    ) {
        self.add_rule(Rule {
            from_loc: p,
            from_sym: gamma,
            to_loc: p2,
            rhs: Rhs::Push(top, below),
        });
    }

    /// Rules whose left-hand side is `⟨p, γ⟩`.
    ///
    /// Answered from a lazily built (and [`Pds::add_rule`]-invalidated)
    /// [`RuleIndex`] — one CSR row read plus a control-location filter —
    /// instead of the former O(|Δ|) scan over every rule, so test and
    /// debug drivers that iterate configurations ([`Pds::step`]) match the
    /// saturation engines' lookup cost. Within one `(p, γ)` row, rules come
    /// back in insertion order, exactly as the scan returned them.
    pub fn rules_for(&self, p: ControlLoc, gamma: Symbol) -> impl Iterator<Item = Rule> + '_ {
        let indexed = self
            .own_index
            .get_or_init(|| RuleIndex::new(self))
            .rules_for(p, gamma);
        // Cross-check the CSR row against the straightforward linear scan
        // it replaced: the two must agree rule-for-rule, in insertion
        // order. Guards the index's LHS grouping against drift as rules
        // grow structure (debug/test builds only — the scan is O(|Δ|)).
        #[cfg(debug_assertions)]
        {
            let from_index: Vec<Rule> = indexed.collect();
            let from_scan: Vec<Rule> = self
                .rules
                .iter()
                .filter(|r| r.from_loc == p && r.from_sym == gamma)
                .copied()
                .collect();
            assert_eq!(
                from_index, from_scan,
                "RuleIndex CSR row for ({p:?}, {gamma:?}) diverges from a linear rule scan"
            );
            from_scan.into_iter()
        }
        #[cfg(not(debug_assertions))]
        indexed
    }

    /// Applies one step of the transition relation `⇒` to a configuration,
    /// returning all successor configurations. Exponential if iterated;
    /// intended for tests and cross-checking the symbolic engines.
    pub fn step(&self, loc: ControlLoc, stack: &[Symbol]) -> Vec<(ControlLoc, Vec<Symbol>)> {
        let mut out = Vec::new();
        let Some((&top, rest)) = stack.split_first() else {
            return out;
        };
        for r in self.rules_for(loc, top) {
            let mut new_stack: Vec<Symbol> = Vec::with_capacity(stack.len() + 1);
            match r.rhs {
                Rhs::Pop => {}
                Rhs::Internal(g) => new_stack.push(g),
                Rhs::Push(g1, g2) => {
                    new_stack.push(g1);
                    new_stack.push(g2);
                }
            }
            new_stack.extend_from_slice(rest);
            out.push((r.to_loc, new_stack));
        }
        out
    }

    /// Approximate retained heap size in bytes (used by the Fig. 22 memory
    /// accounting).
    pub fn approx_bytes(&self) -> usize {
        self.rules.len() * std::mem::size_of::<Rule>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_indexing() {
        let mut pds = Pds::new(2);
        let (p, q) = (ControlLoc(0), ControlLoc(1));
        let a = Symbol(0);
        let b = Symbol(1);
        pds.add_internal(p, a, p, b);
        pds.add_pop(p, a, q);
        pds.add_push(q, b, p, a, b);
        assert_eq!(pds.rule_count(), 3);
        assert_eq!(pds.rules_for(p, a).count(), 2);
        assert_eq!(pds.rules_for(q, b).count(), 1);
        assert_eq!(pds.rules_for(q, a).count(), 0);
    }

    /// `rules_for` must agree with a linear scan over the rule list —
    /// same rules, same (insertion) order — for every LHS, including after
    /// an index-invalidating `add_rule` and for sparse/unused symbols.
    /// The CSR row groups by symbol first and filters the control location
    /// after; this pins that reconstruction against drift.
    #[test]
    fn rules_for_matches_linear_scan() {
        let mut pds = Pds::new(3);
        let locs = [ControlLoc(0), ControlLoc(1), ControlLoc(2)];
        // Interleave LHS groups so CSR rows stitch non-adjacent insertions.
        for round in 0..3u32 {
            for (i, &p) in locs.iter().enumerate() {
                let gamma = Symbol((round + i as u32) % 4);
                match round {
                    0 => pds.add_internal(p, gamma, locs[(i + 1) % 3], Symbol(5)),
                    1 => pds.add_pop(p, gamma, locs[(i + 2) % 3]),
                    _ => pds.add_push(p, gamma, p, Symbol(6), gamma),
                }
            }
        }
        let check = |pds: &Pds| {
            for &p in &locs {
                for g in 0..7u32 {
                    let gamma = Symbol(g);
                    let from_index: Vec<Rule> = pds.rules_for(p, gamma).collect();
                    let from_scan: Vec<Rule> = pds
                        .rules()
                        .iter()
                        .filter(|r| r.from_loc == p && r.from_sym == gamma)
                        .copied()
                        .collect();
                    assert_eq!(from_index, from_scan, "({p:?}, {gamma:?})");
                }
            }
        };
        check(&pds);
        // Appending a rule drops the cached index; the rebuilt one must
        // still match the scan.
        pds.add_internal(locs[1], Symbol(3), locs[0], Symbol(0));
        check(&pds);
    }

    #[test]
    fn concrete_step() {
        let mut pds = Pds::new(1);
        let p = ControlLoc(0);
        let (a, b, c) = (Symbol(0), Symbol(1), Symbol(2));
        pds.add_push(p, a, p, b, c);
        let succs = pds.step(p, &[a, a]);
        assert_eq!(succs, vec![(p, vec![b, c, a])]);
        // empty stack: no moves
        assert!(pds.step(p, &[]).is_empty());
    }

    #[test]
    fn add_control_extends_range() {
        let mut pds = Pds::new(1);
        let extra = pds.add_control();
        assert_eq!(extra, ControlLoc(1));
        assert_eq!(pds.control_count(), 2);
    }
}
