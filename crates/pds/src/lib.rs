//! Pushdown systems and symbolic reachability (the paper's WALi substitute).
//!
//! A pushdown system (PDS, Defn. 3.1 of *Specialization Slicing*) is a triple
//! `(P, Γ, Δ)` of control locations, stack symbols, and rules with at most
//! two stack symbols on the right-hand side. Sets of configurations `(p, w)`
//! are represented by [`PAutomaton`]s (Defn. 3.5); the saturation procedures
//! [`prestar()`] (Defn. 3.6) and [`poststar()`] (Defn. 3.7) compute automata
//! for `pre*(C)` and `post*(C)` — backward and forward reachability over the
//! possibly-infinite transition relation.
//!
//! When the PDS encodes an SDG (see `specslice::encode`), `pre*` *is*
//! stack-configuration slicing of the unrolled SDG, and `post*` is forward
//! stack-configuration slicing (used by Alg. 2 feature removal).
//!
//! # Example: the counter PDS
//!
//! ```
//! use specslice_pds::{Pds, PAutomaton, prestar, ControlLoc};
//! use specslice_fsa::Symbol;
//!
//! // One control location; rules: <p, a> -> <p, ε>. pre*{(p, ε)} = (p, a*).
//! let p = ControlLoc(0);
//! let a = Symbol(0);
//! let mut pds = Pds::new(1);
//! pds.add_pop(p, a, p);
//! let mut query = PAutomaton::new(1);
//! let f = query.add_state();
//! query.set_final(f);
//! // accepts exactly (p, ε): final state reachable by the empty word
//! query.set_final(query.control_state(p));
//! let result = prestar(&pds, &query).expect("well-formed query");
//! assert!(result.accepts(p, &[a, a, a]));
//! ```

pub mod arena;
pub mod automaton;
pub mod index;
pub mod poststar;
pub mod prestar;
pub mod saturate;
pub mod scratch;
pub mod system;

pub use automaton::{PAutomaton, PState};
pub use index::RuleIndex;
pub use poststar::{poststar, poststar_multi_indexed_with_stats, MultiPoststar};
pub use prestar::{prestar, prestar_multi_indexed_with_stats, MultiPrestar};
pub use saturate::{
    saturate_indexed_with_stats, saturate_multi_indexed_with_stats, Direction, MultiSaturation,
    SaturationStats,
};
pub use scratch::{CriterionSet, SaturationScratch};
pub use system::{ControlLoc, Pds, Rhs, Rule};

use std::fmt;

/// Errors from the symbolic reachability engines.
///
/// Saturation runs inside worker threads of batch-slicing clients; a
/// malformed query must surface as a value the caller can route, never as a
/// panic that poisons the worker pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PdsError {
    /// The query automaton contains an ε-transition. Saturation matches
    /// rules against *labeled* transitions only, so an ε-move surviving into
    /// the run would silently drop configurations; the engines refuse it
    /// up front instead.
    EpsilonInQuery {
        /// Number of ε-transitions found.
        count: usize,
    },
    /// The query automaton has fewer control states than the PDS has
    /// control locations, so some rules could never anchor.
    MissingControls {
        /// Control states of the query automaton.
        query: u32,
        /// Control locations of the PDS.
        pds: u32,
    },
    /// The query automaton has transitions into control states, violating
    /// the `post*` P-automaton precondition (Schwoon 2002): saturation
    /// treats control states as pure sources, so such transitions would be
    /// silently ignored rather than explored.
    TransitionIntoControl {
        /// Number of offending transitions.
        count: usize,
    },
    /// A multi-criterion batch is wider than one criterion-mask word
    /// ([`CriterionSet::MAX_MEMBERS`]), or empty. Callers chunk batches
    /// before calling the engine, so this indicates a caller bug — but it
    /// surfaces as a value to keep batch workers alive.
    BadBatchWidth {
        /// Number of member queries supplied.
        members: usize,
    },
}

impl fmt::Display for PdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdsError::EpsilonInQuery { count } => write!(
                f,
                "query automaton has {count} ε-transition(s); saturation requires ε-free queries"
            ),
            PdsError::MissingControls { query, pds } => write!(
                f,
                "query automaton has {query} control state(s) but the PDS has {pds} \
                 control location(s)"
            ),
            PdsError::TransitionIntoControl { count } => write!(
                f,
                "query automaton has {count} transition(s) into control states; \
                 post* requires control states to be pure sources"
            ),
            PdsError::BadBatchWidth { members } => write!(
                f,
                "multi-criterion batch has {members} member(s); the engine supports \
                 1..={} per saturation",
                scratch::CriterionSet::MAX_MEMBERS
            ),
        }
    }
}

impl std::error::Error for PdsError {}
