//! Chunked bump arena for the saturation engines' per-state lists.
//!
//! A saturation builds one append-only list per automaton state (the
//! adjacency rows and, for `post*`, the ε-predecessor sets). Backing each
//! list with its own `Vec` makes every query pay one heap allocation per
//! touched state — and, worse, a batch whose state counts fluctuate keeps
//! truncating and regrowing the tail of the outer table, so the capacity
//! never converges. [`BumpLists`] stores *all* lists in one chunk pool:
//! a list is a linked chain of fixed-size chunks, chunks are handed out by
//! bumping a cursor, and `reset` rewinds the cursor without freeing — so
//! after a warm-up query the steady state allocates nothing at all, no
//! matter how the per-query state counts vary.
//!
//! The pool also tracks its high-water mark (peak live chunks), which the
//! session surfaces as the arena footprint a warm worker retains.

/// Items per chunk. Adjacency rows are mostly short (a handful of
/// targets); 8 keeps small lists in one chunk while bounding slack.
const CHUNK: usize = 8;

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Chunk<T> {
    next: u32,
    len: u32,
    items: [T; CHUNK],
}

impl<T: Copy + Default> Default for Chunk<T> {
    fn default() -> Self {
        Chunk {
            next: NONE,
            len: 0,
            items: [T::default(); CHUNK],
        }
    }
}

/// An arena of append-only lists, indexed `0..n_lists`, all backed by one
/// bump-allocated chunk pool. `reset` rewinds the pool cursor; chunk
/// storage is never freed, so steady-state pushes are allocation-free.
#[derive(Debug, Default)]
pub struct BumpLists<T> {
    heads: Vec<u32>,
    tails: Vec<u32>,
    chunks: Vec<Chunk<T>>,
    /// Pool cursor: chunks `0..live` belong to the current run.
    live: u32,
    /// Peak of `live` since creation.
    high_water: u32,
}

impl<T: Copy + Default + PartialEq> BumpLists<T> {
    /// Starts a fresh run over `n_lists` empty lists, retaining all
    /// chunk storage from previous runs.
    pub fn reset(&mut self, n_lists: usize) {
        self.heads.clear();
        self.heads.resize(n_lists, NONE);
        self.tails.clear();
        self.tails.resize(n_lists, NONE);
        self.live = 0;
    }

    /// Number of lists in the current run.
    pub fn n_lists(&self) -> usize {
        self.heads.len()
    }

    /// Appends `item` to `list`.
    pub fn push(&mut self, list: u32, item: T) {
        let tail = self.tails[list as usize];
        if tail != NONE {
            let c = &mut self.chunks[tail as usize];
            if (c.len as usize) < CHUNK {
                c.items[c.len as usize] = item;
                c.len += 1;
                return;
            }
        }
        let id = self.live;
        if id as usize == self.chunks.len() {
            self.chunks.push(Chunk::default());
        }
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        let c = &mut self.chunks[id as usize];
        c.next = NONE;
        c.len = 1;
        c.items[0] = item;
        if tail == NONE {
            self.heads[list as usize] = id;
        } else {
            self.chunks[tail as usize].next = id;
        }
        self.tails[list as usize] = id;
    }

    /// The items of `list`, in insertion order.
    pub fn iter(&self, list: u32) -> impl Iterator<Item = T> + '_ {
        let mut chunk = self.heads[list as usize];
        let mut at = 0usize;
        std::iter::from_fn(move || loop {
            if chunk == NONE {
                return None;
            }
            let c = &self.chunks[chunk as usize];
            if at < c.len as usize {
                let item = c.items[at];
                at += 1;
                return Some(item);
            }
            chunk = c.next;
            at = 0;
        })
    }

    /// Whether `list` already contains `item` (linear scan — ε-predecessor
    /// sets are short).
    pub fn contains(&self, list: u32, item: T) -> bool {
        self.iter(list).any(|x| x == item)
    }

    /// Bytes live in the current run (list headers + chunks in use).
    pub fn live_bytes(&self) -> usize {
        self.heads.len() * 8 + self.live as usize * std::mem::size_of::<Chunk<T>>()
    }

    /// Peak live chunk bytes since creation — the arena footprint a warm
    /// worker retains between queries.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water as usize * std::mem::size_of::<Chunk<T>>()
    }

    /// Retained capacity (headers + the whole chunk pool).
    pub fn approx_bytes(&self) -> usize {
        (self.heads.capacity() + self.tails.capacity()) * 4
            + self.chunks.capacity() * std::mem::size_of::<Chunk<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_grow_across_chunks_in_order() {
        let mut lists: BumpLists<u32> = BumpLists::default();
        lists.reset(3);
        for i in 0..30 {
            lists.push(1, i);
            if i % 3 == 0 {
                lists.push(2, 100 + i);
            }
        }
        assert_eq!(
            lists.iter(1).collect::<Vec<_>>(),
            (0..30).collect::<Vec<_>>()
        );
        assert_eq!(
            lists.iter(2).collect::<Vec<_>>(),
            vec![100, 103, 106, 109, 112, 115, 118, 121, 124, 127]
        );
        assert_eq!(lists.iter(0).count(), 0);
        assert!(lists.contains(1, 17));
        assert!(!lists.contains(1, 99));
    }

    #[test]
    fn reset_rewinds_without_freeing() {
        let mut lists: BumpLists<(u32, u32)> = BumpLists::default();
        lists.reset(2);
        for i in 0..100 {
            lists.push(0, (i, i));
        }
        let cap = lists.approx_bytes();
        let hw = lists.high_water_bytes();
        assert!(hw > 0);
        // A smaller second run reuses the pool: capacity stays put and
        // previous contents do not leak.
        lists.reset(1);
        assert_eq!(lists.iter(0).count(), 0);
        lists.push(0, (7, 7));
        assert_eq!(lists.iter(0).collect::<Vec<_>>(), vec![(7, 7)]);
        assert_eq!(lists.approx_bytes(), cap);
        assert_eq!(lists.high_water_bytes(), hw, "high water persists");
        assert!(lists.live_bytes() < hw + lists.n_lists() * 8 + 1);
    }

    #[test]
    fn interleaved_lists_stay_separate() {
        let mut lists: BumpLists<u32> = BumpLists::default();
        let n = 50u32;
        lists.reset(n as usize);
        for round in 0..20u32 {
            for l in 0..n {
                lists.push(l, l * 1000 + round);
            }
        }
        for l in 0..n {
            let got: Vec<u32> = lists.iter(l).collect();
            let want: Vec<u32> = (0..20).map(|r| l * 1000 + r).collect();
            assert_eq!(got, want, "list {l}");
        }
    }
}
