//! P-automata: finite automata whose initial states are PDS control
//! locations (Defn. 3.5 of the paper). They represent regular sets of
//! configurations `(p, w)`: the configuration is accepted when the automaton
//! accepts `w` starting from the state of `p`.

use crate::system::ControlLoc;
use specslice_fsa::{FxHashSet, Nfa, Symbol};
use std::collections::BTreeSet;

/// A state of a [`PAutomaton`]. States `0..n_controls` coincide with PDS
/// control locations; further states are added by queries and saturation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PState(pub u32);

impl PState {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite automaton over stack symbols whose initial states are the PDS
/// control locations. ε-transitions (`None` labels) arise during `post*`
/// saturation.
#[derive(Clone, Debug)]
pub struct PAutomaton {
    n_controls: u32,
    n_states: u32,
    finals: BTreeSet<PState>,
    out: Vec<Vec<(Option<Symbol>, PState)>>,
    seen: FxHashSet<(PState, Option<Symbol>, PState)>,
}

impl PAutomaton {
    /// Creates an automaton whose first `n_controls` states are the control
    /// locations, with no transitions and no final states.
    pub fn new(n_controls: u32) -> PAutomaton {
        PAutomaton {
            n_controls,
            n_states: n_controls,
            finals: BTreeSet::new(),
            out: vec![Vec::new(); n_controls as usize],
            seen: FxHashSet::default(),
        }
    }

    /// The state corresponding to control location `p`.
    pub fn control_state(&self, p: ControlLoc) -> PState {
        assert!(p.0 < self.n_controls, "control location out of range");
        PState(p.0)
    }

    /// Whether `s` is a control-location state.
    pub fn is_control_state(&self, s: PState) -> bool {
        s.0 < self.n_controls
    }

    /// Number of control locations.
    pub fn control_count(&self) -> u32 {
        self.n_controls
    }

    /// Adds a fresh non-control state.
    pub fn add_state(&mut self) -> PState {
        let s = PState(self.n_states);
        self.n_states += 1;
        self.out.push(Vec::new());
        s
    }

    /// Total number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.seen.len()
    }

    /// Marks `s` as accepting.
    pub fn set_final(&mut self, s: PState) {
        self.finals.insert(s);
    }

    /// The accepting states.
    pub fn finals(&self) -> &BTreeSet<PState> {
        &self.finals
    }

    /// Adds a transition (deduplicated); `None` is ε. Returns `true` if new.
    pub fn add_transition(&mut self, from: PState, sym: Option<Symbol>, to: PState) -> bool {
        assert!(from.0 < self.n_states && to.0 < self.n_states);
        if self.seen.insert((from, sym, to)) {
            self.out[from.index()].push((sym, to));
            true
        } else {
            false
        }
    }

    /// Whether a transition exists.
    pub fn has_transition(&self, from: PState, sym: Option<Symbol>, to: PState) -> bool {
        self.seen.contains(&(from, sym, to))
    }

    /// Outgoing transitions of `s`.
    pub fn transitions_from(&self, s: PState) -> &[(Option<Symbol>, PState)] {
        &self.out[s.index()]
    }

    /// Iterates over all transitions.
    pub fn transitions(&self) -> impl Iterator<Item = (PState, Option<Symbol>, PState)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(i, ts)| ts.iter().map(move |&(s, t)| (PState(i as u32), s, t)))
    }

    /// Whether configuration `(p, word)` is accepted.
    pub fn accepts(&self, p: ControlLoc, word: &[Symbol]) -> bool {
        let mut cur: BTreeSet<PState> = BTreeSet::new();
        cur.insert(self.control_state(p));
        cur = self.eps_closure(cur);
        for &sym in word {
            let mut next = BTreeSet::new();
            for &q in &cur {
                for &(l, t) in self.transitions_from(q) {
                    if l == Some(sym) {
                        next.insert(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = self.eps_closure(next);
        }
        cur.iter().any(|q| self.finals.contains(q))
    }

    fn eps_closure(&self, mut set: BTreeSet<PState>) -> BTreeSet<PState> {
        let mut work: Vec<PState> = set.iter().copied().collect();
        while let Some(q) = work.pop() {
            for &(l, t) in self.transitions_from(q) {
                if l.is_none() && set.insert(t) {
                    work.push(t);
                }
            }
        }
        set
    }

    /// Converts the stack language recognized *from control location `p`*
    /// into a plain [`Nfa`] (the `A1` fed into the MRD pipeline).
    ///
    /// State mapping: the state of `p` becomes the NFA's initial state 0;
    /// every other automaton state `s` becomes NFA state `s + 1` (shifted to
    /// make room) — callers that need to relate NFA states back to
    /// P-automaton states can use [`PAutomaton::nfa_state_of`].
    pub fn to_nfa(&self, p: ControlLoc) -> Nfa {
        let mut nfa = Nfa::new();
        // NFA state 0 = control p. All P-automaton states get shifted by 1;
        // p itself is duplicated onto 0 (transitions from p are copied).
        for _ in 0..self.n_states {
            nfa.add_state();
        }
        let shift = |s: PState| specslice_fsa::StateId(s.0 + 1);
        let pstate = self.control_state(p);
        for (from, sym, to) in self.transitions() {
            nfa.add_transition(shift(from), sym, shift(to));
            if from == pstate {
                nfa.add_transition(nfa.initial(), sym, shift(to));
            }
        }
        for &f in &self.finals {
            nfa.set_final(shift(f));
            if f == pstate {
                nfa.set_final(nfa.initial());
            }
        }
        nfa
    }

    /// The NFA state (under [`PAutomaton::to_nfa`]'s mapping) of automaton
    /// state `s`.
    pub fn nfa_state_of(&self, s: PState) -> specslice_fsa::StateId {
        specslice_fsa::StateId(s.0 + 1)
    }

    /// Approximate retained bytes (Fig. 22 accounting).
    pub fn approx_bytes(&self) -> usize {
        self.seen.len() * std::mem::size_of::<(PState, Option<Symbol>, PState)>() * 2
            + self.out.len() * std::mem::size_of::<Vec<(Option<Symbol>, PState)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_configurations() {
        let p = ControlLoc(0);
        let (a, b) = (Symbol(0), Symbol(1));
        let mut aut = PAutomaton::new(1);
        let m = aut.add_state();
        aut.add_transition(aut.control_state(p), Some(a), m);
        aut.add_transition(m, Some(b), m);
        aut.set_final(m);
        assert!(aut.accepts(p, &[a]));
        assert!(aut.accepts(p, &[a, b, b]));
        assert!(!aut.accepts(p, &[b]));
        assert!(!aut.accepts(p, &[]));
    }

    #[test]
    fn epsilon_transitions_work() {
        let p = ControlLoc(0);
        let a = Symbol(0);
        let mut aut = PAutomaton::new(2);
        let q = ControlLoc(1);
        let f = aut.add_state();
        aut.add_transition(aut.control_state(p), None, aut.control_state(q));
        aut.add_transition(aut.control_state(q), Some(a), f);
        aut.set_final(f);
        assert!(aut.accepts(p, &[a]));
        assert!(aut.accepts(q, &[a]));
    }

    #[test]
    fn to_nfa_matches_acceptance() {
        let p = ControlLoc(0);
        let (a, b) = (Symbol(0), Symbol(1));
        let mut aut = PAutomaton::new(1);
        let m = aut.add_state();
        aut.add_transition(aut.control_state(p), Some(a), m);
        aut.add_transition(m, Some(b), m);
        aut.set_final(m);
        let nfa = aut.to_nfa(p);
        assert!(nfa.accepts(&[a]));
        assert!(nfa.accepts(&[a, b]));
        assert!(!nfa.accepts(&[b]));
    }

    #[test]
    fn to_nfa_with_final_control_state() {
        // Configuration (p, ε) accepted: control state itself is final.
        let p = ControlLoc(0);
        let mut aut = PAutomaton::new(1);
        aut.set_final(aut.control_state(p));
        assert!(aut.accepts(p, &[]));
        let nfa = aut.to_nfa(p);
        assert!(nfa.accepts(&[]));
    }

    #[test]
    fn duplicate_transitions_are_ignored() {
        let p = ControlLoc(0);
        let a = Symbol(0);
        let mut aut = PAutomaton::new(1);
        let m = aut.add_state();
        assert!(aut.add_transition(aut.control_state(p), Some(a), m));
        assert!(!aut.add_transition(aut.control_state(p), Some(a), m));
        assert_eq!(aut.transition_count(), 1);
    }
}
