//! The direction-generic saturation core shared by [`crate::prestar`][mod@crate::prestar] and
//! [`crate::poststar`][mod@crate::poststar].
//!
//! Both engines are the same worklist algorithm — seed a transition
//! relation, fire PDS rules against transitions out of control states until
//! nothing new appears — differing only in which side of a rule they match
//! and whether saturation may add states (`post*` adds one Phase-I state
//! per distinct push-rule target pair and creates ε-transitions via pop
//! rules; `pre*` does neither). This module holds the one implementation of
//! each [`Direction`], the shared validation and union-building steps, and
//! the multi-criterion bitset machinery, so the two public modules are thin
//! direction-pinning wrappers and cannot diverge.
//!
//! Labels are stored encoded as `u32`: `0` is ε, a stack symbol `γ` is
//! `γ + 1`. The backward engines never produce label `0`.

use crate::automaton::{PAutomaton, PState};
use crate::index::RuleIndex;
use crate::scratch::{CriterionSet, SaturationScratch};
use crate::system::Rhs;
use crate::PdsError;
use specslice_fsa::{FxHashMap, Symbol};
use std::fmt;

/// Which reachability closure a saturation computes.
///
/// [`Direction::Backward`] is `pre*` (Defn. 3.6): the configurations that
/// can *reach* the query set — backward slicing. [`Direction::Forward`] is
/// `post*` (Defn. 3.7): the configurations *reachable from* the query set —
/// forward slicing. Everything downstream of saturation (the automaton
/// chain, read-out, memoization, the wire protocol) is parameterized by
/// this enum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `pre*`: backward reachability (backward slicing).
    #[default]
    Backward,
    /// `post*`: forward reachability (forward slicing).
    Forward,
}

impl Direction {
    /// Stable lowercase name, used in wire payloads and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Backward => "backward",
            Direction::Forward => "forward",
        }
    }

    /// Parses [`Direction::as_str`]'s output back.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "backward" => Some(Direction::Backward),
            "forward" => Some(Direction::Forward),
            _ => None,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Statistics from one saturation run, either direction. Sizes feed the
/// Fig. 22 memory accounting; the counters feed the query benchmark's
/// deterministic drift gate.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaturationStats {
    /// Transitions in the saturated automaton (including ε for `post*`).
    pub transitions: usize,
    /// Transitions of the input query automaton (summed over members for a
    /// multi-criterion run).
    pub query_transitions: usize,
    /// States added in Phase I — always 0 for `pre*`, one per distinct
    /// push-rule target pair for `post*`.
    pub phase1_states: usize,
    /// Approximate peak bytes retained by the saturation data structures.
    pub peak_bytes: usize,
    /// Saturation firings: every time a PDS rule (or ε-combination) matched
    /// transitions and produced a candidate, counting duplicates. A pure
    /// function of the PDS + query for a given engine build — identical on
    /// every machine and at every thread count, which is what lets the
    /// query benchmark gate on it.
    pub rule_applications: usize,
    /// Deepest the worklist ever got (measured at the top of each
    /// iteration).
    pub peak_worklist: usize,
}

/// Validates the standard P-automaton preconditions for one query.
///
/// Both directions require control-state coverage and ε-freedom; `post*`
/// additionally requires control states to be pure sources (Schwoon 2002).
/// The check order (missing controls, then ε, then into-control) mirrors
/// the historical assertion order so diagnostics stay stable.
fn validate_query(idx: &RuleIndex, query: &PAutomaton, dir: Direction) -> Result<(), PdsError> {
    if query.control_count() < idx.control_count() {
        return Err(PdsError::MissingControls {
            query: query.control_count(),
            pds: idx.control_count(),
        });
    }
    let epsilon_count = query.transitions().filter(|(_, l, _)| l.is_none()).count();
    if epsilon_count > 0 {
        return Err(PdsError::EpsilonInQuery {
            count: epsilon_count,
        });
    }
    if dir == Direction::Forward {
        let into_control = query
            .transitions()
            .filter(|&(_, _, t)| query.is_control_state(t))
            .count();
        if into_control > 0 {
            return Err(PdsError::TransitionIntoControl {
                count: into_control,
            });
        }
    }
    Ok(())
}

/// Computes the saturation of `query` in `dir` against a prebuilt rule
/// index and caller-owned scratch — the session hot path behind
/// [`crate::prestar::prestar_indexed_with_stats`] and
/// [`crate::poststar::poststar_indexed_with_stats`].
pub fn saturate_indexed_with_stats(
    dir: Direction,
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> Result<(PAutomaton, SaturationStats), PdsError> {
    validate_query(idx, query, dir)?;
    match dir {
        Direction::Backward => Ok(backward_solo(idx, query, scratch)),
        Direction::Forward => Ok(forward_solo(idx, query, scratch)),
    }
}

/// The `pre*` worklist engine (Esparza et al. 2000) on a validated query.
fn backward_solo(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> (PAutomaton, SaturationStats) {
    let n_states = query.state_count() as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        pending,
        tmp,
        tmp_pairs,
        ..
    } = scratch;

    // A transition enters the worklist exactly once: when its target first
    // enters its `(state, symbol)` row.
    fn add(
        rows: &mut crate::scratch::RowTable,
        out: &mut crate::arena::BumpLists<(u32, u32)>,
        worklist: &mut Vec<(u32, u32, u32)>,
        from: u32,
        sym: Symbol,
        to: u32,
    ) {
        debug_assert!(sym.0 < u32::MAX, "symbol id overflows the ε encoding");
        let label = sym.0 + 1;
        if rows.insert(from, label, to) {
            out.push(from, (label, to));
            worklist.push((from, label, to));
        }
    }

    // Seeds: the query's transitions, then the pop rules (which fire
    // unconditionally: ⟨p, γ⟩ ↪ ⟨p', ε⟩ gives p –γ→ p').
    for (f, l, t) in query.transitions() {
        let sym = l.expect("ε-freedom checked above");
        add(rows, out, worklist, f.0, sym, t.0);
    }
    let mut rule_applications = idx.pops().len();
    for &(p, gamma, p2) in idx.pops() {
        add(rows, out, worklist, p.0, gamma, p2.0);
    }

    let n_controls = idx.control_count();
    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        let sym = Symbol(label - 1);
        // Rules match transitions out of control states only — states
        // `0..n_controls` coincide with control locations, so one compare
        // skips the rule tables entirely for interior states.
        if f < n_controls {
            // Internal rules ⟨p,γ⟩ ↪ ⟨p',γ'⟩ with (p', γ') = (f, sym):
            for m in idx.internal_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                rule_applications += 1;
                add(rows, out, worklist, m.from_loc.0, m.from_sym, t);
            }
            // Push rules ⟨p,γ⟩ ↪ ⟨p',γ'γ''⟩ with (p', γ') = (f, sym): we
            // have the first hop p' –γ'→ t; need t –γ''→ q2 (now or later).
            for m in idx.push_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                debug_assert!(m.below.0 < u32::MAX);
                let below = m.below.0 + 1;
                tmp.clear();
                tmp.extend_from_slice(rows.targets(t, below));
                for &q2 in tmp.iter() {
                    rule_applications += 1;
                    add(rows, out, worklist, m.from_loc.0, m.from_sym, q2);
                }
                pending.push(t, below, (m.from_loc.0, m.from_sym.0));
            }
        }
        // Complete earlier partial matches waiting on (f, sym).
        tmp_pairs.clear();
        tmp_pairs.extend_from_slice(pending.waiters(f, label));
        for &(p, gamma) in tmp_pairs.iter() {
            rule_applications += 1;
            add(rows, out, worklist, p, Symbol(gamma), t);
        }
    }

    // Materialize the saturated automaton: the query plus every inferred
    // transition, in deterministic (state-major, insertion) order.
    let mut aut = query.clone();
    for state in 0..out.n_lists() as u32 {
        for (label, to) in out.iter(state) {
            aut.add_transition(PState(state), Some(Symbol(label - 1)), PState(to));
        }
    }

    // The structures only grow during saturation, so the peak is the final
    // footprint plus the deepest worklist.
    let transitions = aut.transition_count();
    let stats = SaturationStats {
        transitions,
        query_transitions: query.transition_count(),
        phase1_states: 0,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + pending.len() * 48
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    (aut, stats)
}

/// The `post*` worklist engine (Schwoon 2002, Alg. 2) on a validated query.
fn forward_solo(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> (PAutomaton, SaturationStats) {
    // Phase I: one fresh state per distinct (p', γ') push-rule target pair,
    // numbered densely after the query's states (the numbering lives in the
    // rule index, so Phase II looks pairs up without hashing).
    let n_query_states = query.state_count() as u32;
    let phase1_states = idx.push_pairs().len();
    let n_states = n_query_states + phase1_states as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        eps_into,
        tmp_pairs,
        ..
    } = scratch;

    fn add(
        rows: &mut crate::scratch::RowTable,
        out: &mut crate::arena::BumpLists<(u32, u32)>,
        worklist: &mut Vec<(u32, u32, u32)>,
        from: u32,
        label: u32,
        to: u32,
    ) {
        if rows.insert(from, label, to) {
            out.push(from, (label, to));
            worklist.push((from, label, to));
        }
    }
    let enc = |sym: Symbol| {
        debug_assert!(sym.0 < u32::MAX, "symbol id overflows the ε encoding");
        sym.0 + 1
    };

    for (f, l, t) in query.transitions() {
        let sym = l.expect("ε-freedom checked above");
        add(rows, out, worklist, f.0, enc(sym), t.0);
    }

    let n_controls = idx.control_count();
    let mut rule_applications = 0usize;
    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        if label != 0 {
            let sym = Symbol(label - 1);
            // Rules fire on transitions out of control states.
            if f < n_controls {
                for r in idx.rules_for_lhs(sym) {
                    if r.from_loc.0 != f {
                        continue;
                    }
                    rule_applications += 1;
                    match r.rhs {
                        Rhs::Pop => add(rows, out, worklist, r.to_loc.0, 0, t),
                        Rhs::Internal(g2) => add(rows, out, worklist, r.to_loc.0, enc(g2), t),
                        Rhs::Push(g1, g2) => {
                            let mid = n_query_states + r.push_pair;
                            add(rows, out, worklist, r.to_loc.0, enc(g1), mid);
                            add(rows, out, worklist, mid, enc(g2), t);
                        }
                    }
                }
            }
            // ε-combination: q' –ε→ f plus f –sym→ t gives q' –sym→ t.
            // `add` never touches `eps_into`, so the row is iterated in
            // place (unlike the ε-branch below, which snapshots `out[t]`
            // because `add` appends to `out`).
            for q2 in eps_into.iter(f) {
                rule_applications += 1;
                add(rows, out, worklist, q2, label, t);
            }
        } else {
            // f –ε→ t: combine with all labeled t –sym→ u.
            eps_into.push(t, f);
            tmp_pairs.clear();
            tmp_pairs.extend(out.iter(t).filter(|&(l2, _)| l2 != 0));
            for &(l2, u) in tmp_pairs.iter() {
                rule_applications += 1;
                add(rows, out, worklist, f, l2, u);
            }
        }
    }

    // Materialize: the query, the Phase-I states, then every inferred
    // transition in deterministic (state-major, insertion) order.
    let mut aut = query.clone();
    for _ in 0..phase1_states {
        aut.add_state();
    }
    for state in 0..out.n_lists() as u32 {
        for (label, to) in out.iter(state) {
            let l = if label == 0 {
                None
            } else {
                Some(Symbol(label - 1))
            };
            aut.add_transition(PState(state), l, PState(to));
        }
    }

    let transitions = aut.transition_count();
    let stats = SaturationStats {
        transitions,
        query_transitions: query.transition_count(),
        phase1_states,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + eps_into.live_bytes()
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    (aut, stats)
}

/// The result of one multi-criterion saturation
/// ([`saturate_multi_indexed_with_stats`]): the saturation of the *union*
/// of the member queries, with every transition labeled by the set of
/// members whose solo saturation would have derived it.
#[derive(Debug)]
pub struct MultiSaturation {
    /// The saturated union automaton. Its states are the shared control
    /// states, each member's fresh states in member order, then (forward
    /// only) the shared Phase-I states.
    pub automaton: PAutomaton,
    /// Member `i`'s final states, remapped into the union state space.
    pub member_finals: Vec<Vec<PState>>,
    /// Per-transition criterion masks, keyed `(from, encoded label, to)`
    /// with `0` for ε.
    masks: FxHashMap<(u32, u32, u32), u64>,
    /// Statistics of the single shared saturation.
    pub stats: SaturationStats,
}

impl MultiSaturation {
    /// The members whose solo saturation contains `from –sym→ to`.
    pub fn mask(&self, from: PState, sym: Symbol, to: PState) -> CriterionSet {
        self.mask_label(from, Some(sym), to)
    }

    /// [`MultiSaturation::mask`], accepting ε (`post*` outputs carry
    /// ε-transitions).
    pub fn mask_label(&self, from: PState, label: Option<Symbol>, to: PState) -> CriterionSet {
        let l = label.map_or(0, |s| s.0 + 1);
        CriterionSet(self.masks.get(&(from.0, l, to.0)).copied().unwrap_or(0))
    }
}

/// One-pass saturation for up to [`CriterionSet::MAX_MEMBERS`] criterion
/// queries over the same PDS, in either direction.
///
/// Builds the union of the member query automata (control states shared,
/// fresh states disjoint) and runs a single bitset-labeled saturation over
/// it: member `i`'s query transitions seed with mask `{i}`, unconditional
/// derivations (backward pop-rule seeds) carry the full mask, single-premise
/// derivations propagate their premise's mask, and two-premise derivations
/// (backward push completions, forward ε-combinations) intersect the masks
/// of their premises — derivations whose intersection is empty are dropped.
/// Masks OR-accumulate; a transition re-enters the worklist whenever its
/// mask grows, so the run reaches the least fixpoint of the labeled system.
///
/// Because member queries never share fresh states and their transitions
/// all leave control states (never enter them), a transition carries bit
/// `i` **iff** it appears in member `i`'s solo saturation — so projecting
/// the result through [`MultiSaturation::mask_label`] reproduces each solo
/// run exactly, at the cost of ~one saturation for the whole batch.
///
/// # Errors
///
/// [`PdsError::BadBatchWidth`] for empty or >64-member batches, plus the
/// per-member preconditions of the solo engines.
pub fn saturate_multi_indexed_with_stats(
    dir: Direction,
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    scratch: &mut SaturationScratch,
) -> Result<MultiSaturation, PdsError> {
    let k = queries.len();
    if k == 0 || k > CriterionSet::MAX_MEMBERS {
        return Err(PdsError::BadBatchWidth { members: k });
    }
    let mut query_transitions = 0usize;
    for query in queries {
        validate_query(idx, query, dir)?;
        query_transitions += query.transition_count();
    }

    // The union state space: shared control states, then each member's
    // fresh states in member order. `offsets[i] + (s - controls_i)` maps
    // member i's fresh state s into the union.
    let n_controls = idx.control_count();
    let mut union = PAutomaton::new(n_controls);
    let mut offsets = Vec::with_capacity(k);
    let mut member_finals = Vec::with_capacity(k);
    for query in queries {
        let controls = query.control_count();
        let offset = union.state_count() as u32;
        offsets.push(offset);
        for _ in controls..query.state_count() as u32 {
            union.add_state();
        }
        let remap = |s: PState| {
            if s.0 < n_controls {
                s
            } else {
                PState(offset + (s.0 - controls))
            }
        };
        member_finals.push(query.finals().iter().map(|&f| remap(f)).collect::<Vec<_>>());
    }

    match dir {
        Direction::Backward => Ok(backward_multi(
            idx,
            queries,
            union,
            offsets,
            member_finals,
            query_transitions,
            scratch,
        )),
        Direction::Forward => Ok(forward_multi(
            idx,
            queries,
            union,
            offsets,
            member_finals,
            query_transitions,
            scratch,
        )),
    }
}

/// Adds a masked transition (encoded label): the row/adjacency update plus
/// the mask OR; re-queues on mask growth, which is what propagates
/// late-arriving membership through already-fired rules.
fn add_masked(
    rows: &mut crate::scratch::RowTable,
    out: &mut crate::arena::BumpLists<(u32, u32)>,
    worklist: &mut Vec<(u32, u32, u32)>,
    masks: &mut crate::scratch::MaskTable,
    (from, label, to): (u32, u32, u32),
    mask: u64,
) {
    debug_assert!(
        mask != 0,
        "masked derivations must be filtered by the caller"
    );
    if rows.insert(from, label, to) {
        out.push(from, (label, to));
    }
    if masks.or(from, label, to, mask) {
        worklist.push((from, label, to));
    }
}

/// Materializes a finished multi run: the union automaton plus every
/// inferred transition and its mask, in deterministic (state-major,
/// insertion) order. Seeds flowed through [`add_masked`], so `out` already
/// contains the query transitions.
fn materialize_multi(
    mut aut: PAutomaton,
    out: &crate::arena::BumpLists<(u32, u32)>,
    masks: &crate::scratch::MaskTable,
    phase1_states: usize,
) -> (PAutomaton, FxHashMap<(u32, u32, u32), u64>) {
    for _ in 0..phase1_states {
        aut.add_state();
    }
    let mut mask_map = FxHashMap::default();
    mask_map.reserve(masks.len());
    for state in 0..out.n_lists() as u32 {
        for (label, to) in out.iter(state) {
            let l = if label == 0 {
                None
            } else {
                Some(Symbol(label - 1))
            };
            aut.add_transition(PState(state), l, PState(to));
            mask_map.insert((state, label, to), masks.get(state, label, to));
        }
    }
    (aut, mask_map)
}

/// The multi-criterion `pre*` engine on a prebuilt union.
fn backward_multi(
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    union: PAutomaton,
    offsets: Vec<u32>,
    member_finals: Vec<Vec<PState>>,
    query_transitions: usize,
    scratch: &mut SaturationScratch,
) -> MultiSaturation {
    let k = queries.len();
    let n_controls = idx.control_count();
    let n_states = union.state_count() as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        masks,
        pending_multi,
        tmp_masked,
        tmp_waiters,
        ..
    } = scratch;

    // Seeds: each member's query transitions under its singleton mask,
    // then the pop rules under the full mask (they fire unconditionally
    // for every member).
    let full = CriterionSet::all(k).0;
    for (i, query) in queries.iter().enumerate() {
        let offset = offsets[i];
        let controls = query.control_count();
        let mask = CriterionSet::singleton(i).0;
        for (f, l, t) in query.transitions() {
            let sym = l.expect("ε-freedom checked above");
            let remap = |s: PState| {
                if s.0 < n_controls {
                    s.0
                } else {
                    offset + (s.0 - controls)
                }
            };
            add_masked(
                rows,
                out,
                worklist,
                masks,
                (remap(f), sym.0 + 1, remap(t)),
                mask,
            );
        }
    }
    let mut rule_applications = idx.pops().len();
    for &(p, gamma, p2) in idx.pops() {
        add_masked(rows, out, worklist, masks, (p.0, gamma.0 + 1, p2.0), full);
    }

    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        let sym = Symbol(label - 1);
        // Process under the transition's *current* mask: growth after this
        // pop re-queues it.
        let t_mask = masks.get(f, label, t);
        if f < n_controls {
            // Internal rules propagate the premise's mask unchanged.
            for m in idx.internal_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                rule_applications += 1;
                add_masked(
                    rows,
                    out,
                    worklist,
                    masks,
                    (m.from_loc.0, m.from_sym.0 + 1, t),
                    t_mask,
                );
            }
            // Push rules need two hops; the derived transition belongs to
            // exactly the members both hops belong to.
            for m in idx.push_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                debug_assert!(m.below.0 < u32::MAX);
                let below = m.below.0 + 1;
                tmp_masked.clear();
                tmp_masked.extend(
                    rows.targets(t, below)
                        .iter()
                        .map(|&q2| (q2, masks.get(t, below, q2))),
                );
                for &(q2, hop2_mask) in tmp_masked.iter() {
                    rule_applications += 1;
                    let mask = t_mask & hop2_mask;
                    if mask != 0 {
                        add_masked(
                            rows,
                            out,
                            worklist,
                            masks,
                            (m.from_loc.0, m.from_sym.0 + 1, q2),
                            mask,
                        );
                    }
                }
                pending_multi.push(t, below, (m.from_loc.0, m.from_sym.0, f, label));
            }
        }
        // Complete earlier partial matches waiting on (f, sym): intersect
        // with the first hop's current mask, looked up by its identity.
        tmp_waiters.clear();
        tmp_waiters.extend_from_slice(pending_multi.waiters(f, label));
        for &(p, gamma, hop1_from, hop1_label) in tmp_waiters.iter() {
            rule_applications += 1;
            let hop1_mask = masks.get(hop1_from, hop1_label, f);
            let mask = hop1_mask & t_mask;
            if mask != 0 {
                add_masked(rows, out, worklist, masks, (p, gamma + 1, t), mask);
            }
        }
    }

    let (aut, mask_map) = materialize_multi(union, out, masks, 0);
    let transitions = aut.transition_count();
    let stats = SaturationStats {
        transitions,
        query_transitions,
        phase1_states: 0,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + pending_multi.len() * 48
            + masks.len() * 24
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    MultiSaturation {
        automaton: aut,
        member_finals,
        masks: mask_map,
        stats,
    }
}

/// The multi-criterion `post*` engine on a prebuilt union.
///
/// Phase-I states are shared across members and appended after every
/// member's fresh states — their numbering (by push pair) is identical in
/// each member's solo run, so bit `i` on a Phase-I transition means exactly
/// "member `i`'s solo run derived this transition on *its* Phase-I state
/// for the same pair". Pop rules emit ε (label 0) transitions carrying the
/// premise mask; ε-combinations intersect the ε premise's mask with the
/// labeled premise's. Unlike the solo engine, a transition re-pops whenever
/// its mask grows, so ε registration must dedup.
fn forward_multi(
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    union: PAutomaton,
    _offsets: Vec<u32>,
    member_finals: Vec<Vec<PState>>,
    query_transitions: usize,
    scratch: &mut SaturationScratch,
) -> MultiSaturation {
    let n_controls = idx.control_count();
    let n_union_states = union.state_count() as u32;
    let phase1_states = idx.push_pairs().len();
    let n_states = n_union_states + phase1_states as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        eps_into,
        masks,
        tmp_pairs,
        ..
    } = scratch;

    // Seeds: each member's query transitions under its singleton mask.
    // (post* has no unconditional seeds — pop rules fire during the loop.)
    for (i, query) in queries.iter().enumerate() {
        let offset = _offsets[i];
        let controls = query.control_count();
        let mask = CriterionSet::singleton(i).0;
        for (f, l, t) in query.transitions() {
            let sym = l.expect("ε-freedom checked above");
            let remap = |s: PState| {
                if s.0 < n_controls {
                    s.0
                } else {
                    offset + (s.0 - controls)
                }
            };
            add_masked(
                rows,
                out,
                worklist,
                masks,
                (remap(f), sym.0 + 1, remap(t)),
                mask,
            );
        }
    }

    let mut rule_applications = 0usize;
    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        let t_mask = masks.get(f, label, t);
        if label != 0 {
            let sym = Symbol(label - 1);
            // Rules fire on labeled transitions out of control states,
            // propagating the premise's mask.
            if f < n_controls {
                for r in idx.rules_for_lhs(sym) {
                    if r.from_loc.0 != f {
                        continue;
                    }
                    rule_applications += 1;
                    match r.rhs {
                        Rhs::Pop => {
                            add_masked(rows, out, worklist, masks, (r.to_loc.0, 0, t), t_mask)
                        }
                        Rhs::Internal(g2) => add_masked(
                            rows,
                            out,
                            worklist,
                            masks,
                            (r.to_loc.0, g2.0 + 1, t),
                            t_mask,
                        ),
                        Rhs::Push(g1, g2) => {
                            let mid = n_union_states + r.push_pair;
                            add_masked(
                                rows,
                                out,
                                worklist,
                                masks,
                                (r.to_loc.0, g1.0 + 1, mid),
                                t_mask,
                            );
                            add_masked(rows, out, worklist, masks, (mid, g2.0 + 1, t), t_mask);
                        }
                    }
                }
            }
            // ε-combination: q' –ε→ f plus f –sym→ t gives q' –sym→ t for
            // the members carrying *both* premises. `add_masked` never
            // touches `eps_into`, so the row is iterated in place; the ε
            // premise's mask is read fresh per waiter (it may have grown
            // since registration).
            for q2 in eps_into.iter(f) {
                rule_applications += 1;
                let mask = masks.get(q2, 0, f) & t_mask;
                if mask != 0 {
                    add_masked(rows, out, worklist, masks, (q2, label, t), mask);
                }
            }
        } else {
            // f –ε→ t: combine with all labeled t –sym→ u. Mask growth
            // re-pops transitions, so registration dedups.
            if !eps_into.contains(t, f) {
                eps_into.push(t, f);
            }
            tmp_pairs.clear();
            tmp_pairs.extend(out.iter(t).filter(|&(l2, _)| l2 != 0));
            for &(l2, u) in tmp_pairs.iter() {
                rule_applications += 1;
                let mask = t_mask & masks.get(t, l2, u);
                if mask != 0 {
                    add_masked(rows, out, worklist, masks, (f, l2, u), mask);
                }
            }
        }
    }

    let (aut, mask_map) = materialize_multi(union, out, masks, phase1_states);
    let transitions = aut.transition_count();
    let stats = SaturationStats {
        transitions,
        query_transitions,
        phase1_states,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + eps_into.live_bytes()
            + masks.len() * 24
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    MultiSaturation {
        automaton: aut,
        member_finals,
        masks: mask_map,
        stats,
    }
}
