//! The `Prestar` saturation procedure (Defn. 3.6; Esparza et al. 2000).
//!
//! Given PDS `P` and P-automaton `A` accepting configuration set `C`, builds
//! an automaton accepting `pre*(C)` by adding transitions until saturation:
//!
//! ```text
//! ⟨p, γ⟩ ↪ ⟨p', w⟩ ∈ Δ     p' –w→* q in A_pre*
//! ─────────────────────────────────────────────
//!              p –γ→ q in A_pre*
//! ```
//!
//! The implementation is the standard worklist algorithm with partial-match
//! caching for push rules, running in `O(|Q|² · |Δ|)` time — but on dense
//! structures: rules are matched through a prebuilt [`RuleIndex`] (two
//! array reads per lookup, shared across every query over one PDS), the
//! growing transition relation lives in bitset-deduped per-`(state, symbol)`
//! rows inside a reusable [`SaturationScratch`], and `pre*` never adds
//! automaton states, so the whole run works on `u32` ids below a fixed
//! bound. Saturation is confluent — the result is the unique least fixpoint
//! over the query's state set — so none of this changes the answer, only
//! how fast it arrives.

use crate::automaton::{PAutomaton, PState};
use crate::index::RuleIndex;
use crate::scratch::{CriterionSet, SaturationScratch};
use crate::system::Pds;
use crate::PdsError;
use specslice_fsa::{FxHashMap, Symbol};

/// Statistics from a [`prestar`] run (sizes feed the Fig. 22 memory
/// accounting; the counters feed the query benchmark's deterministic
/// drift gate).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrestarStats {
    /// Transitions in the saturated automaton.
    pub transitions: usize,
    /// Transitions of the input query automaton.
    pub query_transitions: usize,
    /// Approximate peak bytes retained by the saturation data structures.
    pub peak_bytes: usize,
    /// Saturation-rule firings: every time a PDS rule matched transitions
    /// and produced a candidate transition (new or duplicate). A pure
    /// function of the PDS + query for a given engine build — identical on
    /// every machine and at every thread count, which is what lets the
    /// query benchmark gate on it.
    pub rule_applications: usize,
    /// Deepest the worklist ever got (measured at the top of each
    /// iteration).
    pub peak_worklist: usize,
}

/// Computes an automaton for `pre*(L(query))`.
///
/// One-shot convenience: indexes the rules and allocates scratch for this
/// single call. Multi-query clients index once ([`RuleIndex::new`]) and
/// reuse a per-thread [`SaturationScratch`] via
/// [`prestar_indexed_with_stats`].
///
/// The query automaton must not have ε-transitions (queries built by
/// `specslice` never do).
///
/// # Errors
///
/// [`PdsError::EpsilonInQuery`] if an ε-transition survives into saturation,
/// [`PdsError::MissingControls`] if `query` has fewer control states than
/// `pds` has control locations. Both indicate a malformed query and are
/// returned (not panicked), so batch workers stay alive.
pub fn prestar(pds: &Pds, query: &PAutomaton) -> Result<PAutomaton, PdsError> {
    prestar_with_stats(pds, query).map(|(aut, _)| aut)
}

/// [`prestar`] plus run statistics.
pub fn prestar_with_stats(
    pds: &Pds,
    query: &PAutomaton,
) -> Result<(PAutomaton, PrestarStats), PdsError> {
    let idx = RuleIndex::new(pds);
    prestar_indexed_with_stats(&idx, query, &mut SaturationScratch::default())
}

/// [`prestar_with_stats`] against a prebuilt rule index and caller-owned
/// scratch — the session hot path.
pub fn prestar_indexed_with_stats(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> Result<(PAutomaton, PrestarStats), PdsError> {
    if query.control_count() < idx.control_count() {
        return Err(PdsError::MissingControls {
            query: query.control_count(),
            pds: idx.control_count(),
        });
    }
    let epsilon_count = query.transitions().filter(|(_, l, _)| l.is_none()).count();
    if epsilon_count > 0 {
        return Err(PdsError::EpsilonInQuery {
            count: epsilon_count,
        });
    }

    let n_states = query.state_count() as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        pending,
        tmp,
        tmp_pairs,
        ..
    } = scratch;

    // Labels are encoded `γ + 1` (0 would be ε; pre* transitions are all
    // labeled). A transition enters the worklist exactly once: when its
    // target first enters its `(state, symbol)` row.
    fn add(
        rows: &mut crate::scratch::RowTable,
        out: &mut [Vec<(u32, u32)>],
        worklist: &mut Vec<(u32, u32, u32)>,
        from: u32,
        sym: Symbol,
        to: u32,
    ) {
        debug_assert!(sym.0 < u32::MAX, "symbol id overflows the ε encoding");
        let label = sym.0 + 1;
        if rows.insert(from, label, to) {
            out[from as usize].push((label, to));
            worklist.push((from, label, to));
        }
    }

    // Seeds: the query's transitions, then the pop rules (which fire
    // unconditionally: ⟨p, γ⟩ ↪ ⟨p', ε⟩ gives p –γ→ p').
    for (f, l, t) in query.transitions() {
        let sym = l.expect("ε-freedom checked above");
        add(rows, out, worklist, f.0, sym, t.0);
    }
    let mut rule_applications = idx.pops().len();
    for &(p, gamma, p2) in idx.pops() {
        add(rows, out, worklist, p.0, gamma, p2.0);
    }

    let n_controls = idx.control_count();
    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        let sym = Symbol(label - 1);
        // Rules match transitions out of control states only — states
        // `0..n_controls` coincide with control locations, so one compare
        // skips the rule tables entirely for interior states.
        if f < n_controls {
            // Internal rules ⟨p,γ⟩ ↪ ⟨p',γ'⟩ with (p', γ') = (f, sym):
            for m in idx.internal_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                rule_applications += 1;
                add(rows, out, worklist, m.from_loc.0, m.from_sym, t);
            }
            // Push rules ⟨p,γ⟩ ↪ ⟨p',γ'γ''⟩ with (p', γ') = (f, sym): we
            // have the first hop p' –γ'→ t; need t –γ''→ q2 (now or later).
            for m in idx.push_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                debug_assert!(m.below.0 < u32::MAX);
                let below = m.below.0 + 1;
                tmp.clear();
                tmp.extend_from_slice(rows.targets(t, below));
                for &q2 in tmp.iter() {
                    rule_applications += 1;
                    add(rows, out, worklist, m.from_loc.0, m.from_sym, q2);
                }
                pending.push(t, below, (m.from_loc.0, m.from_sym.0));
            }
        }
        // Complete earlier partial matches waiting on (f, sym).
        tmp_pairs.clear();
        tmp_pairs.extend_from_slice(pending.waiters(f, label));
        for &(p, gamma) in tmp_pairs.iter() {
            rule_applications += 1;
            add(rows, out, worklist, p, Symbol(gamma), t);
        }
    }

    // Materialize the saturated automaton: the query plus every inferred
    // transition, in deterministic (state-major, insertion) order.
    let mut aut = query.clone();
    for (state, row) in out.iter().enumerate() {
        for &(label, to) in row {
            aut.add_transition(PState(state as u32), Some(Symbol(label - 1)), PState(to));
        }
    }

    // The structures only grow during saturation, so the peak is the final
    // footprint plus the deepest worklist.
    let transitions = aut.transition_count();
    let stats = PrestarStats {
        transitions,
        query_transitions: query.transition_count(),
        peak_bytes: transitions * 36
            + rows.len() * 48
            + pending.len() * 48
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    Ok((aut, stats))
}

/// The result of one multi-criterion saturation
/// ([`prestar_multi_indexed_with_stats`]): the saturation of the *union*
/// of the member queries, with every transition labeled by the set of
/// members whose solo `pre*` would have derived it.
#[derive(Debug)]
pub struct MultiPrestar {
    /// The saturated union automaton. Its states are the shared control
    /// states followed by each member's fresh states in member order.
    pub automaton: PAutomaton,
    /// Member `i`'s final states, remapped into the union state space.
    pub member_finals: Vec<Vec<PState>>,
    /// Per-transition criterion masks, keyed `(from, symbol, to)`.
    masks: FxHashMap<(u32, u32, u32), u64>,
    /// Statistics of the single shared saturation.
    pub stats: PrestarStats,
}

impl MultiPrestar {
    /// The members whose solo saturation contains `from –sym→ to`.
    pub fn mask(&self, from: PState, sym: Symbol, to: PState) -> CriterionSet {
        CriterionSet(self.masks.get(&(from.0, sym.0, to.0)).copied().unwrap_or(0))
    }
}

/// One-pass `pre*` for up to [`CriterionSet::MAX_MEMBERS`] criterion
/// queries over the same PDS.
///
/// Builds the union of the member query automata (control states shared,
/// fresh states disjoint) and runs a single bitset-labeled saturation over
/// it: member `i`'s query transitions seed with mask `{i}`, pop-rule seeds
/// (which fire for every member) seed with the full mask, internal rules
/// propagate their premise's mask, and push rules intersect the masks of
/// their two hops — derivations whose intersection is empty are dropped.
/// Masks OR-accumulate; a transition re-enters the worklist whenever its
/// mask grows, so the run reaches the least fixpoint of the labeled
/// system.
///
/// Because member queries never share fresh states and their transitions
/// all leave control states (never enter them), a transition carries bit
/// `i` **iff** it appears in member `i`'s solo saturation — so projecting
/// the result through [`MultiPrestar::mask`] reproduces each solo
/// [`prestar`] automaton exactly, at the cost of ~one saturation for the
/// whole batch.
///
/// # Errors
///
/// [`PdsError::BadBatchWidth`] for empty or >64-member batches,
/// [`PdsError::MissingControls`] / [`PdsError::EpsilonInQuery`] as for
/// [`prestar`] (checked per member).
pub fn prestar_multi_indexed_with_stats(
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    scratch: &mut SaturationScratch,
) -> Result<MultiPrestar, PdsError> {
    let k = queries.len();
    if k == 0 || k > CriterionSet::MAX_MEMBERS {
        return Err(PdsError::BadBatchWidth { members: k });
    }
    let n_controls = idx.control_count();
    let mut query_transitions = 0usize;
    for query in queries {
        if query.control_count() < n_controls {
            return Err(PdsError::MissingControls {
                query: query.control_count(),
                pds: n_controls,
            });
        }
        let epsilon_count = query.transitions().filter(|(_, l, _)| l.is_none()).count();
        if epsilon_count > 0 {
            return Err(PdsError::EpsilonInQuery {
                count: epsilon_count,
            });
        }
        query_transitions += query.transition_count();
    }

    // The union state space: shared control states, then each member's
    // fresh states in member order. `offsets[i] + (s - controls_i)` maps
    // member i's fresh state s into the union.
    let mut union = PAutomaton::new(n_controls);
    let mut offsets = Vec::with_capacity(k);
    let mut member_finals = Vec::with_capacity(k);
    for query in queries {
        let controls = query.control_count();
        let offset = union.state_count() as u32;
        offsets.push(offset);
        for _ in controls..query.state_count() as u32 {
            union.add_state();
        }
        let remap = |s: PState| {
            if s.0 < n_controls {
                s
            } else {
                PState(offset + (s.0 - controls))
            }
        };
        member_finals.push(query.finals().iter().map(|&f| remap(f)).collect::<Vec<_>>());
    }

    let n_states = union.state_count() as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        masks,
        pending_multi,
        tmp_masked,
        tmp_waiters,
        ..
    } = scratch;

    // As in the solo engine, labels are encoded `γ + 1`. A transition
    // enters the worklist when its target first enters its row *or* when
    // its criterion mask grows — reprocessing with the larger mask is what
    // propagates late-arriving membership through already-fired rules.
    fn add(
        rows: &mut crate::scratch::RowTable,
        out: &mut [Vec<(u32, u32)>],
        worklist: &mut Vec<(u32, u32, u32)>,
        masks: &mut crate::scratch::MaskTable,
        (from, sym, to): (u32, Symbol, u32),
        mask: u64,
    ) {
        debug_assert!(
            mask != 0,
            "masked derivations must be filtered by the caller"
        );
        debug_assert!(sym.0 < u32::MAX, "symbol id overflows the ε encoding");
        let label = sym.0 + 1;
        if rows.insert(from, label, to) {
            out[from as usize].push((label, to));
        }
        if masks.or(from, label, to, mask) {
            worklist.push((from, label, to));
        }
    }

    // Seeds: each member's query transitions under its singleton mask,
    // then the pop rules under the full mask (they fire unconditionally
    // for every member).
    let full = CriterionSet::all(k).0;
    for (i, query) in queries.iter().enumerate() {
        let offset = offsets[i];
        let controls = query.control_count();
        let mask = CriterionSet::singleton(i).0;
        for (f, l, t) in query.transitions() {
            let sym = l.expect("ε-freedom checked above");
            let remap = |s: PState| {
                if s.0 < n_controls {
                    s.0
                } else {
                    offset + (s.0 - controls)
                }
            };
            add(rows, out, worklist, masks, (remap(f), sym, remap(t)), mask);
        }
    }
    let mut rule_applications = idx.pops().len();
    for &(p, gamma, p2) in idx.pops() {
        add(rows, out, worklist, masks, (p.0, gamma, p2.0), full);
    }

    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        let sym = Symbol(label - 1);
        // Process under the transition's *current* mask: growth after this
        // pop re-queues it.
        let t_mask = masks.get(f, label, t);
        if f < n_controls {
            // Internal rules propagate the premise's mask unchanged.
            for m in idx.internal_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                rule_applications += 1;
                add(
                    rows,
                    out,
                    worklist,
                    masks,
                    (m.from_loc.0, m.from_sym, t),
                    t_mask,
                );
            }
            // Push rules need two hops; the derived transition belongs to
            // exactly the members both hops belong to.
            for m in idx.push_by_rhs(sym) {
                if m.to_loc.0 != f {
                    continue;
                }
                debug_assert!(m.below.0 < u32::MAX);
                let below = m.below.0 + 1;
                tmp_masked.clear();
                tmp_masked.extend(
                    rows.targets(t, below)
                        .iter()
                        .map(|&q2| (q2, masks.get(t, below, q2))),
                );
                for &(q2, hop2_mask) in tmp_masked.iter() {
                    rule_applications += 1;
                    let mask = t_mask & hop2_mask;
                    if mask != 0 {
                        add(
                            rows,
                            out,
                            worklist,
                            masks,
                            (m.from_loc.0, m.from_sym, q2),
                            mask,
                        );
                    }
                }
                pending_multi.push(t, below, (m.from_loc.0, m.from_sym.0, f, label));
            }
        }
        // Complete earlier partial matches waiting on (f, sym): intersect
        // with the first hop's current mask, looked up by its identity.
        tmp_waiters.clear();
        tmp_waiters.extend_from_slice(pending_multi.waiters(f, label));
        for &(p, gamma, hop1_from, hop1_label) in tmp_waiters.iter() {
            rule_applications += 1;
            let hop1_mask = masks.get(hop1_from, hop1_label, f);
            let mask = hop1_mask & t_mask;
            if mask != 0 {
                add(rows, out, worklist, masks, (p, Symbol(gamma), t), mask);
            }
        }
    }

    // Materialize the saturated union and its mask map in deterministic
    // (state-major, insertion) order. Seeds flowed through `add`, so `out`
    // already contains the query transitions.
    let mut aut = union;
    let mut mask_map = FxHashMap::default();
    for (state, row) in out.iter().enumerate() {
        for &(label, to) in row {
            aut.add_transition(PState(state as u32), Some(Symbol(label - 1)), PState(to));
            mask_map.insert(
                (state as u32, label - 1, to),
                masks.get(state as u32, label, to),
            );
        }
    }

    let transitions = aut.transition_count();
    let stats = PrestarStats {
        transitions,
        query_transitions,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + pending_multi.len() * 48
            + masks.len() * 24
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    Ok(MultiPrestar {
        automaton: aut,
        member_finals,
        masks: mask_map,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ControlLoc;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// A query with an ε-transition must be rejected with a structured
    /// error, not a panic (this used to crash batch worker threads).
    #[test]
    fn epsilon_query_is_a_structured_error() {
        let p = ControlLoc(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, sym(0), p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), None, f);
        query.set_final(f);
        let err = prestar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
        assert!(err.to_string().contains("ε-free"), "{err}");
    }

    /// A query lacking control states is likewise a structured error.
    #[test]
    fn missing_controls_is_a_structured_error() {
        let pds = Pds::new(3);
        let query = PAutomaton::new(1);
        let err = prestar_with_stats(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::MissingControls { query: 1, pds: 3 });
    }

    /// pre* on the "unbounded pop" PDS: rules ⟨p,a⟩↪⟨p,ε⟩;
    /// pre*{(p,ε)} = (p, a*).
    #[test]
    fn pop_star() {
        let p = ControlLoc(0);
        let a = sym(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, a, p);
        let mut query = PAutomaton::new(1);
        query.set_final(query.control_state(p));
        let res = prestar(&pds, &query).unwrap();
        for n in 0..5 {
            assert!(res.accepts(p, &vec![a; n]), "a^{n}");
        }
        assert!(!res.accepts(p, &[sym(1)]));
    }

    /// Internal chain: ⟨p,a⟩↪⟨p,b⟩, ⟨p,b⟩↪⟨p,c⟩; pre*{(p,c)} ⊇ (p,a),(p,b).
    #[test]
    fn internal_chain() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_internal(p, a, p, b);
        pds.add_internal(p, b, p, c);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Push matching: ⟨p,a⟩↪⟨p, b c⟩ and ⟨p,b⟩↪⟨p,ε⟩.
    /// Then (p, a) ⇒ (p, b c) ⇒ (p, c), so (p,a) ∈ pre*{(p, c)}.
    #[test]
    fn push_then_pop() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b, c]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[b]));
    }

    /// The recursion-shaped language of §2.3: rules produce contexts
    /// (C C)* at a vertex. PDS: ⟨p,r⟩↪⟨p,r C⟩ models "r depends on r at
    /// call-site C deeper"; slicing from (p, r) with even unwinding.
    #[test]
    fn recursive_context_language() {
        let p = ControlLoc(0);
        let r = sym(0);
        let s = sym(1);
        let c = sym(10);
        let d = sym(11);
        // s at context ε depends on r two frames down: ⟨p,s⟩↪⟨p, r C⟩ then
        // ⟨p,r⟩↪⟨p, s D⟩ — alternating pushes.
        let mut pds = Pds::new(1);
        pds.add_push(p, s, p, r, c);
        pds.add_push(p, r, p, s, d);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(r), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        // (p, r) is the criterion itself.
        assert!(res.accepts(p, &[r]));
        // (p, s) ⇒ (p, r C): reaches criterion configurations only if the
        // stack below matches; (s) alone: (p, s) ⇒ (p, r C) ≠ (p, r)… but
        // pre* is about reaching *some* accepted configuration, and only
        // (p, r) with empty rest is accepted: so (p, s) is NOT in pre*.
        assert!(!res.accepts(p, &[s]));
        // However (p, r) itself and nothing deeper:
        assert!(!res.accepts(p, &[r, c]));
    }

    /// Cross-check against concrete exploration on a small random-ish PDS:
    /// every configuration the symbolic engine claims must concretely reach
    /// an accepted configuration, and vice versa for enumerable ones.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Criterion: {(q, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(q), Some(a), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();

        // Concrete bounded search.
        let reaches = |loc: ControlLoc, stack: &[Symbol]| -> bool {
            let mut seen = std::collections::HashSet::new();
            let mut work = vec![(loc, stack.to_vec())];
            while let Some((l, st)) = work.pop() {
                if l == q && st == vec![a] {
                    return true;
                }
                if st.len() > 6 || !seen.insert((l, st.clone())) {
                    continue;
                }
                work.extend(pds.step(l, &st));
            }
            false
        };
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, b],
            ] {
                assert_eq!(
                    res.accepts(loc, &stack),
                    reaches(loc, &stack),
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }

    /// Builds member `i`'s projection of a multi-criterion run: same state
    /// space, only the transitions whose mask contains `i`, member finals.
    fn project_member(multi: &MultiPrestar, i: usize) -> PAutomaton {
        let n_controls = multi.automaton.control_count();
        let mut proj = PAutomaton::new(n_controls);
        for _ in n_controls..multi.automaton.state_count() as u32 {
            proj.add_state();
        }
        for (f, l, t) in multi.automaton.transitions() {
            let sym = l.expect("pre* output is ε-free");
            if multi.mask(f, sym, t).contains(i) {
                proj.add_transition(f, Some(sym), t);
            }
        }
        for &f in &multi.member_finals[i] {
            proj.set_final(f);
        }
        proj
    }

    /// A word pool covering the alphabet up to length 3.
    fn words(alphabet: &[Symbol]) -> Vec<Vec<Symbol>> {
        let mut out = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &out {
                for &s in alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The masked union saturation, projected per member, accepts exactly
    /// the language of each member's solo saturation — on a PDS exercising
    /// pop, internal, and push rules across two control locations.
    #[test]
    fn multi_projections_match_solo_runs() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_push(p, b, q, c, b);
        pds.add_internal(p, b, q, a);
        pds.add_internal(q, c, p, a);
        pds.add_pop(q, a, p);
        pds.add_pop(p, c, q);
        let idx = RuleIndex::new(&pds);

        // Four member queries of different shapes, including a chain and a
        // control-state final.
        let mut queries = Vec::new();
        for target in [(p, a), (q, a), (q, c)] {
            let mut query = PAutomaton::new(2);
            let f = query.add_state();
            query.add_transition(query.control_state(target.0), Some(target.1), f);
            query.set_final(f);
            queries.push(query);
        }
        let mut chain = PAutomaton::new(2);
        let m1 = chain.add_state();
        let m2 = chain.add_state();
        chain.add_transition(chain.control_state(p), Some(b), m1);
        chain.add_transition(m1, Some(a), m2);
        chain.set_final(m2);
        chain.set_final(chain.control_state(q));
        queries.push(chain);

        let refs: Vec<&PAutomaton> = queries.iter().collect();
        let mut scratch = SaturationScratch::default();
        let multi = prestar_multi_indexed_with_stats(&idx, &refs, &mut scratch).unwrap();
        assert!(multi.stats.transitions > 0);
        assert_eq!(multi.member_finals.len(), refs.len());

        for (i, query) in queries.iter().enumerate() {
            let solo = prestar(&pds, query).unwrap();
            let proj = project_member(&multi, i);
            for loc in [p, q] {
                for word in words(&[a, b, c]) {
                    assert_eq!(
                        solo.accepts(loc, &word),
                        proj.accepts(loc, &word),
                        "member {i}, ({loc:?}, {word:?})"
                    );
                }
            }
        }
    }

    /// A singleton batch carries the full mask on every transition, and the
    /// projection is the solo saturation itself.
    #[test]
    fn singleton_batch_mask_is_total() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let multi = prestar_multi_indexed_with_stats(&idx, &[&query], &mut scratch).unwrap();
        let solo = prestar(&pds, &query).unwrap();
        assert_eq!(multi.automaton.transition_count(), solo.transition_count());
        for (f, l, t) in multi.automaton.transitions() {
            assert_eq!(multi.mask(f, l.unwrap(), t), CriterionSet::singleton(0));
        }
    }

    /// Bad batch widths and malformed members surface as structured errors.
    #[test]
    fn multi_validates_inputs() {
        let pds = Pds::new(1);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let err = prestar_multi_indexed_with_stats(&idx, &[], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::BadBatchWidth { members: 0 });
        assert!(err.to_string().contains("1..=64"), "{err}");

        let query = PAutomaton::new(1);
        let too_many: Vec<&PAutomaton> = (0..65).map(|_| &query).collect();
        let err = prestar_multi_indexed_with_stats(&idx, &too_many, &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::BadBatchWidth { members: 65 });

        let mut eps = PAutomaton::new(1);
        let f = eps.add_state();
        eps.add_transition(eps.control_state(ControlLoc(0)), None, f);
        eps.set_final(f);
        let err =
            prestar_multi_indexed_with_stats(&idx, &[&query, &eps], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
    }

    /// The indexed entry point with a reused scratch answers a sequence of
    /// different queries identically to the one-shot wrapper — the property
    /// the session hot path relies on.
    #[test]
    fn scratch_reuse_is_invisible() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        pds.add_internal(p, c, p, a);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        for target in [a, b, c, a, c] {
            let mut query = PAutomaton::new(1);
            let f = query.add_state();
            query.add_transition(query.control_state(p), Some(target), f);
            query.set_final(f);
            let (fresh, fresh_stats) = prestar_with_stats(&pds, &query).unwrap();
            let (reused, reused_stats) =
                prestar_indexed_with_stats(&idx, &query, &mut scratch).unwrap();
            for word in [
                vec![],
                vec![a],
                vec![b],
                vec![c],
                vec![a, c],
                vec![b, c],
                vec![c, c],
            ] {
                assert_eq!(
                    fresh.accepts(p, &word),
                    reused.accepts(p, &word),
                    "target {target:?}, word {word:?}"
                );
            }
            assert_eq!(fresh_stats.transitions, reused_stats.transitions);
            assert_eq!(
                fresh_stats.rule_applications,
                reused_stats.rule_applications
            );
        }
    }
}
