//! The `Prestar` saturation procedure (Defn. 3.6; Esparza et al. 2000).
//!
//! Given PDS `P` and P-automaton `A` accepting configuration set `C`, builds
//! an automaton accepting `pre*(C)` by adding transitions until saturation:
//!
//! ```text
//! ⟨p, γ⟩ ↪ ⟨p', w⟩ ∈ Δ     p' –w→* q in A_pre*
//! ─────────────────────────────────────────────
//!              p –γ→ q in A_pre*
//! ```
//!
//! The implementation is the standard worklist algorithm with partial-match
//! caching for push rules, running in `O(|Q|² · |Δ|)` time — but on dense
//! structures: rules are matched through a prebuilt [`RuleIndex`] (two
//! array reads per lookup, shared across every query over one PDS), the
//! growing transition relation lives in bitset-deduped per-`(state, symbol)`
//! rows inside a reusable [`SaturationScratch`], and `pre*` never adds
//! automaton states, so the whole run works on `u32` ids below a fixed
//! bound. Saturation is confluent — the result is the unique least fixpoint
//! over the query's state set — so none of this changes the answer, only
//! how fast it arrives.
//!
//! The engine itself lives in [`crate::saturate`], shared with
//! [`crate::poststar`][mod@crate::poststar]; this module pins [`Direction::Backward`].

use crate::automaton::PAutomaton;
use crate::index::RuleIndex;
use crate::saturate::{
    saturate_indexed_with_stats, saturate_multi_indexed_with_stats, Direction, MultiSaturation,
    SaturationStats,
};
use crate::scratch::SaturationScratch;
use crate::system::Pds;
use crate::PdsError;

/// Statistics from a [`prestar`] run (sizes feed the Fig. 22 memory
/// accounting; the counters feed the query benchmark's deterministic
/// drift gate). `phase1_states` is always 0 for `pre*`.
pub type PrestarStats = SaturationStats;

/// The result of one multi-criterion backward saturation
/// ([`prestar_multi_indexed_with_stats`]).
pub type MultiPrestar = MultiSaturation;

/// Computes an automaton for `pre*(L(query))`.
///
/// One-shot convenience: indexes the rules and allocates scratch for this
/// single call. Multi-query clients index once ([`RuleIndex::new`]) and
/// reuse a per-thread [`SaturationScratch`] via
/// [`prestar_indexed_with_stats`].
///
/// The query automaton must not have ε-transitions (queries built by
/// `specslice` never do).
///
/// # Errors
///
/// [`PdsError::EpsilonInQuery`] if an ε-transition survives into saturation,
/// [`PdsError::MissingControls`] if `query` has fewer control states than
/// `pds` has control locations. Both indicate a malformed query and are
/// returned (not panicked), so batch workers stay alive.
pub fn prestar(pds: &Pds, query: &PAutomaton) -> Result<PAutomaton, PdsError> {
    prestar_with_stats(pds, query).map(|(aut, _)| aut)
}

/// [`prestar`] plus run statistics.
pub fn prestar_with_stats(
    pds: &Pds,
    query: &PAutomaton,
) -> Result<(PAutomaton, PrestarStats), PdsError> {
    let idx = RuleIndex::new(pds);
    prestar_indexed_with_stats(&idx, query, &mut SaturationScratch::default())
}

/// [`prestar_with_stats`] against a prebuilt rule index and caller-owned
/// scratch — the session hot path.
pub fn prestar_indexed_with_stats(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> Result<(PAutomaton, PrestarStats), PdsError> {
    saturate_indexed_with_stats(Direction::Backward, idx, query, scratch)
}

/// One-pass `pre*` for up to [`crate::CriterionSet::MAX_MEMBERS`] criterion
/// queries over the same PDS — see
/// [`crate::saturate::saturate_multi_indexed_with_stats`] for the masked
/// union construction.
///
/// # Errors
///
/// [`PdsError::BadBatchWidth`] for empty or >64-member batches,
/// [`PdsError::MissingControls`] / [`PdsError::EpsilonInQuery`] as for
/// [`prestar`] (checked per member).
pub fn prestar_multi_indexed_with_stats(
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    scratch: &mut SaturationScratch,
) -> Result<MultiPrestar, PdsError> {
    saturate_multi_indexed_with_stats(Direction::Backward, idx, queries, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::CriterionSet;
    use crate::system::ControlLoc;
    use specslice_fsa::Symbol;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// A query with an ε-transition must be rejected with a structured
    /// error, not a panic (this used to crash batch worker threads).
    #[test]
    fn epsilon_query_is_a_structured_error() {
        let p = ControlLoc(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, sym(0), p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), None, f);
        query.set_final(f);
        let err = prestar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
        assert!(err.to_string().contains("ε-free"), "{err}");
    }

    /// A query lacking control states is likewise a structured error.
    #[test]
    fn missing_controls_is_a_structured_error() {
        let pds = Pds::new(3);
        let query = PAutomaton::new(1);
        let err = prestar_with_stats(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::MissingControls { query: 1, pds: 3 });
    }

    /// pre* on the "unbounded pop" PDS: rules ⟨p,a⟩↪⟨p,ε⟩;
    /// pre*{(p,ε)} = (p, a*).
    #[test]
    fn pop_star() {
        let p = ControlLoc(0);
        let a = sym(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, a, p);
        let mut query = PAutomaton::new(1);
        query.set_final(query.control_state(p));
        let res = prestar(&pds, &query).unwrap();
        for n in 0..5 {
            assert!(res.accepts(p, &vec![a; n]), "a^{n}");
        }
        assert!(!res.accepts(p, &[sym(1)]));
    }

    /// Internal chain: ⟨p,a⟩↪⟨p,b⟩, ⟨p,b⟩↪⟨p,c⟩; pre*{(p,c)} ⊇ (p,a),(p,b).
    #[test]
    fn internal_chain() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_internal(p, a, p, b);
        pds.add_internal(p, b, p, c);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Push matching: ⟨p,a⟩↪⟨p, b c⟩ and ⟨p,b⟩↪⟨p,ε⟩.
    /// Then (p, a) ⇒ (p, b c) ⇒ (p, c), so (p,a) ∈ pre*{(p, c)}.
    #[test]
    fn push_then_pop() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b, c]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[b]));
    }

    /// The recursion-shaped language of §2.3: rules produce contexts
    /// (C C)* at a vertex. PDS: ⟨p,r⟩↪⟨p,r C⟩ models "r depends on r at
    /// call-site C deeper"; slicing from (p, r) with even unwinding.
    #[test]
    fn recursive_context_language() {
        let p = ControlLoc(0);
        let r = sym(0);
        let s = sym(1);
        let c = sym(10);
        let d = sym(11);
        // s at context ε depends on r two frames down: ⟨p,s⟩↪⟨p, r C⟩ then
        // ⟨p,r⟩↪⟨p, s D⟩ — alternating pushes.
        let mut pds = Pds::new(1);
        pds.add_push(p, s, p, r, c);
        pds.add_push(p, r, p, s, d);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(r), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        // (p, r) is the criterion itself.
        assert!(res.accepts(p, &[r]));
        // (p, s) ⇒ (p, r C): reaches criterion configurations only if the
        // stack below matches; (s) alone: (p, s) ⇒ (p, r C) ≠ (p, r)… but
        // pre* is about reaching *some* accepted configuration, and only
        // (p, r) with empty rest is accepted: so (p, s) is NOT in pre*.
        assert!(!res.accepts(p, &[s]));
        // However (p, r) itself and nothing deeper:
        assert!(!res.accepts(p, &[r, c]));
    }

    /// Cross-check against concrete exploration on a small random-ish PDS:
    /// every configuration the symbolic engine claims must concretely reach
    /// an accepted configuration, and vice versa for enumerable ones.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Criterion: {(q, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(q), Some(a), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();

        // Concrete bounded search.
        let reaches = |loc: ControlLoc, stack: &[Symbol]| -> bool {
            let mut seen = std::collections::HashSet::new();
            let mut work = vec![(loc, stack.to_vec())];
            while let Some((l, st)) = work.pop() {
                if l == q && st == vec![a] {
                    return true;
                }
                if st.len() > 6 || !seen.insert((l, st.clone())) {
                    continue;
                }
                work.extend(pds.step(l, &st));
            }
            false
        };
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, b],
            ] {
                assert_eq!(
                    res.accepts(loc, &stack),
                    reaches(loc, &stack),
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }

    /// Builds member `i`'s projection of a multi-criterion run: same state
    /// space, only the transitions whose mask contains `i`, member finals.
    fn project_member(multi: &MultiPrestar, i: usize) -> PAutomaton {
        let n_controls = multi.automaton.control_count();
        let mut proj = PAutomaton::new(n_controls);
        for _ in n_controls..multi.automaton.state_count() as u32 {
            proj.add_state();
        }
        for (f, l, t) in multi.automaton.transitions() {
            let sym = l.expect("pre* output is ε-free");
            if multi.mask(f, sym, t).contains(i) {
                proj.add_transition(f, Some(sym), t);
            }
        }
        for &f in &multi.member_finals[i] {
            proj.set_final(f);
        }
        proj
    }

    /// A word pool covering the alphabet up to length 3.
    fn words(alphabet: &[Symbol]) -> Vec<Vec<Symbol>> {
        let mut out = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &out {
                for &s in alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The masked union saturation, projected per member, accepts exactly
    /// the language of each member's solo saturation — on a PDS exercising
    /// pop, internal, and push rules across two control locations.
    #[test]
    fn multi_projections_match_solo_runs() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_push(p, b, q, c, b);
        pds.add_internal(p, b, q, a);
        pds.add_internal(q, c, p, a);
        pds.add_pop(q, a, p);
        pds.add_pop(p, c, q);
        let idx = RuleIndex::new(&pds);

        // Four member queries of different shapes, including a chain and a
        // control-state final.
        let mut queries = Vec::new();
        for target in [(p, a), (q, a), (q, c)] {
            let mut query = PAutomaton::new(2);
            let f = query.add_state();
            query.add_transition(query.control_state(target.0), Some(target.1), f);
            query.set_final(f);
            queries.push(query);
        }
        let mut chain = PAutomaton::new(2);
        let m1 = chain.add_state();
        let m2 = chain.add_state();
        chain.add_transition(chain.control_state(p), Some(b), m1);
        chain.add_transition(m1, Some(a), m2);
        chain.set_final(m2);
        chain.set_final(chain.control_state(q));
        queries.push(chain);

        let refs: Vec<&PAutomaton> = queries.iter().collect();
        let mut scratch = SaturationScratch::default();
        let multi = prestar_multi_indexed_with_stats(&idx, &refs, &mut scratch).unwrap();
        assert!(multi.stats.transitions > 0);
        assert_eq!(multi.member_finals.len(), refs.len());

        for (i, query) in queries.iter().enumerate() {
            let solo = prestar(&pds, query).unwrap();
            let proj = project_member(&multi, i);
            for loc in [p, q] {
                for word in words(&[a, b, c]) {
                    assert_eq!(
                        solo.accepts(loc, &word),
                        proj.accepts(loc, &word),
                        "member {i}, ({loc:?}, {word:?})"
                    );
                }
            }
        }
    }

    /// A singleton batch carries the full mask on every transition, and the
    /// projection is the solo saturation itself.
    #[test]
    fn singleton_batch_mask_is_total() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let multi = prestar_multi_indexed_with_stats(&idx, &[&query], &mut scratch).unwrap();
        let solo = prestar(&pds, &query).unwrap();
        assert_eq!(multi.automaton.transition_count(), solo.transition_count());
        for (f, l, t) in multi.automaton.transitions() {
            assert_eq!(multi.mask(f, l.unwrap(), t), CriterionSet::singleton(0));
        }
    }

    /// Bad batch widths and malformed members surface as structured errors.
    #[test]
    fn multi_validates_inputs() {
        let pds = Pds::new(1);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let err = prestar_multi_indexed_with_stats(&idx, &[], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::BadBatchWidth { members: 0 });
        assert!(err.to_string().contains("1..=64"), "{err}");

        let query = PAutomaton::new(1);
        let too_many: Vec<&PAutomaton> = (0..65).map(|_| &query).collect();
        let err = prestar_multi_indexed_with_stats(&idx, &too_many, &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::BadBatchWidth { members: 65 });

        let mut eps = PAutomaton::new(1);
        let f = eps.add_state();
        eps.add_transition(eps.control_state(ControlLoc(0)), None, f);
        eps.set_final(f);
        let err =
            prestar_multi_indexed_with_stats(&idx, &[&query, &eps], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
    }

    /// The indexed entry point with a reused scratch answers a sequence of
    /// different queries identically to the one-shot wrapper — the property
    /// the session hot path relies on.
    #[test]
    fn scratch_reuse_is_invisible() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        pds.add_internal(p, c, p, a);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        for target in [a, b, c, a, c] {
            let mut query = PAutomaton::new(1);
            let f = query.add_state();
            query.add_transition(query.control_state(p), Some(target), f);
            query.set_final(f);
            let (fresh, fresh_stats) = prestar_with_stats(&pds, &query).unwrap();
            let (reused, reused_stats) =
                prestar_indexed_with_stats(&idx, &query, &mut scratch).unwrap();
            for word in [
                vec![],
                vec![a],
                vec![b],
                vec![c],
                vec![a, c],
                vec![b, c],
                vec![c, c],
            ] {
                assert_eq!(
                    fresh.accepts(p, &word),
                    reused.accepts(p, &word),
                    "target {target:?}, word {word:?}"
                );
            }
            assert_eq!(fresh_stats.transitions, reused_stats.transitions);
            assert_eq!(
                fresh_stats.rule_applications,
                reused_stats.rule_applications
            );
        }
    }
}
