//! The `Prestar` saturation procedure (Defn. 3.6; Esparza et al. 2000).
//!
//! Given PDS `P` and P-automaton `A` accepting configuration set `C`, builds
//! an automaton accepting `pre*(C)` by adding transitions until saturation:
//!
//! ```text
//! ⟨p, γ⟩ ↪ ⟨p', w⟩ ∈ Δ     p' –w→* q in A_pre*
//! ─────────────────────────────────────────────
//!              p –γ→ q in A_pre*
//! ```
//!
//! The implementation is the standard worklist algorithm with partial-match
//! caching for push rules, running in `O(|Q|² · |Δ|)` time.

use crate::automaton::{PAutomaton, PState};
use crate::system::{Pds, Rhs};
use crate::PdsError;
use specslice_fsa::Symbol;
use std::collections::HashMap;

/// Index of push rules keyed by the first RHS symbol's target pair.
type PushIndex = HashMap<(PState, Symbol), Vec<(PState, Symbol, Symbol)>>;

/// Statistics from a [`prestar`] run (peak sizes feed the Fig. 22 memory
/// accounting).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrestarStats {
    /// Transitions in the saturated automaton.
    pub transitions: usize,
    /// Transitions of the input query automaton.
    pub query_transitions: usize,
    /// Approximate peak bytes retained by the saturation data structures.
    pub peak_bytes: usize,
}

/// Computes an automaton for `pre*(L(query))`.
///
/// The query automaton must not have ε-transitions (queries built by
/// `specslice` never do).
///
/// # Errors
///
/// [`PdsError::EpsilonInQuery`] if an ε-transition survives into saturation,
/// [`PdsError::MissingControls`] if `query` has fewer control states than
/// `pds` has control locations. Both indicate a malformed query and are
/// returned (not panicked), so batch workers stay alive.
pub fn prestar(pds: &Pds, query: &PAutomaton) -> Result<PAutomaton, PdsError> {
    prestar_with_stats(pds, query).map(|(aut, _)| aut)
}

/// [`prestar`] plus run statistics.
pub fn prestar_with_stats(
    pds: &Pds,
    query: &PAutomaton,
) -> Result<(PAutomaton, PrestarStats), PdsError> {
    if query.control_count() < pds.control_count() {
        return Err(PdsError::MissingControls {
            query: query.control_count(),
            pds: pds.control_count(),
        });
    }
    let epsilon_count = query.transitions().filter(|(_, l, _)| l.is_none()).count();
    if epsilon_count > 0 {
        return Err(PdsError::EpsilonInQuery {
            count: epsilon_count,
        });
    }

    let mut aut = query.clone();
    // Worklist of transitions to process (all labeled — checked above).
    let mut worklist: Vec<(PState, Symbol, PState)> = aut
        .transitions()
        .filter_map(|(f, l, t)| l.map(|sym| (f, sym, t)))
        .collect();

    // Index of current transitions by (source, symbol) → targets, maintained
    // incrementally alongside `aut`.
    let mut by_src_sym: HashMap<(PState, Symbol), Vec<PState>> = HashMap::new();
    for &(f, s, t) in &worklist {
        by_src_sym.entry((f, s)).or_default().push(t);
    }

    // For push rules ⟨p,γ⟩ ↪ ⟨p',γ'γ''⟩ we must find paths p' –γ'→ q1 –γ''→ q2.
    // `pending[(q1, γ'')]` records (p, γ) pairs waiting for a q1 –γ''→ q2
    // transition to complete the match.
    let mut pending: HashMap<(PState, Symbol), Vec<(PState, Symbol)>> = HashMap::new();

    // Pop rules fire unconditionally: ⟨p,γ⟩ ↪ ⟨p',ε⟩ gives p –γ→ p'.
    let push_new = |aut: &mut PAutomaton,
                    worklist: &mut Vec<(PState, Symbol, PState)>,
                    by_src_sym: &mut HashMap<(PState, Symbol), Vec<PState>>,
                    from: PState,
                    sym: Symbol,
                    to: PState| {
        if aut.add_transition(from, Some(sym), to) {
            by_src_sym.entry((from, sym)).or_default().push(to);
            worklist.push((from, sym, to));
        }
    };

    for rule in pds.rules() {
        if rule.rhs == Rhs::Pop {
            let from = aut.control_state(rule.from_loc);
            let to = aut.control_state(rule.to_loc);
            push_new(
                &mut aut,
                &mut worklist,
                &mut by_src_sym,
                from,
                rule.from_sym,
                to,
            );
        }
    }

    // Index internal and push rules by (p', γ') for matching on transitions
    // out of control states.
    let mut internal_by_rhs: HashMap<(PState, Symbol), Vec<(PState, Symbol)>> = HashMap::new();
    let mut push_by_rhs: PushIndex = HashMap::new();
    for rule in pds.rules() {
        let p = aut.control_state(rule.from_loc);
        let p2 = aut.control_state(rule.to_loc);
        match rule.rhs {
            Rhs::Pop => {}
            Rhs::Internal(g2) => internal_by_rhs
                .entry((p2, g2))
                .or_default()
                .push((p, rule.from_sym)),
            Rhs::Push(g2, g3) => {
                push_by_rhs
                    .entry((p2, g2))
                    .or_default()
                    .push((p, rule.from_sym, g3))
            }
        }
    }

    let mut peak_bytes = 0usize;
    while let Some((f, sym, t)) = worklist.pop() {
        // Internal rules ⟨p,γ⟩ ↪ ⟨p',γ'⟩ with (p', γ') = (f, sym):
        if let Some(matches) = internal_by_rhs.get(&(f, sym)) {
            for &(p, gamma) in matches.clone().iter() {
                push_new(&mut aut, &mut worklist, &mut by_src_sym, p, gamma, t);
            }
        }
        // Push rules ⟨p,γ⟩ ↪ ⟨p',γ'γ''⟩ with (p', γ') = (f, sym): we have the
        // first hop p' –γ'→ t; need t –γ''→ q2 (now or later).
        if let Some(matches) = push_by_rhs.get(&(f, sym)) {
            for &(p, gamma, g3) in matches.clone().iter() {
                if let Some(q2s) = by_src_sym.get(&(t, g3)) {
                    for q2 in q2s.clone() {
                        push_new(&mut aut, &mut worklist, &mut by_src_sym, p, gamma, q2);
                    }
                }
                pending.entry((t, g3)).or_default().push((p, gamma));
            }
        }
        // Complete earlier partial matches waiting on (f, sym).
        if let Some(waiters) = pending.get(&(f, sym)) {
            for &(p, gamma) in waiters.clone().iter() {
                push_new(&mut aut, &mut worklist, &mut by_src_sym, p, gamma, t);
            }
        }
        peak_bytes = peak_bytes.max(
            aut.approx_bytes()
                + pending.len() * 48
                + by_src_sym.len() * 48
                + worklist.len() * std::mem::size_of::<(PState, Symbol, PState)>(),
        );
    }

    let stats = PrestarStats {
        transitions: aut.transition_count(),
        query_transitions: query.transition_count(),
        peak_bytes,
    };
    Ok((aut, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ControlLoc;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// A query with an ε-transition must be rejected with a structured
    /// error, not a panic (this used to crash batch worker threads).
    #[test]
    fn epsilon_query_is_a_structured_error() {
        let p = ControlLoc(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, sym(0), p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), None, f);
        query.set_final(f);
        let err = prestar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
        assert!(err.to_string().contains("ε-free"), "{err}");
    }

    /// A query lacking control states is likewise a structured error.
    #[test]
    fn missing_controls_is_a_structured_error() {
        let pds = Pds::new(3);
        let query = PAutomaton::new(1);
        let err = prestar_with_stats(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::MissingControls { query: 1, pds: 3 });
    }

    /// pre* on the "unbounded pop" PDS: rules ⟨p,a⟩↪⟨p,ε⟩;
    /// pre*{(p,ε)} = (p, a*).
    #[test]
    fn pop_star() {
        let p = ControlLoc(0);
        let a = sym(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, a, p);
        let mut query = PAutomaton::new(1);
        query.set_final(query.control_state(p));
        let res = prestar(&pds, &query).unwrap();
        for n in 0..5 {
            assert!(res.accepts(p, &vec![a; n]), "a^{n}");
        }
        assert!(!res.accepts(p, &[sym(1)]));
    }

    /// Internal chain: ⟨p,a⟩↪⟨p,b⟩, ⟨p,b⟩↪⟨p,c⟩; pre*{(p,c)} ⊇ (p,a),(p,b).
    #[test]
    fn internal_chain() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_internal(p, a, p, b);
        pds.add_internal(p, b, p, c);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Push matching: ⟨p,a⟩↪⟨p, b c⟩ and ⟨p,b⟩↪⟨p,ε⟩.
    /// Then (p, a) ⇒ (p, b c) ⇒ (p, c), so (p,a) ∈ pre*{(p, c)}.
    #[test]
    fn push_then_pop() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(c), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[b, c]));
        assert!(res.accepts(p, &[c]));
        assert!(!res.accepts(p, &[b]));
    }

    /// The recursion-shaped language of §2.3: rules produce contexts
    /// (C C)* at a vertex. PDS: ⟨p,r⟩↪⟨p,r C⟩ models "r depends on r at
    /// call-site C deeper"; slicing from (p, r) with even unwinding.
    #[test]
    fn recursive_context_language() {
        let p = ControlLoc(0);
        let r = sym(0);
        let s = sym(1);
        let c = sym(10);
        let d = sym(11);
        // s at context ε depends on r two frames down: ⟨p,s⟩↪⟨p, r C⟩ then
        // ⟨p,r⟩↪⟨p, s D⟩ — alternating pushes.
        let mut pds = Pds::new(1);
        pds.add_push(p, s, p, r, c);
        pds.add_push(p, r, p, s, d);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(r), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();
        // (p, r) is the criterion itself.
        assert!(res.accepts(p, &[r]));
        // (p, s) ⇒ (p, r C): reaches criterion configurations only if the
        // stack below matches; (s) alone: (p, s) ⇒ (p, r C) ≠ (p, r)… but
        // pre* is about reaching *some* accepted configuration, and only
        // (p, r) with empty rest is accepted: so (p, s) is NOT in pre*.
        assert!(!res.accepts(p, &[s]));
        // However (p, r) itself and nothing deeper:
        assert!(!res.accepts(p, &[r, c]));
    }

    /// Cross-check against concrete exploration on a small random-ish PDS:
    /// every configuration the symbolic engine claims must concretely reach
    /// an accepted configuration, and vice versa for enumerable ones.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Criterion: {(q, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(q), Some(a), f);
        query.set_final(f);
        let res = prestar(&pds, &query).unwrap();

        // Concrete bounded search.
        let reaches = |loc: ControlLoc, stack: &[Symbol]| -> bool {
            let mut seen = std::collections::HashSet::new();
            let mut work = vec![(loc, stack.to_vec())];
            while let Some((l, st)) = work.pop() {
                if l == q && st == vec![a] {
                    return true;
                }
                if st.len() > 6 || !seen.insert((l, st.clone())) {
                    continue;
                }
                work.extend(pds.step(l, &st));
            }
            false
        };
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, b],
            ] {
                assert_eq!(
                    res.accepts(loc, &stack),
                    reaches(loc, &stack),
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }
}
