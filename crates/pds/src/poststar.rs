//! The `Poststar` saturation procedure (Defn. 3.7; Schwoon 2002, Alg. 2).
//!
//! Computes an automaton for `post*(C)`: all configurations reachable from
//! `C` under the PDS transition relation. Used by Alg. 2 (feature removal)
//! for forward stack-configuration slicing, and to build the language of all
//! configurations reachable from `⟨entry_main, ε⟩` (valid calling contexts).

use crate::automaton::{PAutomaton, PState};
use crate::system::{Pds, Rhs};
use specslice_fsa::Symbol;
use std::collections::HashMap;

/// Statistics from a [`poststar`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoststarStats {
    /// Transitions in the saturated automaton (including ε).
    pub transitions: usize,
    /// States added in Phase I (one per distinct push-rule target pair).
    pub phase1_states: usize,
    /// Approximate peak bytes retained during saturation.
    pub peak_bytes: usize,
}

/// Computes an automaton for `post*(L(query))`.
///
/// The result may contain ε-transitions; acceptance accounts for them.
///
/// # Panics
///
/// Panics if `query` has ε-transitions, transitions *into* control states,
/// or fewer control states than the PDS (standard P-automaton preconditions).
pub fn poststar(pds: &Pds, query: &PAutomaton) -> PAutomaton {
    poststar_with_stats(pds, query).0
}

/// [`poststar`] plus run statistics.
pub fn poststar_with_stats(pds: &Pds, query: &PAutomaton) -> (PAutomaton, PoststarStats) {
    assert!(
        query.control_count() >= pds.control_count(),
        "query automaton lacks control states"
    );
    for (_, l, t) in query.transitions() {
        assert!(l.is_some(), "poststar queries must be ε-free");
        assert!(
            !query.is_control_state(t),
            "poststar queries must not have transitions into control states"
        );
    }

    let mut aut = query.clone();

    // Phase I: one fresh state per (p', γ') push-rule target pair.
    let mut push_state: HashMap<(u32, Symbol), PState> = HashMap::new();
    for rule in pds.rules() {
        if let Rhs::Push(g1, _) = rule.rhs {
            push_state
                .entry((rule.to_loc.0, g1))
                .or_insert_with(|| aut.add_state());
        }
    }
    let phase1_states = push_state.len();

    // Worklist algorithm over transitions. We maintain:
    //   by_src: (state, symbol) → targets, for combining ε-transitions;
    //   eps_into: state → control states with an ε-transition into it.
    let mut worklist: Vec<(PState, Option<Symbol>, PState)> = aut.transitions().collect();
    let mut by_src: HashMap<(PState, Symbol), Vec<PState>> = HashMap::new();
    for &(f, l, t) in &worklist {
        if let Some(sym) = l {
            by_src.entry((f, sym)).or_default().push(t);
        }
    }
    let mut eps_into: HashMap<PState, Vec<PState>> = HashMap::new();

    let mut peak_bytes = 0usize;
    while let Some((f, l, t)) = worklist.pop() {
        match l {
            Some(sym) => {
                if aut.is_control_state(f) {
                    let p = crate::system::ControlLoc(f.0);
                    for rule in pds.rules_for(p, sym).cloned().collect::<Vec<_>>() {
                        let p2 = aut.control_state(rule.to_loc);
                        match rule.rhs {
                            Rhs::Pop => {
                                if aut.add_transition(p2, None, t) {
                                    worklist.push((p2, None, t));
                                }
                            }
                            Rhs::Internal(g2) => {
                                if aut.add_transition(p2, Some(g2), t) {
                                    by_src.entry((p2, g2)).or_default().push(t);
                                    worklist.push((p2, Some(g2), t));
                                }
                            }
                            Rhs::Push(g1, g2) => {
                                let mid = push_state[&(rule.to_loc.0, g1)];
                                if aut.add_transition(p2, Some(g1), mid) {
                                    by_src.entry((p2, g1)).or_default().push(mid);
                                    worklist.push((p2, Some(g1), mid));
                                }
                                if aut.add_transition(mid, Some(g2), t) {
                                    by_src.entry((mid, g2)).or_default().push(t);
                                    worklist.push((mid, Some(g2), t));
                                }
                            }
                        }
                    }
                }
                // ε-combination: q' –ε→ f plus f –sym→ t gives q' –sym→ t.
                if let Some(sources) = eps_into.get(&f) {
                    for q2 in sources.clone() {
                        if aut.add_transition(q2, Some(sym), t) {
                            by_src.entry((q2, sym)).or_default().push(t);
                            worklist.push((q2, Some(sym), t));
                        }
                    }
                }
            }
            None => {
                // f –ε→ t: combine with all t –sym→ u.
                eps_into.entry(t).or_default().push(f);
                let succ: Vec<(Symbol, PState)> = aut
                    .transitions_from(t)
                    .iter()
                    .filter_map(|&(l2, u)| l2.map(|s| (s, u)))
                    .collect();
                for (sym, u) in succ {
                    if aut.add_transition(f, Some(sym), u) {
                        by_src.entry((f, sym)).or_default().push(u);
                        worklist.push((f, Some(sym), u));
                    }
                }
            }
        }
        peak_bytes = peak_bytes.max(
            aut.approx_bytes()
                + by_src.len() * 48
                + eps_into.len() * 48
                + worklist.len() * std::mem::size_of::<(PState, Option<Symbol>, PState)>(),
        );
    }

    let stats = PoststarStats {
        transitions: aut.transition_count(),
        phase1_states,
        peak_bytes,
    };
    (aut, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ControlLoc;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// Rules: ⟨p,a⟩↪⟨p, a b⟩. post*{(p, a)} = (p, a b*).
    #[test]
    fn push_star() {
        let p = ControlLoc(0);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, a, b);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query);
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(p, &[a, b, b, b]));
        assert!(!res.accepts(p, &[b]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Pop to a different control location: ⟨p,a⟩↪⟨q,ε⟩.
    /// post*{(p, a b)} ∋ (q, b).
    #[test]
    fn pop_moves_control() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_pop(p, a, q);
        let mut query = PAutomaton::new(2);
        let m1 = query.add_state();
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), m1);
        query.add_transition(m1, Some(b), f);
        query.set_final(f);
        let res = poststar(&pds, &query);
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(q, &[b]));
        assert!(!res.accepts(q, &[a]));
        assert!(!res.accepts(p, &[b]));
    }

    /// Pop then continue: push and pop interplay.
    /// Rules: ⟨p,a⟩↪⟨p,b c⟩, ⟨p,b⟩↪⟨q,ε⟩, ⟨q,c⟩↪⟨q,d⟩.
    /// (p,a) ⇒ (p,bc) ⇒ (q,c) ⇒ (q,d).
    #[test]
    fn chained_reachability() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c, d) = (sym(0), sym(1), sym(2), sym(3));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, q);
        pds.add_internal(q, c, q, d);
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query);
        for (loc, stack) in [(p, vec![a]), (p, vec![b, c]), (q, vec![c]), (q, vec![d])] {
            assert!(res.accepts(loc, &stack), "({loc:?}, {stack:?})");
        }
        assert!(!res.accepts(p, &[c]));
        assert!(!res.accepts(q, &[a]));
    }

    /// Cross-check with concrete exploration.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Start set: {(p, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query);

        // Concrete BFS from (p, [a]) bounded by stack depth.
        let mut reachable = std::collections::HashSet::new();
        let mut work = vec![(p, vec![a])];
        while let Some((l, st)) = work.pop() {
            if st.len() > 5 || !reachable.insert((l, st.clone())) {
                continue;
            }
            work.extend(pds.step(l, &st));
        }
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, a, a],
            ] {
                let concrete = reachable.contains(&(loc, stack.clone()));
                assert_eq!(
                    res.accepts(loc, &stack),
                    concrete,
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }

    /// pre* and post* are adjoint: c' ∈ pre*({c}) iff c ∈ post*({c'}).
    #[test]
    fn prestar_poststar_duality() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        pds.add_internal(p, c, p, a);

        // c' = (p, [a]); c = (p, [c]).
        let mut from_cp = PAutomaton::new(1);
        let f1 = from_cp.add_state();
        from_cp.add_transition(from_cp.control_state(p), Some(a), f1);
        from_cp.set_final(f1);
        let post = poststar(&pds, &from_cp);

        let mut from_c = PAutomaton::new(1);
        let f2 = from_c.add_state();
        from_c.add_transition(from_c.control_state(p), Some(c), f2);
        from_c.set_final(f2);
        let pre = crate::prestar::prestar(&pds, &from_c).unwrap();

        assert_eq!(post.accepts(p, &[c]), pre.accepts(p, &[a]));
        assert!(post.accepts(p, &[c]));
    }
}
