//! The `Poststar` saturation procedure (Defn. 3.7; Schwoon 2002, Alg. 2).
//!
//! Computes an automaton for `post*(C)`: all configurations reachable from
//! `C` under the PDS transition relation. Used by Alg. 2 (feature removal)
//! for forward stack-configuration slicing, and to build the language of all
//! configurations reachable from `⟨entry_main, ε⟩` (valid calling contexts).
//!
//! Like `Prestar`, the engine runs on dense structures: rules come from a
//! prebuilt [`RuleIndex`] (including the dense numbering of Phase-I states,
//! one per distinct push-rule target pair), and the growing relation lives
//! in a reusable [`SaturationScratch`]. After Phase I the state space is
//! fixed, so every id stays below a known bound.

use crate::automaton::{PAutomaton, PState};
use crate::index::RuleIndex;
use crate::scratch::SaturationScratch;
use crate::system::{Pds, Rhs};
use crate::PdsError;
use specslice_fsa::Symbol;

/// Statistics from a [`poststar`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoststarStats {
    /// Transitions in the saturated automaton (including ε).
    pub transitions: usize,
    /// States added in Phase I (one per distinct push-rule target pair).
    pub phase1_states: usize,
    /// Approximate peak bytes retained during saturation.
    pub peak_bytes: usize,
    /// Saturation firings: rule matches plus ε-combinations, counting
    /// duplicate candidates. A pure function of the PDS + query for a given
    /// engine build — identical on every machine and at every thread count.
    pub rule_applications: usize,
    /// Deepest the worklist ever got.
    pub peak_worklist: usize,
}

/// Computes an automaton for `post*(L(query))`.
///
/// The result may contain ε-transitions; acceptance accounts for them.
///
/// # Errors
///
/// [`PdsError::EpsilonInQuery`] if `query` has ε-transitions,
/// [`PdsError::TransitionIntoControl`] if it has transitions *into* control
/// states, [`PdsError::MissingControls`] if it has fewer control states
/// than the PDS has control locations — the standard P-automaton
/// preconditions, surfaced as values (they used to be `assert!`s, which
/// crashed batch worker threads on malformed queries).
pub fn poststar(pds: &Pds, query: &PAutomaton) -> Result<PAutomaton, PdsError> {
    poststar_with_stats(pds, query).map(|(aut, _)| aut)
}

/// [`poststar`] plus run statistics.
pub fn poststar_with_stats(
    pds: &Pds,
    query: &PAutomaton,
) -> Result<(PAutomaton, PoststarStats), PdsError> {
    let idx = RuleIndex::new(pds);
    poststar_indexed_with_stats(&idx, query, &mut SaturationScratch::default())
}

/// [`poststar_with_stats`] against a prebuilt rule index and caller-owned
/// scratch — the session hot path.
pub fn poststar_indexed_with_stats(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> Result<(PAutomaton, PoststarStats), PdsError> {
    if query.control_count() < idx.control_count() {
        return Err(PdsError::MissingControls {
            query: query.control_count(),
            pds: idx.control_count(),
        });
    }
    let epsilon_count = query.transitions().filter(|(_, l, _)| l.is_none()).count();
    if epsilon_count > 0 {
        return Err(PdsError::EpsilonInQuery {
            count: epsilon_count,
        });
    }
    let into_control = query
        .transitions()
        .filter(|&(_, _, t)| query.is_control_state(t))
        .count();
    if into_control > 0 {
        return Err(PdsError::TransitionIntoControl {
            count: into_control,
        });
    }

    // Phase I: one fresh state per distinct (p', γ') push-rule target pair,
    // numbered densely after the query's states (the numbering lives in the
    // rule index, so Phase II looks pairs up without hashing).
    let n_query_states = query.state_count() as u32;
    let phase1_states = idx.push_pairs().len();
    let n_states = n_query_states + phase1_states as u32;
    scratch.reset(n_states);
    let SaturationScratch {
        rows,
        out,
        worklist,
        eps_into,
        tmp_pairs,
        ..
    } = scratch;

    // Labels are encoded `γ + 1`, with 0 for ε (post* creates ε-transitions
    // via pop rules).
    fn add(
        rows: &mut crate::scratch::RowTable,
        out: &mut [Vec<(u32, u32)>],
        worklist: &mut Vec<(u32, u32, u32)>,
        from: u32,
        label: u32,
        to: u32,
    ) {
        if rows.insert(from, label, to) {
            out[from as usize].push((label, to));
            worklist.push((from, label, to));
        }
    }
    let enc = |sym: Symbol| {
        debug_assert!(sym.0 < u32::MAX, "symbol id overflows the ε encoding");
        sym.0 + 1
    };

    for (f, l, t) in query.transitions() {
        let sym = l.expect("ε-freedom checked above");
        add(rows, out, worklist, f.0, enc(sym), t.0);
    }

    let n_controls = idx.control_count();
    let mut rule_applications = 0usize;
    let mut peak_worklist = 0usize;
    while let Some((f, label, t)) = {
        peak_worklist = peak_worklist.max(worklist.len());
        worklist.pop()
    } {
        if label != 0 {
            let sym = Symbol(label - 1);
            // Rules fire on transitions out of control states.
            if f < n_controls {
                for r in idx.rules_for_lhs(sym) {
                    if r.from_loc.0 != f {
                        continue;
                    }
                    rule_applications += 1;
                    match r.rhs {
                        Rhs::Pop => add(rows, out, worklist, r.to_loc.0, 0, t),
                        Rhs::Internal(g2) => add(rows, out, worklist, r.to_loc.0, enc(g2), t),
                        Rhs::Push(g1, g2) => {
                            let mid = n_query_states + r.push_pair;
                            add(rows, out, worklist, r.to_loc.0, enc(g1), mid);
                            add(rows, out, worklist, mid, enc(g2), t);
                        }
                    }
                }
            }
            // ε-combination: q' –ε→ f plus f –sym→ t gives q' –sym→ t.
            // `add` never touches `eps_into`, so the row is iterated in
            // place (unlike the ε-branch below, which snapshots `out[t]`
            // because `add` appends to `out`).
            for &q2 in eps_into[f as usize].iter() {
                rule_applications += 1;
                add(rows, out, worklist, q2, label, t);
            }
        } else {
            // f –ε→ t: combine with all labeled t –sym→ u.
            eps_into[t as usize].push(f);
            tmp_pairs.clear();
            tmp_pairs.extend(out[t as usize].iter().filter(|&&(l2, _)| l2 != 0));
            for &(l2, u) in tmp_pairs.iter() {
                rule_applications += 1;
                add(rows, out, worklist, f, l2, u);
            }
        }
    }

    // Materialize: the query, the Phase-I states, then every inferred
    // transition in deterministic (state-major, insertion) order.
    let mut aut = query.clone();
    for _ in 0..phase1_states {
        aut.add_state();
    }
    for (state, row) in out.iter().enumerate() {
        for &(label, to) in row {
            let l = if label == 0 {
                None
            } else {
                Some(Symbol(label - 1))
            };
            aut.add_transition(PState(state as u32), l, PState(to));
        }
    }

    let transitions = aut.transition_count();
    let stats = PoststarStats {
        transitions,
        phase1_states,
        peak_bytes: transitions * 36
            + rows.len() * 48
            + eps_into.iter().map(|v| v.len() * 4 + 24).sum::<usize>()
            + peak_worklist * std::mem::size_of::<(u32, u32, u32)>(),
        rule_applications,
        peak_worklist,
    };
    Ok((aut, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ControlLoc;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// Rules: ⟨p,a⟩↪⟨p, a b⟩. post*{(p, a)} = (p, a b*).
    #[test]
    fn push_star() {
        let p = ControlLoc(0);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, a, b);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(p, &[a, b, b, b]));
        assert!(!res.accepts(p, &[b]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Pop to a different control location: ⟨p,a⟩↪⟨q,ε⟩.
    /// post*{(p, a b)} ∋ (q, b).
    #[test]
    fn pop_moves_control() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_pop(p, a, q);
        let mut query = PAutomaton::new(2);
        let m1 = query.add_state();
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), m1);
        query.add_transition(m1, Some(b), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(q, &[b]));
        assert!(!res.accepts(q, &[a]));
        assert!(!res.accepts(p, &[b]));
    }

    /// Pop then continue: push and pop interplay.
    /// Rules: ⟨p,a⟩↪⟨p,b c⟩, ⟨p,b⟩↪⟨q,ε⟩, ⟨q,c⟩↪⟨q,d⟩.
    /// (p,a) ⇒ (p,bc) ⇒ (q,c) ⇒ (q,d).
    #[test]
    fn chained_reachability() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c, d) = (sym(0), sym(1), sym(2), sym(3));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, q);
        pds.add_internal(q, c, q, d);
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        for (loc, stack) in [(p, vec![a]), (p, vec![b, c]), (q, vec![c]), (q, vec![d])] {
            assert!(res.accepts(loc, &stack), "({loc:?}, {stack:?})");
        }
        assert!(!res.accepts(p, &[c]));
        assert!(!res.accepts(q, &[a]));
    }

    /// Cross-check with concrete exploration.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Start set: {(p, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();

        // Concrete BFS from (p, [a]) bounded by stack depth.
        let mut reachable = std::collections::HashSet::new();
        let mut work = vec![(p, vec![a])];
        while let Some((l, st)) = work.pop() {
            if st.len() > 5 || !reachable.insert((l, st.clone())) {
                continue;
            }
            work.extend(pds.step(l, &st));
        }
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, a, a],
            ] {
                let concrete = reachable.contains(&(loc, stack.clone()));
                assert_eq!(
                    res.accepts(loc, &stack),
                    concrete,
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }

    /// pre* and post* are adjoint: c' ∈ pre*({c}) iff c ∈ post*({c'}).
    #[test]
    fn prestar_poststar_duality() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        pds.add_internal(p, c, p, a);

        // c' = (p, [a]); c = (p, [c]).
        let mut from_cp = PAutomaton::new(1);
        let f1 = from_cp.add_state();
        from_cp.add_transition(from_cp.control_state(p), Some(a), f1);
        from_cp.set_final(f1);
        let post = poststar(&pds, &from_cp).unwrap();

        let mut from_c = PAutomaton::new(1);
        let f2 = from_c.add_state();
        from_c.add_transition(from_c.control_state(p), Some(c), f2);
        from_c.set_final(f2);
        let pre = crate::prestar::prestar(&pds, &from_c).unwrap();

        assert_eq!(post.accepts(p, &[c]), pre.accepts(p, &[a]));
        assert!(post.accepts(p, &[c]));
    }

    /// Malformed queries surface as structured errors, never as panics —
    /// the same contract `prestar` has had since the batch-worker fixes
    /// (mirrors `tests/malformed_criteria.rs` at the PDS layer).
    #[test]
    fn epsilon_query_is_a_structured_error() {
        let p = ControlLoc(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, sym(0), p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), None, f);
        query.set_final(f);
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
        assert!(err.to_string().contains("ε-free"), "{err}");
    }

    #[test]
    fn missing_controls_is_a_structured_error() {
        let pds = Pds::new(3);
        let query = PAutomaton::new(1);
        let err = poststar_with_stats(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::MissingControls { query: 1, pds: 3 });
    }

    #[test]
    fn transition_into_control_state_is_a_structured_error() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let mut pds = Pds::new(2);
        pds.add_pop(p, sym(0), q);
        // Two offending transitions: control → control, and interior →
        // control.
        let mut query = PAutomaton::new(2);
        let m = query.add_state();
        query.add_transition(query.control_state(p), Some(sym(0)), query.control_state(q));
        query.add_transition(query.control_state(p), Some(sym(1)), m);
        query.add_transition(m, Some(sym(2)), query.control_state(q));
        query.set_final(m);
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::TransitionIntoControl { count: 2 });
        assert!(err.to_string().contains("control"), "{err}");
    }

    /// Error precedence mirrors the old assertion order (ε before
    /// into-control), so diagnostics stay stable.
    #[test]
    fn epsilon_reported_before_into_control() {
        let p = ControlLoc(0);
        let pds = Pds::new(1);
        let mut query = PAutomaton::new(1);
        query.add_transition(query.control_state(p), None, query.control_state(p));
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
    }
}
