//! The `Poststar` saturation procedure (Defn. 3.7; Schwoon 2002, Alg. 2).
//!
//! Computes an automaton for `post*(C)`: all configurations reachable from
//! `C` under the PDS transition relation. Used by `Slicer::forward_slice`
//! (forward stack-configuration slicing), by Alg. 2 (feature removal), and
//! to build the language of all configurations reachable from
//! `⟨entry_main, ε⟩` (valid calling contexts).
//!
//! Like `Prestar`, the engine runs on dense structures: rules come from a
//! prebuilt [`RuleIndex`] (including the dense numbering of Phase-I states,
//! one per distinct push-rule target pair), and the growing relation lives
//! in a reusable [`SaturationScratch`]. After Phase I the state space is
//! fixed, so every id stays below a known bound.
//!
//! The engine itself lives in [`crate::saturate`], shared with
//! [`crate::prestar`][mod@crate::prestar]; this module pins [`Direction::Forward`]. The
//! multi-criterion entry point gives forward saturations the same one-pass
//! bitset-masked batching the backward path has: pop rules emit ε
//! transitions carrying the premise's mask, and ε-combinations intersect
//! the masks of their two premises.

use crate::automaton::PAutomaton;
use crate::index::RuleIndex;
use crate::saturate::{
    saturate_indexed_with_stats, saturate_multi_indexed_with_stats, Direction, MultiSaturation,
    SaturationStats,
};
use crate::scratch::SaturationScratch;
use crate::system::Pds;
use crate::PdsError;

/// Statistics from a [`poststar`] run. `query_transitions` counts the input
/// automaton's transitions (summed over members for a multi run).
pub type PoststarStats = SaturationStats;

/// The result of one multi-criterion forward saturation
/// ([`poststar_multi_indexed_with_stats`]).
pub type MultiPoststar = MultiSaturation;

/// Computes an automaton for `post*(L(query))`.
///
/// The result may contain ε-transitions; acceptance accounts for them.
///
/// # Errors
///
/// [`PdsError::EpsilonInQuery`] if `query` has ε-transitions,
/// [`PdsError::TransitionIntoControl`] if it has transitions *into* control
/// states, [`PdsError::MissingControls`] if it has fewer control states
/// than the PDS has control locations — the standard P-automaton
/// preconditions, surfaced as values (they used to be `assert!`s, which
/// crashed batch worker threads on malformed queries).
pub fn poststar(pds: &Pds, query: &PAutomaton) -> Result<PAutomaton, PdsError> {
    poststar_with_stats(pds, query).map(|(aut, _)| aut)
}

/// [`poststar`] plus run statistics.
pub fn poststar_with_stats(
    pds: &Pds,
    query: &PAutomaton,
) -> Result<(PAutomaton, PoststarStats), PdsError> {
    let idx = RuleIndex::new(pds);
    poststar_indexed_with_stats(&idx, query, &mut SaturationScratch::default())
}

/// [`poststar_with_stats`] against a prebuilt rule index and caller-owned
/// scratch — the session hot path.
pub fn poststar_indexed_with_stats(
    idx: &RuleIndex,
    query: &PAutomaton,
    scratch: &mut SaturationScratch,
) -> Result<(PAutomaton, PoststarStats), PdsError> {
    saturate_indexed_with_stats(Direction::Forward, idx, query, scratch)
}

/// One-pass `post*` for up to [`crate::CriterionSet::MAX_MEMBERS`] criterion
/// queries over the same PDS — the forward analog of
/// [`crate::prestar_multi_indexed_with_stats`]. Phase-I states are shared
/// across members (their numbering, by push pair, is identical in every
/// member's solo run); see
/// [`crate::saturate::saturate_multi_indexed_with_stats`].
///
/// # Errors
///
/// [`PdsError::BadBatchWidth`] for empty or >64-member batches, plus the
/// per-member preconditions of [`poststar`].
pub fn poststar_multi_indexed_with_stats(
    idx: &RuleIndex,
    queries: &[&PAutomaton],
    scratch: &mut SaturationScratch,
) -> Result<MultiPoststar, PdsError> {
    saturate_multi_indexed_with_stats(Direction::Forward, idx, queries, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::CriterionSet;
    use crate::system::ControlLoc;
    use specslice_fsa::Symbol;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    /// Rules: ⟨p,a⟩↪⟨p, a b⟩. post*{(p, a)} = (p, a b*).
    #[test]
    fn push_star() {
        let p = ControlLoc(0);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, a, b);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a]));
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(p, &[a, b, b, b]));
        assert!(!res.accepts(p, &[b]));
        assert!(!res.accepts(p, &[a, a]));
    }

    /// Pop to a different control location: ⟨p,a⟩↪⟨q,ε⟩.
    /// post*{(p, a b)} ∋ (q, b).
    #[test]
    fn pop_moves_control() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_pop(p, a, q);
        let mut query = PAutomaton::new(2);
        let m1 = query.add_state();
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), m1);
        query.add_transition(m1, Some(b), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        assert!(res.accepts(p, &[a, b]));
        assert!(res.accepts(q, &[b]));
        assert!(!res.accepts(q, &[a]));
        assert!(!res.accepts(p, &[b]));
    }

    /// Pop then continue: push and pop interplay.
    /// Rules: ⟨p,a⟩↪⟨p,b c⟩, ⟨p,b⟩↪⟨q,ε⟩, ⟨q,c⟩↪⟨q,d⟩.
    /// (p,a) ⇒ (p,bc) ⇒ (q,c) ⇒ (q,d).
    #[test]
    fn chained_reachability() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c, d) = (sym(0), sym(1), sym(2), sym(3));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, q);
        pds.add_internal(q, c, q, d);
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();
        for (loc, stack) in [(p, vec![a]), (p, vec![b, c]), (q, vec![c]), (q, vec![d])] {
            assert!(res.accepts(loc, &stack), "({loc:?}, {stack:?})");
        }
        assert!(!res.accepts(p, &[c]));
        assert!(!res.accepts(q, &[a]));
    }

    /// Cross-check with concrete exploration.
    #[test]
    fn agrees_with_concrete_search() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        // Start set: {(p, a)}.
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let res = poststar(&pds, &query).unwrap();

        // Concrete BFS from (p, [a]) bounded by stack depth.
        let mut reachable = std::collections::HashSet::new();
        let mut work = vec![(p, vec![a])];
        while let Some((l, st)) = work.pop() {
            if st.len() > 5 || !reachable.insert((l, st.clone())) {
                continue;
            }
            work.extend(pds.step(l, &st));
        }
        for loc in [p, q] {
            for stack in [
                vec![],
                vec![a],
                vec![b],
                vec![a, a],
                vec![b, a],
                vec![a, b],
                vec![b, a, a],
            ] {
                let concrete = reachable.contains(&(loc, stack.clone()));
                assert_eq!(
                    res.accepts(loc, &stack),
                    concrete,
                    "mismatch at ({loc:?}, {stack:?})"
                );
            }
        }
    }

    /// pre* and post* are adjoint: c' ∈ pre*({c}) iff c ∈ post*({c'}).
    #[test]
    fn prestar_poststar_duality() {
        let p = ControlLoc(0);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(1);
        pds.add_push(p, a, p, b, c);
        pds.add_pop(p, b, p);
        pds.add_internal(p, c, p, a);

        // c' = (p, [a]); c = (p, [c]).
        let mut from_cp = PAutomaton::new(1);
        let f1 = from_cp.add_state();
        from_cp.add_transition(from_cp.control_state(p), Some(a), f1);
        from_cp.set_final(f1);
        let post = poststar(&pds, &from_cp).unwrap();

        let mut from_c = PAutomaton::new(1);
        let f2 = from_c.add_state();
        from_c.add_transition(from_c.control_state(p), Some(c), f2);
        from_c.set_final(f2);
        let pre = crate::prestar::prestar(&pds, &from_c).unwrap();

        assert_eq!(post.accepts(p, &[c]), pre.accepts(p, &[a]));
        assert!(post.accepts(p, &[c]));
    }

    /// Malformed queries surface as structured errors, never as panics —
    /// the same contract `prestar` has had since the batch-worker fixes
    /// (mirrors `tests/malformed_criteria.rs` at the PDS layer).
    #[test]
    fn epsilon_query_is_a_structured_error() {
        let p = ControlLoc(0);
        let mut pds = Pds::new(1);
        pds.add_pop(p, sym(0), p);
        let mut query = PAutomaton::new(1);
        let f = query.add_state();
        query.add_transition(query.control_state(p), None, f);
        query.set_final(f);
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
        assert!(err.to_string().contains("ε-free"), "{err}");
    }

    #[test]
    fn missing_controls_is_a_structured_error() {
        let pds = Pds::new(3);
        let query = PAutomaton::new(1);
        let err = poststar_with_stats(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::MissingControls { query: 1, pds: 3 });
    }

    #[test]
    fn transition_into_control_state_is_a_structured_error() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let mut pds = Pds::new(2);
        pds.add_pop(p, sym(0), q);
        // Two offending transitions: control → control, and interior →
        // control.
        let mut query = PAutomaton::new(2);
        let m = query.add_state();
        query.add_transition(query.control_state(p), Some(sym(0)), query.control_state(q));
        query.add_transition(query.control_state(p), Some(sym(1)), m);
        query.add_transition(m, Some(sym(2)), query.control_state(q));
        query.set_final(m);
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::TransitionIntoControl { count: 2 });
        assert!(err.to_string().contains("control"), "{err}");
    }

    /// Error precedence mirrors the old assertion order (ε before
    /// into-control), so diagnostics stay stable.
    #[test]
    fn epsilon_reported_before_into_control() {
        let p = ControlLoc(0);
        let pds = Pds::new(1);
        let mut query = PAutomaton::new(1);
        query.add_transition(query.control_state(p), None, query.control_state(p));
        let err = poststar(&pds, &query).unwrap_err();
        assert_eq!(err, PdsError::EpsilonInQuery { count: 1 });
    }

    /// Builds member `i`'s projection of a multi-criterion run: same state
    /// space, only the transitions (including ε) whose mask contains `i`,
    /// member finals.
    fn project_member(multi: &MultiPoststar, i: usize) -> PAutomaton {
        let n_controls = multi.automaton.control_count();
        let mut proj = PAutomaton::new(n_controls);
        for _ in n_controls..multi.automaton.state_count() as u32 {
            proj.add_state();
        }
        for (f, l, t) in multi.automaton.transitions() {
            if multi.mask_label(f, l, t).contains(i) {
                proj.add_transition(f, l, t);
            }
        }
        for &f in &multi.member_finals[i] {
            proj.set_final(f);
        }
        proj
    }

    /// A word pool covering the alphabet up to length 3.
    fn words(alphabet: &[Symbol]) -> Vec<Vec<Symbol>> {
        let mut out = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &out {
                for &s in alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The masked union saturation, projected per member, accepts exactly
    /// the language of each member's solo saturation — on a PDS exercising
    /// pop (ε creation), internal, push (Phase-I states), and
    /// ε-combination across two control locations.
    #[test]
    fn multi_projections_match_solo_runs() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_push(p, b, q, c, b);
        pds.add_internal(p, b, q, a);
        pds.add_internal(q, c, p, a);
        pds.add_pop(q, a, p);
        pds.add_pop(p, c, q);
        let idx = RuleIndex::new(&pds);

        // Member queries of different shapes, including a chain.
        let mut queries = Vec::new();
        for target in [(p, a), (q, a), (q, c)] {
            let mut query = PAutomaton::new(2);
            let f = query.add_state();
            query.add_transition(query.control_state(target.0), Some(target.1), f);
            query.set_final(f);
            queries.push(query);
        }
        let mut chain = PAutomaton::new(2);
        let m1 = chain.add_state();
        let m2 = chain.add_state();
        chain.add_transition(chain.control_state(p), Some(b), m1);
        chain.add_transition(m1, Some(a), m2);
        chain.set_final(m2);
        queries.push(chain);

        let refs: Vec<&PAutomaton> = queries.iter().collect();
        let mut scratch = SaturationScratch::default();
        let multi = poststar_multi_indexed_with_stats(&idx, &refs, &mut scratch).unwrap();
        assert!(multi.stats.transitions > 0);
        assert_eq!(multi.member_finals.len(), refs.len());

        for (i, query) in queries.iter().enumerate() {
            let solo = poststar(&pds, query).unwrap();
            let proj = project_member(&multi, i);
            for loc in [p, q] {
                for word in words(&[a, b, c]) {
                    assert_eq!(
                        solo.accepts(loc, &word),
                        proj.accepts(loc, &word),
                        "member {i}, ({loc:?}, {word:?})"
                    );
                }
            }
        }
    }

    /// A singleton batch carries the full mask on every transition
    /// (including the ε ones pop rules create), and the projection is the
    /// solo saturation itself.
    #[test]
    fn singleton_batch_mask_is_total() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b) = (sym(0), sym(1));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        let mut query = PAutomaton::new(2);
        let f = query.add_state();
        query.add_transition(query.control_state(p), Some(a), f);
        query.set_final(f);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let multi = poststar_multi_indexed_with_stats(&idx, &[&query], &mut scratch).unwrap();
        let solo = poststar(&pds, &query).unwrap();
        assert_eq!(multi.automaton.transition_count(), solo.transition_count());
        let mut saw_epsilon = false;
        for (f, l, t) in multi.automaton.transitions() {
            saw_epsilon |= l.is_none();
            assert_eq!(multi.mask_label(f, l, t), CriterionSet::singleton(0));
        }
        assert!(saw_epsilon, "pop rules must have created ε transitions");
    }

    /// Bad batch widths and malformed members surface as structured errors,
    /// including the post*-specific into-control precondition.
    #[test]
    fn multi_validates_inputs() {
        let p = ControlLoc(0);
        let pds = Pds::new(1);
        let idx = RuleIndex::new(&pds);
        let mut scratch = SaturationScratch::default();
        let err = poststar_multi_indexed_with_stats(&idx, &[], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::BadBatchWidth { members: 0 });

        let query = PAutomaton::new(1);
        let mut bad = PAutomaton::new(1);
        bad.add_transition(bad.control_state(p), Some(sym(0)), bad.control_state(p));
        let err =
            poststar_multi_indexed_with_stats(&idx, &[&query, &bad], &mut scratch).unwrap_err();
        assert_eq!(err, PdsError::TransitionIntoControl { count: 1 });
    }

    /// The multi run's counters are reproducible: two identical runs (with
    /// scratch reuse in between) report identical deterministic counters.
    #[test]
    fn multi_counters_are_deterministic() {
        let p = ControlLoc(0);
        let q = ControlLoc(1);
        let (a, b, c) = (sym(0), sym(1), sym(2));
        let mut pds = Pds::new(2);
        pds.add_push(p, a, p, b, a);
        pds.add_internal(p, b, q, a);
        pds.add_pop(q, a, p);
        pds.add_internal(q, c, p, c);
        let idx = RuleIndex::new(&pds);
        let mut queries = Vec::new();
        for target in [(p, a), (q, c)] {
            let mut query = PAutomaton::new(2);
            let f = query.add_state();
            query.add_transition(query.control_state(target.0), Some(target.1), f);
            query.set_final(f);
            queries.push(query);
        }
        let refs: Vec<&PAutomaton> = queries.iter().collect();
        let mut scratch = SaturationScratch::default();
        let first = poststar_multi_indexed_with_stats(&idx, &refs, &mut scratch).unwrap();
        let second = poststar_multi_indexed_with_stats(&idx, &refs, &mut scratch).unwrap();
        assert_eq!(
            first.stats.rule_applications,
            second.stats.rule_applications
        );
        assert_eq!(first.stats.peak_worklist, second.stats.peak_worklist);
        assert_eq!(first.stats.transitions, second.stats.transitions);
    }
}
