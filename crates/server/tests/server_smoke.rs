//! The smoke scenario CI runs against the external binary, in-process: a
//! daemon on a unix socket serves corpus programs, snapshots on shutdown,
//! and the restarted daemon answers the first repeated query per program
//! from the imported memo — byte-identically.

#![cfg(unix)]

use specslice_server::{serve, Bind, Client, Json, ServerConfig};
use std::path::PathBuf;

/// A corpus subset keeps the in-process smoke fast; the CI job runs the
/// external-binary flavor over the full corpus.
const SMOKE_PROGRAMS: [&str; 3] = ["tcas", "schedule", "replace"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specslice-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn strip_id(bytes: &[u8]) -> String {
    let v = Json::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
    match v {
        Json::Object(mut m) => {
            m.remove("id");
            Json::Object(m).to_text()
        }
        other => other.to_text(),
    }
}

fn printf_criterion() -> Json {
    Json::obj([("kind", Json::str("printf_actuals"))])
}

#[test]
fn corpus_warm_restart_over_unix_socket() {
    let dir = temp_dir("corpus");
    let sock = dir.join("daemon.sock");
    let snap = dir.join("snapshots");
    let programs: Vec<_> = SMOKE_PROGRAMS
        .iter()
        .map(|name| specslice_corpus::by_name(name).expect("corpus program"))
        .collect();

    let mut config = ServerConfig::new(Bind::Unix(sock.clone()));
    config.snapshot_dir = Some(snap.clone());
    config.threads = Some(2);

    // Cold cycle: open + slice each program, then `shutdown` (snapshots).
    let handle = serve(config.clone()).expect("bind");
    let mut client = Client::connect_unix(&sock).expect("connect");
    let mut expected = Vec::new();
    for p in &programs {
        let opened = client
            .request("open", [("source", Json::str(p.source))])
            .expect("open");
        assert_eq!(opened.get("warm").and_then(Json::as_bool), Some(false));
        let sid = opened
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let bytes = client
            .request_bytes(
                "slice",
                [
                    ("session", Json::str(&sid)),
                    ("criterion", printf_criterion()),
                ],
            )
            .expect("cold slice");
        expected.push((sid, bytes));
    }
    let down = client.request("shutdown", []).expect("shutdown");
    assert_eq!(
        down.get("snapshots_written").and_then(Json::as_i64),
        Some(programs.len() as i64)
    );
    handle.wait();

    // Warm cycle: every program restores its memo and answers the repeated
    // query byte-identically without re-running the pipeline.
    let handle = serve(config).expect("re-bind");
    let mut client = Client::connect_unix(&sock).expect("reconnect");
    for (p, (sid, want)) in programs.iter().zip(&expected) {
        let opened = client
            .request("open", [("source", Json::str(p.source))])
            .expect("warm open");
        assert_eq!(
            opened.get("warm").and_then(Json::as_bool),
            Some(true),
            "{}: {}",
            p.name,
            opened.to_text()
        );
        assert!(
            opened
                .get("memo_imported")
                .and_then(Json::as_i64)
                .unwrap_or(0)
                >= 1
        );
        assert_eq!(
            opened.get("session").and_then(Json::as_str),
            Some(sid.as_str()),
            "{}: session id changed across restart",
            p.name
        );
        let got = client
            .request_bytes(
                "slice",
                [
                    ("session", Json::str(sid)),
                    ("criterion", printf_criterion()),
                ],
            )
            .expect("warm slice");
        assert_eq!(
            strip_id(&got),
            strip_id(want),
            "{}: warm slice differs",
            p.name
        );
        let stats = client
            .request("stats", [("session", Json::str(sid))])
            .expect("stats");
        let hits = stats
            .get("session_stats")
            .and_then(|s| s.get("memo_hits"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        assert!(hits >= 1, "{}: warm query missed the memo", p.name);
    }
    // Global counters agree: every open this cycle was a warm start.
    let stats = client.request("stats", []).expect("global stats");
    assert_eq!(
        stats.get("warm_starts").and_then(Json::as_i64),
        Some(programs.len() as i64)
    );
    assert_eq!(stats.get("cold_opens").and_then(Json::as_i64), Some(0));
    handle.stop();

    let _ = std::fs::remove_dir_all(&dir);
}
