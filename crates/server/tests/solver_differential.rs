//! Solver differential over the wire: the same request script against two
//! daemons — one forced to the per-criterion solver, one to the one-pass
//! multi-criterion solver — must produce byte-identical response frames.
//! The wire format's determinism contract does not get a solver escape
//! hatch. Also: the snapshot round trip must hold under one-pass, since
//! batch-produced memo entries are what shutdown persists.

use specslice::Solver;
use specslice_server::{serve, Bind, Client, Json, ServerConfig};
use std::path::PathBuf;

const PROGRAM: &str = r#"
    int total;
    int count;
    void add(int x) { total = total + x; count = count + 1; }
    int avg() { if (count == 0) { return 0; } return total / count; }
    int main() {
        int i;
        i = 0;
        total = 0;
        count = 0;
        while (i < 5) { add(i); i = i + 1; }
        printf("%d\n", avg());
        printf("%d\n", total);
        return 0;
    }
"#;

fn printf_criterion() -> Json {
    Json::obj([("kind", Json::str("printf_actuals"))])
}

fn all_contexts(vertices: &[u32]) -> Json {
    Json::obj([
        ("kind", Json::str("all_contexts")),
        (
            "vertices",
            Json::arr(vertices.iter().map(|&v| Json::Int(i64::from(v)))),
        ),
    ])
}

fn start(solver: Solver, threads: usize) -> (specslice_server::Handle, String) {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
    config.threads = Some(threads);
    config.solver = Some(solver);
    let handle = serve(config).expect("bind");
    let addr = handle.addr.clone();
    (handle, addr)
}

fn open_session(client: &mut Client<std::net::TcpStream>) -> String {
    let opened = client
        .request("open", [("source", Json::str(PROGRAM))])
        .expect("open");
    opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string()
}

/// The request script: batches of every width the grouping planner cares
/// about (singleton, same-procedure pair, cross-procedure mix, repeated
/// criteria across requests that exercise the memo), a single `slice`, and
/// a `specialize_program` over the union.
fn script(session: &str) -> Vec<(&'static str, Vec<(&'static str, Json)>)> {
    let sid = || ("session", Json::str(session));
    let batch = |criteria: Vec<Json>| ("criteria", Json::arr(criteria));
    vec![
        ("slice_batch", vec![sid(), batch(vec![printf_criterion()])]),
        (
            "slice_batch",
            vec![
                sid(),
                batch(vec![
                    printf_criterion(),
                    all_contexts(&[1]),
                    all_contexts(&[2]),
                    all_contexts(&[3]),
                ]),
            ],
        ),
        ("slice", vec![sid(), ("criterion", all_contexts(&[2]))]),
        (
            "slice_batch",
            vec![
                sid(),
                batch(vec![
                    all_contexts(&[1, 2]),
                    printf_criterion(),
                    all_contexts(&[4]),
                ]),
            ],
        ),
        (
            "specialize_program",
            vec![
                sid(),
                batch(vec![
                    printf_criterion(),
                    all_contexts(&[1]),
                    all_contexts(&[3]),
                ]),
            ],
        ),
    ]
}

fn play(solver: Solver, threads: usize) -> Vec<Vec<u8>> {
    let (handle, addr) = start(solver, threads);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let session = open_session(&mut client);
    let frames = script(&session)
        .into_iter()
        .map(|(op, params)| client.request_bytes(op, params).expect("request"))
        .collect();
    handle.stop();
    frames
}

#[test]
fn solver_choice_does_not_change_response_frames() {
    let baseline = play(Solver::PerCriterion, 1);
    for threads in [1, 2, 4] {
        let got = play(Solver::OnePass, threads);
        assert_eq!(got.len(), baseline.len());
        for (i, (g, b)) in got.iter().zip(&baseline).enumerate() {
            assert_eq!(
                g,
                b,
                "threads={threads}: response {i} differs across solvers:\n  one-pass:      {}\n  per-criterion: {}",
                String::from_utf8_lossy(g),
                String::from_utf8_lossy(b),
            );
        }
    }
}

/// Snapshot → restart under the one-pass solver: the batch answered cold
/// populates the memo, shutdown persists it, and the restarted daemon must
/// answer the same batch warm with a byte-identical frame.
#[test]
fn one_pass_snapshot_round_trip_is_byte_identical() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("specslice-srv-onepass-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let batch_request = |client: &mut Client<std::net::TcpStream>, session: &str| {
        client
            .request_bytes(
                "slice_batch",
                [
                    ("session", Json::str(session)),
                    (
                        "criteria",
                        Json::arr([
                            printf_criterion(),
                            all_contexts(&[1]),
                            all_contexts(&[2]),
                            all_contexts(&[3]),
                        ]),
                    ),
                ],
            )
            .expect("slice_batch")
    };

    let boot = || {
        let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
        config.snapshot_dir = Some(dir.clone());
        config.threads = Some(2);
        config.solver = Some(Solver::OnePass);
        let handle = serve(config).expect("bind");
        let addr = handle.addr.clone();
        (handle, addr)
    };

    let (handle, addr) = boot();
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opened = client
        .request("open", [("source", Json::str(PROGRAM))])
        .expect("open");
    assert_eq!(opened.get("warm").and_then(Json::as_bool), Some(false));
    let sid = opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();
    let cold = batch_request(&mut client, &sid);
    let down = client.request("shutdown", []).expect("shutdown");
    assert!(
        down.get("snapshots_written")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "shutdown wrote no snapshots: {}",
        down.to_text()
    );
    handle.wait();

    let (handle, addr) = boot();
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    let opened = client
        .request("open", [("source", Json::str(PROGRAM))])
        .expect("warm open");
    assert_eq!(
        opened.get("warm").and_then(Json::as_bool),
        Some(true),
        "restart was not warm: {}",
        opened.to_text()
    );
    assert!(
        opened
            .get("memo_imported")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 4,
        "expected all four batch entries back: {}",
        opened.to_text()
    );
    let warm = batch_request(&mut client, &sid);
    assert_eq!(warm, cold, "batch answer changed across restart");

    let stats = client
        .request("stats", [("session", Json::str(&sid))])
        .expect("stats");
    let hits = stats
        .get("session_stats")
        .and_then(|s| s.get("memo_hits"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(hits >= 4, "expected memo hits after restart, got {hits}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
