//! End-to-end persistence: snapshot → restart → query must round-trip
//! byte-identically, eviction-triggered snapshots must warm later opens,
//! and damaged snapshot files (truncated, corrupt, version-bumped) must
//! degrade to structured cold opens — never an error, never a panic.

use specslice_server::{serve, Bind, Client, Json, ServerConfig};
use std::path::{Path, PathBuf};

const PROGRAM: &str = r#"
    int total;
    int count;
    void add(int x) { total = total + x; count = count + 1; }
    int avg() { if (count == 0) { return 0; } return total / count; }
    int main() {
        int i;
        i = 0;
        total = 0;
        count = 0;
        while (i < 5) { add(i); i = i + 1; }
        printf("%d\n", avg());
        return 0;
    }
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specslice-srv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_on(dir: &Path, budget: Option<usize>) -> (specslice_server::Handle, String) {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
    config.snapshot_dir = Some(dir.to_path_buf());
    config.budget_bytes = budget;
    config.threads = Some(1);
    let handle = serve(config).expect("bind");
    let addr = handle.addr.clone();
    (handle, addr)
}

fn printf_criterion() -> Json {
    Json::obj([("kind", Json::str("printf_actuals"))])
}

fn open(client: &mut Client<std::net::TcpStream>, source: &str) -> Json {
    client
        .request("open", [("source", Json::str(source))])
        .expect("open")
}

fn session_id(opened: &Json) -> String {
    opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string()
}

/// The round trip: a cold server answers queries, snapshots on `shutdown`,
/// and the restarted server's first repeated query is answered from the
/// imported memo with byte-identical frames.
///
/// Request ids are per-connection counters; the cold and warm connections
/// issue `hello`, `open`, `slice`, `slice` in the same positions, so the
/// query frames compare equal *raw* — ids included.
#[test]
fn snapshot_restart_query_round_trip_is_byte_identical() {
    let dir = temp_dir("roundtrip");

    let (handle, addr) = server_on(&dir, None);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opened = open(&mut client, PROGRAM);
    assert_eq!(opened.get("warm").and_then(Json::as_bool), Some(false));
    let sid = session_id(&opened);
    let cold_printf = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(&sid)),
                ("criterion", printf_criterion()),
            ],
        )
        .expect("cold slice");
    let cold_ctx = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(&sid)),
                (
                    "criterion",
                    Json::obj([
                        ("kind", Json::str("all_contexts")),
                        ("vertices", Json::arr([Json::Int(1)])),
                    ]),
                ),
            ],
        )
        .expect("cold slice 2");
    let down = client.request("shutdown", []).expect("shutdown");
    assert!(
        down.get("snapshots_written")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "shutdown wrote no snapshots: {}",
        down.to_text()
    );
    handle.wait();

    // Restart on the same snapshot directory.
    let (handle, addr) = server_on(&dir, None);
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    let opened = open(&mut client, PROGRAM);
    assert_eq!(
        opened.get("warm").and_then(Json::as_bool),
        Some(true),
        "restarted open was not warm: {}",
        opened.to_text()
    );
    assert!(
        opened
            .get("memo_imported")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 2,
        "expected both memo entries back: {}",
        opened.to_text()
    );
    let warm_printf = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(&sid)),
                ("criterion", printf_criterion()),
            ],
        )
        .expect("warm slice");
    let warm_ctx = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(&sid)),
                (
                    "criterion",
                    Json::obj([
                        ("kind", Json::str("all_contexts")),
                        ("vertices", Json::arr([Json::Int(1)])),
                    ]),
                ),
            ],
        )
        .expect("warm slice 2");
    assert_eq!(
        warm_printf, cold_printf,
        "printf slice changed across restart"
    );
    assert_eq!(
        warm_ctx, cold_ctx,
        "all_contexts slice changed across restart"
    );

    // Both warm queries must have been memo hits, not pipeline re-runs.
    let stats = client
        .request("stats", [("session", Json::str(&sid))])
        .expect("stats");
    let hits = stats
        .get("session_stats")
        .and_then(|s| s.get("memo_hits"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(hits >= 2, "expected memo hits after restart, got {hits}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU eviction under a tiny budget snapshots the victim, so re-opening the
/// evicted program is a warm start on the *same* server process.
#[test]
fn eviction_snapshots_enable_warm_reopen() {
    let dir = temp_dir("evict-warm");
    let (handle, addr) = server_on(&dir, Some(1));
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let first = open(&mut client, PROGRAM);
    let first_id = session_id(&first);
    // Touch the memo so the snapshot has something to import.
    client
        .request(
            "slice",
            [
                ("session", Json::str(&first_id)),
                ("criterion", printf_criterion()),
            ],
        )
        .expect("slice");

    // Opening a different program evicts the first (budget is 1 byte).
    let other_src = PROGRAM.replace("i < 5", "i < 6");
    let second = open(&mut client, &other_src);
    assert_ne!(session_id(&second), first_id);

    let reopened = open(&mut client, PROGRAM);
    assert_eq!(
        reopened.get("warm").and_then(Json::as_bool),
        Some(true),
        "evicted program did not warm-start: {}",
        reopened.to_text()
    );
    assert!(
        reopened
            .get("memo_imported")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1
    );

    let stats = client.request("stats", []).expect("stats");
    assert!(stats.get("evictions").and_then(Json::as_i64).unwrap_or(0) >= 1);
    assert!(stats.get("warm_starts").and_then(Json::as_i64).unwrap_or(0) >= 1);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes one good snapshot and returns (dir, snapshot path, bytes).
fn good_snapshot(tag: &str) -> (PathBuf, PathBuf, Vec<u8>) {
    let dir = temp_dir(tag);
    let (handle, addr) = server_on(&dir, None);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opened = open(&mut client, PROGRAM);
    let sid = session_id(&opened);
    client
        .request(
            "slice",
            [
                ("session", Json::str(&sid)),
                ("criterion", printf_criterion()),
            ],
        )
        .expect("slice");
    client.request("shutdown", []).expect("shutdown");
    handle.wait();
    let path = dir.join(format!("{sid}.snap"));
    let bytes = std::fs::read(&path).expect("snapshot file");
    (dir, path, bytes)
}

/// Boots a server on `dir`, opens PROGRAM, and asserts the open degraded to
/// a structured cold start whose warning contains `needle` — and that the
/// session still answers queries.
fn assert_degrades(dir: &Path, needle: &str) {
    let (handle, addr) = server_on(dir, None);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opened = open(&mut client, PROGRAM);
    assert_eq!(
        opened.get("warm").and_then(Json::as_bool),
        Some(false),
        "damaged snapshot produced a warm open: {}",
        opened.to_text()
    );
    let warning = opened
        .get("snapshot_warning")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no snapshot_warning in {}", opened.to_text()));
    assert!(
        warning.contains(needle),
        "warning `{warning}` does not mention `{needle}`"
    );
    // The cold session is fully usable.
    let sid = session_id(&opened);
    client
        .request(
            "slice",
            [
                ("session", Json::str(&sid)),
                ("criterion", printf_criterion()),
            ],
        )
        .expect("slice on degraded session");
    handle.stop();
}

#[test]
fn truncated_snapshot_degrades_to_cold_open() {
    let (dir, path, bytes) = good_snapshot("truncated");
    for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 3] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        // Any prefix cut lands as a truncation or a checksum failure —
        // both structured, both mentioning "snapshot".
        assert_degrades(&dir, "snapshot");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_degrades_to_cold_open() {
    let (dir, path, mut bytes) = good_snapshot("corrupt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert_degrades(&dir, "snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bumped_snapshot_degrades_to_cold_open() {
    let (dir, path, mut bytes) = good_snapshot("version");
    // The format version is the u32 after the 8-byte magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert_degrades(&dir, "version");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot written by the previous (version 2) format revision — the
/// committed fixture, not a synthesized version byte — is reported as a
/// structured version error and the open degrades cold.
#[test]
fn committed_v2_snapshot_degrades_to_cold_open() {
    let (dir, path, _) = good_snapshot("v2-fixture");
    std::fs::write(&path, include_bytes!("fixtures/v2.snap")).unwrap();
    assert_degrades(&dir, "version 2");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Forward and chop answers populate direction-tagged memo entries that
/// survive shutdown → restart: the restarted server imports them and
/// answers the repeated queries with byte-identical frames.
#[test]
fn forward_and_chop_entries_survive_restart_byte_identically() {
    let dir = temp_dir("fwd-roundtrip");

    let forward_params = |sid: &str| {
        [
            ("session", Json::str(sid)),
            (
                "criterion",
                Json::obj([
                    ("kind", Json::str("all_contexts")),
                    ("vertices", Json::arr([Json::Int(1)])),
                ]),
            ),
        ]
    };
    let chop_params = |sid: &str| {
        [
            ("session", Json::str(sid)),
            (
                "source",
                Json::obj([
                    ("kind", Json::str("all_contexts")),
                    ("vertices", Json::arr([Json::Int(1)])),
                ]),
            ),
            ("target", printf_criterion()),
        ]
    };

    let (handle, addr) = server_on(&dir, None);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opened = open(&mut client, PROGRAM);
    let sid = session_id(&opened);
    let cold_fwd = client
        .request_bytes("forward_slice", forward_params(&sid))
        .expect("cold forward_slice");
    let cold_chop = client
        .request_bytes("chop", chop_params(&sid))
        .expect("cold chop");
    client.request("shutdown", []).expect("shutdown");
    handle.wait();

    let (handle, addr) = server_on(&dir, None);
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    let opened = open(&mut client, PROGRAM);
    assert_eq!(
        opened.get("warm").and_then(Json::as_bool),
        Some(true),
        "restart was not warm: {}",
        opened.to_text()
    );
    // The cold run memoized the forward entry plus the chop's backward
    // constituent — both direction-tagged entries must come back.
    assert!(
        opened
            .get("memo_imported")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 2,
        "expected the forward and backward entries back: {}",
        opened.to_text()
    );
    let warm_fwd = client
        .request_bytes("forward_slice", forward_params(&sid))
        .expect("warm forward_slice");
    let warm_chop = client
        .request_bytes("chop", chop_params(&sid))
        .expect("warm chop");
    assert_eq!(warm_fwd, cold_fwd, "forward slice changed across restart");
    assert_eq!(warm_chop, cold_chop, "chop changed across restart");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trailing_garbage_snapshot_degrades_to_cold_open() {
    let (dir, path, mut bytes) = good_snapshot("trailing");
    bytes.extend_from_slice(b"extra");
    std::fs::write(&path, &bytes).unwrap();
    assert_degrades(&dir, "snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}
