//! Wire-protocol conformance: handshake enforcement, frame-size limits,
//! malformed-frame recovery, and the structured error surface.

use specslice_server::proto::{
    read_frame, read_frame_bytes, write_frame, FrameError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use specslice_server::{serve, Bind, Client, ClientError, Json, ServerConfig};
use std::io::Write;
use std::net::TcpStream;

const PROGRAM: &str = r#"
    int g;
    void inc(int x) { g = g + x; }
    int main() { g = 0; inc(2); inc(3); printf("%d", g); return 0; }
"#;

fn start(max_frame: usize) -> (specslice_server::Handle, String) {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
    config.threads = Some(1);
    config.max_frame = max_frame;
    let handle = serve(config).expect("bind");
    let addr = handle.addr.clone();
    (handle, addr)
}

fn error_kind(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("kind")?.as_str()
}

fn request_err(
    client: &mut Client<TcpStream>,
    op: &str,
    params: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    match client.request(op, params) {
        Err(ClientError::Server(payload)) => payload,
        other => panic!("expected a server error, got {other:?}"),
    }
}

#[test]
fn first_request_must_be_hello() {
    let (handle, addr) = start(DEFAULT_MAX_FRAME);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(
        &mut stream,
        &Json::obj([("op", Json::str("stats")), ("id", Json::Int(1))]),
    )
    .unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("rejection frame");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&resp), Some("proto"));
    // The connection is closed after the rejection.
    assert!(matches!(
        read_frame(&mut stream, DEFAULT_MAX_FRAME),
        Err(FrameError::Eof) | Err(FrameError::Io(_))
    ));
    handle.stop();
}

#[test]
fn version_mismatch_is_rejected() {
    let (handle, addr) = start(DEFAULT_MAX_FRAME);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(
        &mut stream,
        &Json::obj([
            ("op", Json::str("hello")),
            ("id", Json::Int(1)),
            ("version", Json::Int(i64::from(PROTOCOL_VERSION) + 1)),
        ]),
    )
    .unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("rejection frame");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&resp), Some("proto"));
    let message = resp
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(message.contains("version"), "{message}");
    assert!(matches!(
        read_frame(&mut stream, DEFAULT_MAX_FRAME),
        Err(FrameError::Eof) | Err(FrameError::Io(_))
    ));
    handle.stop();
}

#[test]
fn oversized_frames_are_rejected_and_close_the_connection() {
    // Big enough for the handshake and small responses, far too small for
    // the program below.
    let (handle, addr) = start(256);
    let mut client = Client::connect_tcp(&addr).expect("handshake fits");
    let big_source = format!("int main() {{ return {}; }}", "0".repeat(1024));
    let bytes = client
        .request_bytes("open", [("source", Json::str(big_source))])
        .expect("rejection frame");
    let resp = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&resp), Some("proto"));
    let message = resp
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(message.contains("exceeds limit"), "{message}");
    // An oversized frame desynchronizes the stream, so the server closes it.
    assert!(client.request("stats", []).is_err());
    handle.stop();
}

#[test]
fn malformed_json_is_recoverable() {
    let (handle, addr) = start(DEFAULT_MAX_FRAME);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let garbage = b"]not json[";
    let stream = client.stream_mut();
    stream
        .write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(garbage).unwrap();
    stream.flush().unwrap();
    let reply = read_frame_bytes(stream, DEFAULT_MAX_FRAME).expect("error reply");
    let reply = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&reply), Some("proto"));
    // The frame boundary was intact, so the connection keeps serving.
    let stats = client.request("stats", []).expect("stats after garbage");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    handle.stop();
}

#[test]
fn structured_errors_cover_the_request_surface() {
    let (handle, addr) = start(DEFAULT_MAX_FRAME);
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // Unknown op.
    let e = request_err(&mut client, "frobnicate", []);
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("proto"));

    // Missing session / unknown session / non-hex session.
    let e = request_err(&mut client, "slice", [("criterion", Json::Null)]);
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("proto"));
    for bogus in ["0000000000000000", "not-hex-at-all"] {
        let e = request_err(
            &mut client,
            "slice",
            [
                ("session", Json::str(bogus)),
                (
                    "criterion",
                    Json::obj([("kind", Json::str("printf_actuals"))]),
                ),
            ],
        );
        assert_eq!(
            e.get("kind").and_then(Json::as_str),
            Some("unknown_session")
        );
    }

    // Frontend errors carry their kind and line.
    let e = request_err(&mut client, "open", [("source", Json::str("int main( {"))]);
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("parse"));
    assert!(
        e.get("line").and_then(Json::as_i64).is_some(),
        "{}",
        e.to_text()
    );

    // A valid session for the criterion/edit error cases.
    let opened = client
        .request("open", [("source", Json::str(PROGRAM))])
        .expect("open");
    let sid = opened
        .get("session")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let e = request_err(
        &mut client,
        "slice",
        [
            ("session", Json::str(&sid)),
            ("criterion", Json::obj([("kind", Json::str("telepathy"))])),
        ],
    );
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("bad_criterion"));

    let e = request_err(
        &mut client,
        "apply_edit",
        [
            ("session", Json::str(&sid)),
            ("edits", Json::arr([])),
            ("source", Json::str("int main() { return 0; }")),
        ],
    );
    assert_eq!(e.get("kind").and_then(Json::as_str), Some("proto"));

    // Explicit eviction invalidates the id.
    let evicted = client
        .request("evict", [("session", Json::str(&sid))])
        .expect("evict");
    assert_eq!(evicted.get("evicted").and_then(Json::as_bool), Some(true));
    let e = request_err(
        &mut client,
        "slice",
        [
            ("session", Json::str(&sid)),
            (
                "criterion",
                Json::obj([("kind", Json::str("printf_actuals"))]),
            ),
        ],
    );
    assert_eq!(
        e.get("kind").and_then(Json::as_str),
        Some("unknown_session")
    );

    handle.stop();
}

#[test]
fn hello_reports_version_and_frame_limit() {
    let (handle, addr) = start(4096);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(
        &mut stream,
        &Json::obj([
            ("op", Json::str("hello")),
            ("id", Json::Int(7)),
            ("version", Json::Int(i64::from(PROTOCOL_VERSION))),
        ]),
    )
    .unwrap();
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("hello response");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("id").and_then(Json::as_i64), Some(7));
    assert_eq!(
        resp.get("version").and_then(Json::as_i64),
        Some(i64::from(PROTOCOL_VERSION))
    );
    assert_eq!(resp.get("max_frame").and_then(Json::as_i64), Some(4096));
    handle.stop();
}
