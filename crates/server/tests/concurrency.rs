//! End-to-end concurrency: N client threads hammer one session with mixed
//! `slice` / `forward_slice` / `chop` / `slice_batch` / `remove_feature`
//! requests while another
//! connection applies an edit between phases. Every raw response frame must
//! be byte-identical to a sequential replay on a fresh server — and must
//! stay byte-identical across server thread widths 1, 2, and 4, which is
//! the determinism contract the wire format promises.

use specslice_server::proto::{read_frame_bytes, DEFAULT_MAX_FRAME};
use specslice_server::{serve, Bind, Client, Json, ServerConfig};
use std::io::Write;

const PROGRAM: &str = r#"
    int total;
    int count;
    void add(int x) { total = total + x; count = count + 1; }
    int avg() { if (count == 0) { return 0; } return total / count; }
    int main() {
        int i;
        i = 0;
        total = 0;
        count = 0;
        while (i < 5) { add(i); i = i + 1; }
        printf("%d\n", avg());
        return 0;
    }
"#;

const EDITED_ADD: &str = "void add(int x) { total = total + x + 0; count = count + 1; }";

const WORKERS: usize = 4;
const ROUNDS: usize = 3;

fn printf_criterion() -> Json {
    Json::obj([("kind", Json::str("printf_actuals"))])
}

fn all_contexts(vertices: &[u32]) -> Json {
    Json::obj([
        ("kind", Json::str("all_contexts")),
        (
            "vertices",
            Json::arr(vertices.iter().map(|&v| Json::Int(i64::from(v)))),
        ),
    ])
}

/// One request a worker will send: `(op, params)`.
type Op = (&'static str, Vec<(&'static str, Json)>);

/// The deterministic request script for worker `w` against `session`. Each
/// worker mixes single slices, batches, and feature removals over criteria
/// that differ per worker, so concurrent requests genuinely interleave
/// distinct pipeline queries.
fn worker_script(w: usize, session: &str) -> Vec<Op> {
    let sid = || ("session", Json::str(session));
    let mut ops: Vec<Op> = Vec::new();
    for round in 0..ROUNDS {
        let v = (w * ROUNDS + round) as u32 + 1;
        ops.push(("slice", vec![sid(), ("criterion", printf_criterion())]));
        ops.push(("slice", vec![sid(), ("criterion", all_contexts(&[v]))]));
        ops.push((
            "slice_batch",
            vec![
                sid(),
                (
                    "criteria",
                    Json::arr([printf_criterion(), all_contexts(&[v, v + 1])]),
                ),
            ],
        ));
        ops.push((
            "forward_slice",
            vec![sid(), ("criterion", all_contexts(&[v]))],
        ));
        ops.push((
            "chop",
            vec![
                sid(),
                ("source", all_contexts(&[v])),
                ("target", printf_criterion()),
            ],
        ));
        ops.push((
            "remove_feature",
            vec![sid(), ("criterion", all_contexts(&[1]))],
        ));
    }
    ops
}

/// Connects a fresh client and plays `ops`, returning each raw response
/// frame. Request ids are per-connection counters, so as long as replay
/// opens connections with the same request order, the ids — and therefore
/// the full frames — line up byte-for-byte.
fn play(addr: &str, ops: Vec<Op>) -> Vec<Vec<u8>> {
    let mut client = Client::connect_tcp(addr).expect("connect");
    ops.into_iter()
        .map(|(op, params)| client.request_bytes(op, params).expect("request"))
        .collect()
}

struct RunOutput {
    phase_a: Vec<Vec<Vec<u8>>>,
    phase_b: Vec<Vec<Vec<u8>>>,
    edited_session: String,
}

fn start(threads: usize) -> (specslice_server::Handle, String) {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
    config.threads = Some(threads);
    let handle = serve(config).expect("bind");
    let addr = handle.addr.clone();
    (handle, addr)
}

fn open_session(client: &mut Client<std::net::TcpStream>) -> String {
    let opened = client
        .request("open", [("source", Json::str(PROGRAM))])
        .expect("open");
    opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_string()
}

fn apply_the_edit(client: &mut Client<std::net::TcpStream>, session: &str) -> String {
    let edited = client
        .request(
            "apply_edit",
            [
                ("session", Json::str(session)),
                (
                    "edits",
                    Json::arr([Json::obj([
                        ("kind", Json::str("replace_function")),
                        ("source", Json::str(EDITED_ADD)),
                    ])]),
                ),
            ],
        )
        .expect("apply_edit");
    edited
        .get("session")
        .and_then(Json::as_str)
        .expect("new session id")
        .to_string()
}

/// Phase B alternates between the pre-edit id (which must resolve through
/// the alias) and the post-edit id; both address the same edited session.
fn phase_b_session<'a>(w: usize, old: &'a str, new: &'a str) -> &'a str {
    if w.is_multiple_of(2) {
        old
    } else {
        new
    }
}

/// The concurrent run: workers hammer in parallel within each phase, with
/// the edit applied at the barrier between phases.
fn concurrent_run(threads: usize) -> RunOutput {
    let (handle, addr) = start(threads);
    let mut main = Client::connect_tcp(&addr).expect("connect main");
    let session = open_session(&mut main);

    let spawn_phase = |scripts: Vec<Vec<Op>>| -> Vec<Vec<Vec<u8>>> {
        let threads: Vec<_> = scripts
            .into_iter()
            .map(|ops| {
                let addr = addr.clone();
                std::thread::spawn(move || play(&addr, ops))
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("worker"))
            .collect()
    };

    let phase_a = spawn_phase((0..WORKERS).map(|w| worker_script(w, &session)).collect());
    let edited_session = apply_the_edit(&mut main, &session);
    let phase_b = spawn_phase(
        (0..WORKERS)
            .map(|w| worker_script(w, phase_b_session(w, &session, &edited_session)))
            .collect(),
    );

    handle.stop();
    RunOutput {
        phase_a,
        phase_b,
        edited_session,
    }
}

/// The sequential replay: identical connection structure and request order,
/// but one worker at a time on a single-threaded server.
fn sequential_replay() -> RunOutput {
    let (handle, addr) = start(1);
    let mut main = Client::connect_tcp(&addr).expect("connect main");
    let session = open_session(&mut main);

    let phase_a = (0..WORKERS)
        .map(|w| play(&addr, worker_script(w, &session)))
        .collect();
    let edited_session = apply_the_edit(&mut main, &session);
    let phase_b = (0..WORKERS)
        .map(|w| {
            play(
                &addr,
                worker_script(w, phase_b_session(w, &session, &edited_session)),
            )
        })
        .collect();

    handle.stop();
    RunOutput {
        phase_a,
        phase_b,
        edited_session,
    }
}

fn assert_identical(tag: &str, got: &RunOutput, want: &RunOutput) {
    assert_eq!(
        got.edited_session, want.edited_session,
        "{tag}: edit re-keyed to a different session id"
    );
    for (phase, got_phase, want_phase) in [
        ("A", &got.phase_a, &want.phase_a),
        ("B", &got.phase_b, &want.phase_b),
    ] {
        for (w, (g, s)) in got_phase.iter().zip(want_phase).enumerate() {
            assert_eq!(g.len(), s.len(), "{tag}: phase {phase} worker {w} count");
            for (i, (gb, sb)) in g.iter().zip(s).enumerate() {
                assert_eq!(
                    gb,
                    sb,
                    "{tag}: phase {phase} worker {w} response {i} differs:\n  concurrent: {}\n  sequential: {}",
                    String::from_utf8_lossy(gb),
                    String::from_utf8_lossy(sb),
                );
            }
        }
    }
}

#[test]
fn concurrent_responses_are_byte_identical_to_sequential_replay() {
    let baseline = sequential_replay();
    for threads in [1, 2, 4] {
        let got = concurrent_run(threads);
        assert_identical(&format!("threads={threads}"), &got, &baseline);
    }
}

/// A connection spraying malformed frames must get structured `proto`
/// errors without desynchronizing its own stream or poisoning the shared
/// session for anyone else.
#[test]
fn malformed_requests_do_not_poison_the_session() {
    let (handle, addr) = start(2);
    let mut main = Client::connect_tcp(&addr).expect("connect main");
    let session = open_session(&mut main);

    let strip_id = |bytes: &[u8]| {
        let v = Json::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
        match v {
            Json::Object(mut m) => {
                m.remove("id");
                Json::Object(m).to_text()
            }
            other => other.to_text(),
        }
    };
    let baseline = strip_id(
        &main
            .request_bytes(
                "slice",
                [
                    ("session", Json::str(&session)),
                    ("criterion", printf_criterion()),
                ],
            )
            .expect("baseline slice"),
    );

    // Hammer the session from two clean workers while a third connection
    // alternates garbage frames with valid requests.
    let hammers: Vec<_> = (0..2)
        .map(|w| {
            let addr = addr.clone();
            let session = session.clone();
            std::thread::spawn(move || play(&addr, worker_script(w, &session)))
        })
        .collect();

    let mut vandal = Client::connect_tcp(&addr).expect("connect vandal");
    for _ in 0..5 {
        // A well-framed payload that is not JSON: the server must answer a
        // structured error and keep the connection.
        let garbage = b"{this is not json";
        let stream = vandal.stream_mut();
        stream
            .write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(garbage).unwrap();
        stream.flush().unwrap();
        let reply = read_frame_bytes(stream, DEFAULT_MAX_FRAME).expect("error reply");
        let reply = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("proto")
        );
        // The same connection keeps working afterwards.
        let ok = strip_id(
            &vandal
                .request_bytes(
                    "slice",
                    [
                        ("session", Json::str(&session)),
                        ("criterion", printf_criterion()),
                    ],
                )
                .expect("post-garbage slice"),
        );
        assert_eq!(ok, baseline, "session answered differently after garbage");
    }

    for h in hammers {
        h.join().expect("hammer worker");
    }
    // And the session still answers everyone else identically.
    let again = strip_id(
        &main
            .request_bytes(
                "slice",
                [
                    ("session", Json::str(&session)),
                    ("criterion", printf_criterion()),
                ],
            )
            .expect("final slice"),
    );
    assert_eq!(again, baseline);
    handle.stop();
}
