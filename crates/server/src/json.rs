//! A minimal JSON encoder/decoder — the wire format of the server's
//! protocol, in-tree in the style of the workspace's other shims
//! (`specslice_corpus::rng` for `rand`, `specslice_bench::timer` for
//! Criterion): the container has no third-party crates, and the protocol
//! needs only a small, strict, *deterministic* subset of JSON.
//!
//! Determinism matters more than ergonomics here: object members are kept
//! in a `BTreeMap`, so a [`Json`] value always serializes to the same
//! bytes — which is what lets the protocol tests assert that concurrent
//! multi-client responses are *byte-identical* to a sequential replay, and
//! lets the bench snapshot wire-byte counters that hold on every machine.
//!
//! The decoder is strict (no trailing garbage, no unescaped control
//! characters, `\uXXXX` escapes with surrogate pairs) and defends the
//! server against hostile input with a nesting-depth limit.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol payloads are a few
/// levels deep; a thousand-bracket frame is an attack, not a request.
const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Numbers distinguish integers from floats so that ids and counters
/// round-trip exactly: `Int` covers every number the protocol itself emits,
/// `Float` is kept for completeness (e.g. wall-clock fields in stats).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Ordered map ⇒ deterministic serialization.
    Object(BTreeMap<String, Json>),
}

/// A JSON syntax error: byte offset plus description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs (the protocol's response
    /// builders read better with this than with `BTreeMap` plumbing).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array from anything yielding values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// The member `key` of an object (`None` for other shapes).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a `u32`, when in range.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_i64().and_then(|n| u32::try_from(n).ok())
    }

    /// The integer payload as a `usize`, when in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON value from `src` (the whole input must be consumed,
    /// modulo surrounding whitespace).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serializes the value (compact, deterministic: object members in key
    /// order, integers without decimal points).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                    // `{}` prints integral floats without a point; keep the
                    // float-ness visible so it parses back as a Float.
                    if x.fract() == 0.0 && !out.ends_with(['e', '.']) {
                        let tail: String = out
                            .chars()
                            .rev()
                            .take_while(|c| c.is_ascii_digit() || *c == '-')
                            .collect();
                        if !tail.is_empty() {
                            out.push_str(".0");
                        }
                    }
                } else {
                    // JSON has no NaN/Inf; emit null rather than invalid text.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Json::write`] into a fresh string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("integer out of range `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8; find the scalar's width).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> String {
        Json::parse(src).unwrap().to_text()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip("false"), "false");
        assert_eq!(round_trip("42"), "42");
        assert_eq!(round_trip("-7"), "-7");
        assert_eq!(round_trip("1.5"), "1.5");
        assert_eq!(
            round_trip("\"hi\\n\\\"there\\\"\""),
            "\"hi\\n\\\"there\\\"\""
        );
    }

    #[test]
    fn objects_serialize_in_key_order() {
        let v = Json::parse(r#"{"b":1, "a":[2,3], "c":{"z":null}}"#).unwrap();
        assert_eq!(v.to_text(), r#"{"a":[2,3],"b":1,"c":{"z":null}}"#);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair: 😀 U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        // Non-ASCII passes through and re-escapes only what JSON requires.
        assert_eq!(round_trip("\"héllo\""), "\"héllo\"");
    }

    #[test]
    fn strictness() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("42 junk").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\u{1}\"").is_err());
        assert!(Json::parse("01e").is_err());
        assert!(Json::parse(&format!("{}1{}", "[".repeat(100), "]".repeat(100))).is_err());
    }

    #[test]
    fn float_formatting_stays_float() {
        assert_eq!(Json::Float(2.0).to_text(), "2.0");
        assert_eq!(Json::Float(0.5).to_text(), "0.5");
        assert_eq!(Json::Float(f64::NAN).to_text(), "null");
        let t = Json::Float(1e300).to_text();
        assert!(Json::parse(&t).is_ok(), "{t}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u32), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u32(), None);
    }
}
