//! The `specslice-server` binary: parse flags, bind, serve until a client
//! sends `shutdown`.

use specslice::Solver;
use specslice_server::{run, Bind, ServerConfig, DEFAULT_MAX_FRAME};
use std::process::ExitCode;

const USAGE: &str = "\
specslice-server — long-lived specialization-slicing daemon

USAGE:
    specslice-server (--tcp ADDR | --unix PATH) [OPTIONS]

OPTIONS:
    --tcp ADDR            listen on a TCP address (e.g. 127.0.0.1:7878;
                          port 0 lets the OS pick — the bound address is
                          printed on startup)
    --unix PATH           listen on a unix-domain socket at PATH
    --snapshot-dir DIR    persist session snapshots under DIR (enables
                          warm restarts)
    --budget-bytes N      evict cold sessions (LRU) once the summed session
                          estimate exceeds N bytes
    --threads N           worker threads per session batch (default: the
                          SPECSLICE_NUM_THREADS / available-parallelism
                          default)
    --solver NAME         batch solver: one-pass | per-criterion (default:
                          the SPECSLICE_SOLVER / one-pass default)
    --max-frame N         maximum request/response frame size in bytes
                          (default 16 MiB)
    --help                print this help
";

fn fail(message: &str) -> ExitCode {
    eprintln!("specslice-server: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut bind: Option<Bind> = None;
    let mut snapshot_dir = None;
    let mut budget_bytes = None;
    let mut threads = None;
    let mut solver = None;
    let mut max_frame = DEFAULT_MAX_FRAME;

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--tcp" => match value("--tcp") {
                Ok(v) => bind = Some(Bind::Tcp(v)),
                Err(e) => return fail(&e),
            },
            "--unix" => match value("--unix") {
                Ok(v) => bind = Some(Bind::Unix(v.into())),
                Err(e) => return fail(&e),
            },
            "--snapshot-dir" => match value("--snapshot-dir") {
                Ok(v) => snapshot_dir = Some(v.into()),
                Err(e) => return fail(&e),
            },
            "--budget-bytes" => match value("--budget-bytes").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) => budget_bytes = Some(v),
                Ok(Err(e)) => return fail(&format!("--budget-bytes: {e}")),
                Err(e) => return fail(&e),
            },
            "--threads" => match value("--threads").map(|v| specslice_exec::parse_thread_count(&v))
            {
                Ok(Ok(v)) => threads = Some(v),
                Ok(Err(e)) => return fail(&format!("--threads: {e}")),
                Err(e) => return fail(&e),
            },
            "--solver" => match value("--solver") {
                Ok(v) => match Solver::parse(&v) {
                    Some(s) => solver = Some(s),
                    None => {
                        return fail(&format!(
                            "--solver: `{v}` is not one of one-pass | per-criterion"
                        ))
                    }
                },
                Err(e) => return fail(&e),
            },
            "--max-frame" => match value("--max-frame").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) => max_frame = v,
                Ok(Err(e)) => return fail(&format!("--max-frame: {e}")),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    let Some(bind) = bind else {
        return fail("a listen address is required (--tcp or --unix)");
    };

    // Surface a malformed SPECSLICE_NUM_THREADS as a structured startup
    // error instead of a clamped warning: a daemon's thread width should be
    // what the operator asked for, or an error.
    if threads.is_none() {
        match specslice_exec::configured_threads() {
            Ok(configured) => threads = configured,
            Err(e) => return fail(&format!("invalid SPECSLICE_NUM_THREADS: {e}")),
        }
    }

    let config = ServerConfig {
        bind,
        snapshot_dir,
        budget_bytes,
        threads,
        solver,
        max_frame,
    };
    match run(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("specslice-server: {e}");
            ExitCode::FAILURE
        }
    }
}
