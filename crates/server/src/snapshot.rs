//! Session snapshots: a compact binary image of a session's normalized
//! source and its criterion → slice memo, written on eviction and shutdown
//! and loaded on `open` for warm starts.
//!
//! # Format (all integers little-endian)
//!
//! ```text
//! snapshot := magic version key source entries checksum
//! magic    := "SSLSNAP\0"                      (8 bytes)
//! version  := u32                              (FORMAT_VERSION)
//! key      := u64     content hash of the normalized source
//! source   := u32 len, then len bytes of UTF-8 (normalized pretty-printed)
//! entries  := u32 count, then count × entry
//! entry    := memo-key nfa variants main stats
//! memo-key := tag body
//! tag      := 0x00 | 0x01   -- backward entry (all-contexts | configurations)
//!           | 0x02 | 0x03   -- forward entry  (all-contexts | configurations)
//! body     := u32 count (u32 vertex)×count                                (tags 0x00/0x02)
//!           | u32 count (u32 vertex, u32 depth, (u32 site)×depth)×count   (tags 0x01/0x03)
//! nfa      := u32 n_states
//!             u32 n_finals (u32 state)×n_finals
//!             u32 n_trans  (u32 from, u32 label, u32 to)×n_trans
//!             -- label 0 is ε; label k>0 encodes Symbol(k-1)
//! variants := u32 count, then count ×
//!             (u32 proc, str name, u32 n_calls (u32 site, u32 callee)×n,
//!              u32 state, u32 row_len (u32 vertex)×row_len)
//! str      := u32 len, then len bytes of UTF-8
//! main     := u32     variant index; 0xFFFF_FFFF encodes "no main variant"
//! stats    := 19 × u64  (PipelineStats sizes + MrdStats + saturation
//!             counters + per-direction memo counters + query µs)
//! checksum := u64     FNV-1a over every preceding byte
//! ```
//!
//! Decoding is fully bounds-checked and returns structured
//! [`SnapshotError`]s — a truncated, corrupted, or version-bumped file is
//! reported, never a panic. The checksum is verified before any field is
//! interpreted, so random corruption is caught up front; the per-field
//! checks behind it catch *structured* corruption (and snapshots written by
//! a different program — the caller compares [`Snapshot::key`] against the
//! session key it derived from the source).

use crate::json::Json;
use crate::proto::{self, error_payload};
use specslice::{Direction, MemoExport, MemoExportVariant, MemoKeyExport, PipelineStats};
use specslice_fsa::mrd::MrdStats;
use specslice_fsa::{Nfa, StateId, Symbol};
use std::fmt;
use std::time::Duration;

/// Leading magic bytes of a snapshot file.
pub const MAGIC: &[u8; 8] = b"SSLSNAP\0";

/// Current snapshot format version. Version 2 widened the stats block with
/// the `saturations_run` / `criteria_per_saturation` counters; version 3
/// tagged memo keys with the saturation direction (forward entries use tags
/// 0x02/0x03) and widened the stats block with the per-direction memo
/// hit/miss counters.
pub const FORMAT_VERSION: u32 = 3;

/// Sentinel for "no main variant".
const NO_MAIN: u32 = u32::MAX;

/// Why a snapshot file was rejected.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file ends before a declared field.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
        /// The field being decoded.
        field: &'static str,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// A field decodes but violates the format's invariants.
    Corrupt(String),
    /// The snapshot's content hash does not match the session it was opened
    /// for.
    KeyMismatch {
        /// Hash the session derived from the source.
        expected: u64,
        /// Hash recorded in the snapshot.
        found: u64,
    },
    /// Filesystem error while reading or writing the snapshot.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { offset, field } => {
                write!(
                    f,
                    "snapshot truncated at byte {offset} while reading {field}"
                )
            }
            SnapshotError::BadMagic => write!(f, "not a specslice snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format version {found} not supported (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            SnapshotError::KeyMismatch { expected, found } => write!(
                f,
                "snapshot is for a different program (key {found:016x}, session {expected:016x})"
            ),
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl SnapshotError {
    /// The structured wire payload for this error (kind `snapshot`).
    pub fn payload(&self) -> Json {
        error_payload(proto::kind::SNAPSHOT, self.to_string())
    }
}

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Content hash of the normalized source (the session key).
    pub key: u64,
    /// The normalized (pretty-printed) program source.
    pub source: String,
    /// The exported memo entries.
    pub entries: Vec<MemoExport>,
}

/// FNV-1a over `bytes` — the same deterministic construction as
/// `specslice_fsa::hash`, restated here because the snapshot format is
/// defined by this module, not by whatever the hash crate evolves into.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn u32_slice(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }
}

/// Encodes a snapshot image for `source` (hash `key`) and its exported memo
/// `entries`.
pub fn encode(key: u64, source: &str, entries: &[MemoExport]) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.buf.extend_from_slice(MAGIC);
    e.u32(FORMAT_VERSION);
    e.u64(key);
    e.str(source);
    e.u32(entries.len() as u32);
    for entry in entries {
        let dir_tag = match entry.direction {
            Direction::Backward => 0u8,
            Direction::Forward => 2u8,
        };
        match &entry.key {
            MemoKeyExport::AllContexts(vs) => {
                e.buf.push(dir_tag);
                e.u32_slice(vs);
            }
            MemoKeyExport::Configurations(cs) => {
                e.buf.push(dir_tag | 1);
                e.u32(cs.len() as u32);
                for (v, stack) in cs {
                    e.u32(*v);
                    e.u32_slice(stack);
                }
            }
        }
        encode_nfa(&mut e, &entry.a6);
        e.u32(entry.variants.len() as u32);
        for v in &entry.variants {
            e.u32(v.proc);
            e.str(&v.name);
            e.u32(v.calls.len() as u32);
            for &(site, callee) in &v.calls {
                e.u32(site);
                e.u32(callee);
            }
            e.u32(v.state);
            e.u32_slice(&v.row);
        }
        e.u32(entry.main_variant.unwrap_or(NO_MAIN));
        encode_stats(&mut e, &entry.stats);
    }
    let checksum = fnv1a(&e.buf);
    e.u64(checksum);
    e.buf
}

fn encode_nfa(e: &mut Enc, a: &Nfa) {
    e.u32(a.state_count() as u32);
    e.u32(a.finals().len() as u32);
    for &q in a.finals() {
        e.u32(q.0);
    }
    let transitions: Vec<_> = a.transitions().collect();
    e.u32(transitions.len() as u32);
    for (from, label, to) in transitions {
        e.u32(from.0);
        e.u32(label.map_or(0, |s| s.0 + 1));
        e.u32(to.0);
    }
}

fn encode_stats(e: &mut Enc, s: &PipelineStats) {
    for v in [
        s.pds_rules,
        s.prestar_transitions,
        s.prestar_peak_bytes,
        s.prestar_rule_applications,
        s.prestar_peak_worklist,
        s.a1_states,
        s.a1_transitions,
        s.mrd.input_states,
        s.mrd.determinized_states,
        s.mrd.minimized_states,
        s.mrd.mrd_states,
        s.mrd.mrd_transitions,
        s.saturations_run,
        s.criteria_per_saturation,
        s.memo_hits_backward,
        s.memo_misses_backward,
        s.memo_hits_forward,
        s.memo_misses_forward,
    ] {
        e.u64(v as u64);
    }
    e.u64(s.query_time.as_micros() as u64);
}

// ---------------------------------------------------------------- decoding

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                offset: self.pos,
                field,
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a count field, rejecting counts that could not possibly fit in
    /// the remaining bytes (each element is at least `min_elem_bytes`) —
    /// this keeps a corrupt count from driving a huge allocation.
    fn count(
        &mut self,
        field: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, SnapshotError> {
        let n = self.u32(field)? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "count {n} for {field} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }

    fn str(&mut self, field: &'static str) -> Result<String, SnapshotError> {
        let len = self.count(field, 1)?;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("{field} is not UTF-8")))
    }

    fn u32_vec(&mut self, field: &'static str) -> Result<Vec<u32>, SnapshotError> {
        let n = self.count(field, 4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(field)?);
        }
        Ok(out)
    }
}

/// Decodes a snapshot image.
///
/// # Errors
///
/// Any [`SnapshotError`] except `KeyMismatch`/`Io` (those are produced by
/// callers that know the expected key / touch the filesystem).
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    // Checksum first: the trailing 8 bytes must be FNV-1a of the rest.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
            field: "header",
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut d = Dec {
        bytes,
        pos: MAGIC.len(),
    };
    let version = d.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(content) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    // Re-scope the decoder to the checksummed content.
    d.bytes = content;

    let key = d.u64("key")?;
    let source = d.str("source")?;
    let n_entries = d.count("entry count", 2)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        entries.push(decode_entry(&mut d)?);
    }
    if d.pos != content.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after last entry",
            content.len() - d.pos
        )));
    }
    Ok(Snapshot {
        key,
        source,
        entries,
    })
}

fn decode_entry(d: &mut Dec<'_>) -> Result<MemoExport, SnapshotError> {
    let tag = d.take(1, "key tag")?[0];
    if tag > 3 {
        return Err(SnapshotError::Corrupt(format!(
            "unknown memo-key tag {tag}"
        )));
    }
    let direction = if tag & 2 == 0 {
        Direction::Backward
    } else {
        Direction::Forward
    };
    let key = if tag & 1 == 0 {
        MemoKeyExport::AllContexts(d.u32_vec("all-contexts key")?)
    } else {
        let n = d.count("configurations key", 8)?;
        let mut cs = Vec::with_capacity(n);
        for _ in 0..n {
            let v = d.u32("configuration vertex")?;
            let stack = d.u32_vec("configuration stack")?;
            cs.push((v, stack));
        }
        MemoKeyExport::Configurations(cs)
    };
    let a6 = decode_nfa(d)?;
    let n_variants = d.count("variant count", 20)?;
    let mut variants = Vec::with_capacity(n_variants);
    for _ in 0..n_variants {
        let proc = d.u32("variant proc")?;
        let name = d.str("variant name")?;
        let n_calls = d.count("variant call count", 8)?;
        let mut calls = Vec::with_capacity(n_calls);
        for _ in 0..n_calls {
            let site = d.u32("call site")?;
            let callee = d.u32("callee index")?;
            calls.push((site, callee));
        }
        let state = d.u32("variant state")?;
        let row = d.u32_vec("variant row")?;
        variants.push(MemoExportVariant {
            proc,
            name,
            calls,
            state,
            row,
        });
    }
    let main_variant = match d.u32("main variant")? {
        NO_MAIN => None,
        m => Some(m),
    };
    let stats = decode_stats(d)?;
    Ok(MemoExport {
        direction,
        key,
        a6,
        variants,
        main_variant,
        stats,
    })
}

fn decode_nfa(d: &mut Dec<'_>) -> Result<Nfa, SnapshotError> {
    let n_states = d.u32("nfa state count")?;
    if n_states == 0 {
        return Err(SnapshotError::Corrupt(
            "automaton with zero states".to_string(),
        ));
    }
    // An Nfa always has its initial state; guard the count so a corrupt
    // value cannot make us loop for 2^32 iterations.
    let remaining = d.bytes.len() - d.pos;
    if n_states as usize > remaining.saturating_mul(1024) + 1024 {
        return Err(SnapshotError::Corrupt(format!(
            "implausible automaton state count {n_states}"
        )));
    }
    let mut a = Nfa::new();
    for _ in 1..n_states {
        a.add_state();
    }
    let n_finals = d.count("nfa final count", 4)?;
    for _ in 0..n_finals {
        let q = d.u32("nfa final state")?;
        if q >= n_states {
            return Err(SnapshotError::Corrupt(format!(
                "final state {q} out of range (< {n_states})"
            )));
        }
        a.set_final(StateId(q));
    }
    let n_trans = d.count("nfa transition count", 12)?;
    for _ in 0..n_trans {
        let from = d.u32("transition source")?;
        let label = d.u32("transition label")?;
        let to = d.u32("transition target")?;
        if from >= n_states || to >= n_states {
            return Err(SnapshotError::Corrupt(format!(
                "transition {from}->{to} out of range (< {n_states})"
            )));
        }
        let label = match label {
            0 => None,
            k => Some(Symbol(k - 1)),
        };
        a.add_transition(StateId(from), label, StateId(to));
    }
    Ok(a)
}

fn decode_stats(d: &mut Dec<'_>) -> Result<PipelineStats, SnapshotError> {
    let mut read = |field| -> Result<usize, SnapshotError> {
        let v = d.u64(field)?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("{field} {v} exceeds usize")))
    };
    let pds_rules = read("stats.pds_rules")?;
    let prestar_transitions = read("stats.prestar_transitions")?;
    let prestar_peak_bytes = read("stats.prestar_peak_bytes")?;
    let prestar_rule_applications = read("stats.prestar_rule_applications")?;
    let prestar_peak_worklist = read("stats.prestar_peak_worklist")?;
    let a1_states = read("stats.a1_states")?;
    let a1_transitions = read("stats.a1_transitions")?;
    let input_states = read("stats.mrd.input_states")?;
    let determinized_states = read("stats.mrd.determinized_states")?;
    let minimized_states = read("stats.mrd.minimized_states")?;
    let mrd_states = read("stats.mrd.mrd_states")?;
    let mrd_transitions = read("stats.mrd.mrd_transitions")?;
    let saturations_run = read("stats.saturations_run")?;
    let criteria_per_saturation = read("stats.criteria_per_saturation")?;
    let memo_hits_backward = read("stats.memo_hits_backward")?;
    let memo_misses_backward = read("stats.memo_misses_backward")?;
    let memo_hits_forward = read("stats.memo_hits_forward")?;
    let memo_misses_forward = read("stats.memo_misses_forward")?;
    let micros = d.u64("stats.query_micros")?;
    Ok(PipelineStats {
        pds_rules,
        prestar_transitions,
        prestar_peak_bytes,
        prestar_rule_applications,
        prestar_peak_worklist,
        a1_states,
        a1_transitions,
        mrd: MrdStats {
            input_states,
            determinized_states,
            minimized_states,
            mrd_states,
            mrd_transitions,
        },
        saturations_run,
        criteria_per_saturation,
        memo_hits_backward,
        memo_misses_backward,
        memo_hits_forward,
        memo_misses_forward,
        query_time: Duration::from_micros(micros),
    })
}

// ---------------------------------------------------------------- file i/o

/// Writes a snapshot image atomically: to `path` with a `.tmp` suffix, then
/// renamed into place, so a crash mid-write never leaves a torn file where
/// the loader will look.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failures.
pub fn write_file(path: &std::path::Path, image: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, image).map_err(SnapshotError::Io)?;
    std::fs::rename(&tmp, path).map_err(SnapshotError::Io)
}

/// Reads and decodes a snapshot, verifying it matches `expected_key`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be read, any decode error,
/// and [`SnapshotError::KeyMismatch`] when the snapshot belongs to a
/// different program.
pub fn read_file(path: &std::path::Path, expected_key: u64) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    let snapshot = decode(&bytes)?;
    if snapshot.key != expected_key {
        return Err(SnapshotError::KeyMismatch {
            expected: expected_key,
            found: snapshot.key,
        });
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<MemoExport> {
        let mut a6 = Nfa::new();
        let q1 = a6.add_state();
        a6.add_transition(a6.initial(), Some(Symbol(3)), q1);
        a6.add_transition(q1, None, q1);
        a6.set_final(q1);
        let backward = MemoExport {
            direction: Direction::Backward,
            key: MemoKeyExport::AllContexts(vec![1, 4, 7]),
            a6,
            variants: vec![MemoExportVariant {
                proc: 0,
                name: "main".to_string(),
                calls: vec![(0, 1), (2, 0)],
                state: 1,
                row: vec![1, 4, 7],
            }],
            main_variant: Some(0),
            stats: PipelineStats {
                pds_rules: 10,
                prestar_transitions: 20,
                prestar_peak_bytes: 30,
                prestar_rule_applications: 40,
                prestar_peak_worklist: 5,
                a1_states: 6,
                a1_transitions: 7,
                mrd: MrdStats {
                    input_states: 6,
                    determinized_states: 5,
                    minimized_states: 4,
                    mrd_states: 4,
                    mrd_transitions: 8,
                },
                saturations_run: 1,
                criteria_per_saturation: 3,
                memo_hits_backward: 0,
                memo_misses_backward: 1,
                memo_hits_forward: 0,
                memo_misses_forward: 0,
                query_time: Duration::from_micros(1234),
            },
        };
        // A forward entry with the same select shape (tag 0x02 must not
        // collide with tag 0x00) plus a forward configurations key (0x03).
        let mut forward = backward.clone();
        forward.direction = Direction::Forward;
        forward.stats.memo_misses_backward = 0;
        forward.stats.memo_misses_forward = 1;
        let mut forward_cfg = forward.clone();
        forward_cfg.key = MemoKeyExport::Configurations(vec![(1, vec![0, 2]), (4, vec![])]);
        vec![backward, forward, forward_cfg]
    }

    #[test]
    fn round_trip() {
        let entries = sample_entries();
        let image = encode(0xDEAD_BEEF, "int main() { return 0; }", &entries);
        let snap = decode(&image).unwrap();
        assert_eq!(snap.key, 0xDEAD_BEEF);
        assert_eq!(snap.source, "int main() { return 0; }");
        assert_eq!(snap.entries.len(), 3);
        let e = &snap.entries[0];
        assert_eq!(e.direction, Direction::Backward);
        assert_eq!(e.key, entries[0].key);
        assert_eq!(snap.entries[1].direction, Direction::Forward);
        assert_eq!(snap.entries[1].key, entries[0].key);
        assert_eq!(snap.entries[2].direction, Direction::Forward);
        assert_eq!(snap.entries[2].key, entries[2].key);
        assert_eq!(e.stats.memo_misses_backward, 1);
        assert_eq!(snap.entries[1].stats.memo_misses_forward, 1);
        assert_eq!(e.a6.state_count(), 2);
        assert!(e.a6.has_transition(StateId(0), Some(Symbol(3)), StateId(1)));
        assert!(e.a6.has_transition(StateId(1), None, StateId(1)));
        assert_eq!(e.variants[0].name, "main");
        assert_eq!(e.variants[0].row, vec![1, 4, 7]);
        assert_eq!(e.main_variant, Some(0));
        assert_eq!(e.stats.query_time, Duration::from_micros(1234));
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(encode(snap.key, &snap.source, &snap.entries), image);
    }

    #[test]
    fn truncation_at_every_prefix_is_structured() {
        let image = encode(7, "int main() { return 0; }", &sample_entries());
        for cut in 0..image.len() {
            let err = decode(&image[..cut]).expect_err("prefix must not decode");
            match err {
                SnapshotError::Truncated { .. }
                | SnapshotError::BadMagic
                | SnapshotError::ChecksumMismatch
                | SnapshotError::Corrupt(_) => {}
                other => panic!("unexpected error at cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_caught_by_checksum() {
        let image = encode(7, "int main() { return 0; }", &sample_entries());
        for pos in [8, 20, image.len() / 2, image.len() - 9] {
            let mut bad = image.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    decode(&bad),
                    Err(SnapshotError::ChecksumMismatch)
                        | Err(SnapshotError::UnsupportedVersion { .. })
                        | Err(SnapshotError::Corrupt(_))
                        | Err(SnapshotError::Truncated { .. })
                ),
                "flip at {pos} must be detected"
            );
        }
    }

    #[test]
    fn committed_v2_snapshot_is_rejected_as_unsupported_version() {
        // A genuine version-2 snapshot written by the previous format
        // revision. The version check runs before the checksum and key
        // checks, so a v3 reader reports the structured version error —
        // which the session manager degrades to a cold open.
        let image = include_bytes!("../tests/fixtures/v2.snap");
        assert!(matches!(
            decode(image),
            Err(SnapshotError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn version_bump_is_reported() {
        let mut image = encode(7, "x", &[]);
        image[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&image),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut image = encode(7, "x", &[]);
        image[0] = b'X';
        assert!(matches!(decode(&image), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn file_round_trip_and_key_mismatch() {
        let dir = std::env::temp_dir().join(format!("specslice-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        let image = encode(42, "int main() { return 0; }", &[]);
        write_file(&path, &image).unwrap();
        assert_eq!(read_file(&path, 42).unwrap().key, 42);
        assert!(matches!(
            read_file(&path, 43),
            Err(SnapshotError::KeyMismatch {
                expected: 43,
                found: 42
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
