//! The session manager: one warm [`Slicer`] per analyzed program, shared by
//! every connection, with LRU eviction under a memory budget and snapshot
//! persistence for warm restarts.
//!
//! # Session lifecycle
//!
//! `open` normalizes the submitted source through the MiniC frontend and
//! keys the session by the FxHash of the pretty-printed normalized program —
//! so two clients submitting formatting variants of the same program share
//! one session (and one memo). Lookup order:
//!
//! 1. **live** — a session with that content key is in the table; touch its
//!    LRU stamp and share it.
//! 2. **snapshot** — `{snapshot_dir}/{key:016x}.snap` exists; build a fresh
//!    [`Slicer`] from the source and import the snapshot's memo
//!    ([`Slicer::import_memo`]). A rejected snapshot (truncated, corrupt,
//!    wrong version, wrong program) degrades to a cold open and the
//!    structured reason is reported in the `open` response — never an error,
//!    never a panic.
//! 3. **cold** — build a fresh session.
//!
//! After every open, sessions are evicted in LRU order while the summed
//! [`Slicer::approx_bytes`] estimate exceeds the configured budget (the
//! just-opened session is exempt — opening a program larger than the budget
//! must not thrash). Evicted and shut-down sessions are snapshotted, which
//! is what makes the next open warm.
//!
//! # Edits re-key the session
//!
//! [`SessionManager::apply_edit`] changes the session's program, and with it
//! the content hash. The session is re-keyed under the new hash — a
//! subsequent `open` of the *original* source must not find the edited
//! session — and the old id is kept as an **alias**, so clients holding the
//! pre-edit id keep their handle. The current id is returned in every
//! `apply_edit` response.
//!
//! # Concurrency
//!
//! Each session holds its [`Slicer`] behind an [`RwLock`]: queries
//! (`slice`, `slice_batch`, …) share read locks and run concurrently —
//! `Slicer` is `Sync` — while `apply_edit` takes the write lock, so edits
//! serialize against queries and the dense-id criteria clients hold are
//! never interpreted against a half-updated program. Handlers look up the
//! session per request and never cache the `Arc` across requests, so
//! eviction is always safe: a concurrently evicted session finishes its
//! in-flight requests on the final `Arc` and is dropped afterwards.
//!
//! Lock order is **slicer before table**: paths that hold a slicer lock may
//! take the (brief) table lock, but nothing blocks on a slicer lock while
//! holding the table lock.

use crate::snapshot::{self, SnapshotError};
use specslice::{EditReport, ProgramDelta, Slicer, SlicerConfig, SpecError};
use std::collections::HashMap;
use std::hash::Hasher;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Hashes normalized source text into a session key (FxHash64 — the
/// workspace's deterministic hasher).
pub fn session_key(normalized_source: &str) -> u64 {
    let mut h = specslice_fsa::hash::FxHasher::default();
    h.write(normalized_source.as_bytes());
    h.finish()
}

/// The wire form of a session key: 16 lowercase hex digits.
pub fn format_id(key: u64) -> String {
    format!("{key:016x}")
}

/// The mutable identity of a session (changes when an edit re-keys it).
#[derive(Clone)]
pub struct SessionMeta {
    /// Content hash of the current normalized source.
    pub key: u64,
    /// The key in wire form ([`format_id`]).
    pub id: String,
    /// The current normalized (pretty-printed) source.
    pub source: String,
}

/// One live session: a warm [`Slicer`] for one program.
pub struct Session {
    meta: Mutex<SessionMeta>,
    slicer: RwLock<Slicer>,
    /// LRU stamp: the manager's logical clock value at last use.
    last_touch: AtomicU64,
    /// Whether this session was restored from a snapshot.
    pub warm: bool,
    /// Memo entries imported from the snapshot at open (0 for cold opens).
    pub memo_imported: usize,
    /// Why the snapshot was *not* used, when one existed but was rejected.
    pub snapshot_warning: Option<String>,
}

impl Session {
    /// The session's current identity (key, wire id, normalized source).
    pub fn meta(&self) -> SessionMeta {
        match self.meta.lock() {
            Ok(g) => g.clone(),
            Err(e) => e.into_inner().clone(),
        }
    }

    /// The session's current wire id.
    pub fn id(&self) -> String {
        self.meta().id
    }

    /// Read access to the slicer (concurrent queries). Lock poisoning is
    /// shrugged off: the `Slicer`'s `&self` query methods never leave it in
    /// a half-updated state (they mutate only behind its own interior
    /// locks), so a panicking request must not take the whole session down.
    pub fn slicer(&self) -> RwLockReadGuard<'_, Slicer> {
        match self.slicer.read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    /// Write access to the slicer (edits; serializes against queries).
    pub fn slicer_mut(&self) -> RwLockWriteGuard<'_, Slicer> {
        match self.slicer.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    /// The session's estimated resident bytes (see [`Slicer::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.slicer().approx_bytes()
    }

    /// The LRU stamp (for `list_sessions` diagnostics).
    pub fn last_touch(&self) -> u64 {
        self.last_touch.load(Ordering::Relaxed)
    }
}

/// Counters exposed by the `stats` request.
#[derive(Debug, Default)]
pub struct ManagerCounters {
    /// Sessions opened cold (no snapshot available, or snapshot rejected).
    pub cold_opens: AtomicU64,
    /// Sessions restored from a snapshot.
    pub warm_starts: AtomicU64,
    /// Sessions evicted (LRU budget or explicit `evict`).
    pub evictions: AtomicU64,
    /// Snapshot files written (evictions + shutdown).
    pub snapshots_written: AtomicU64,
}

/// How a session was produced by [`SessionManager::open`].
pub struct OpenOutcome {
    /// The opened (or re-used) session.
    pub session: Arc<Session>,
    /// `true` when the session already existed in the live table.
    pub existing: bool,
}

/// The session table: live sessions by current content key, plus aliases
/// from retired (pre-edit) keys to current ones.
#[derive(Default)]
struct Table {
    by_key: HashMap<u64, Arc<Session>>,
    aliases: HashMap<u64, u64>,
}

impl Table {
    fn resolve(&self, key: u64) -> Option<&Arc<Session>> {
        self.by_key
            .get(&key)
            .or_else(|| self.by_key.get(self.aliases.get(&key)?))
    }

    fn remove(&mut self, key: u64) -> Option<Arc<Session>> {
        let session = self.by_key.remove(&key)?;
        self.aliases.retain(|_, target| *target != key);
        Some(session)
    }
}

/// The shared session table.
pub struct SessionManager {
    table: Mutex<Table>,
    /// Logical clock for LRU stamps (bumped on every touch).
    clock: AtomicU64,
    /// Byte budget for the summed session estimates; `None` = unlimited.
    budget_bytes: Option<usize>,
    /// Directory for snapshot files; `None` disables persistence.
    snapshot_dir: Option<PathBuf>,
    /// `SlicerConfig` template for new sessions (thread width etc.).
    slicer_config: SlicerConfig,
    /// Observable counters.
    pub counters: ManagerCounters,
}

impl SessionManager {
    /// Creates a manager. `budget_bytes = None` disables eviction,
    /// `snapshot_dir = None` disables persistence.
    pub fn new(
        budget_bytes: Option<usize>,
        snapshot_dir: Option<PathBuf>,
        slicer_config: SlicerConfig,
    ) -> SessionManager {
        SessionManager {
            table: Mutex::new(Table::default()),
            clock: AtomicU64::new(0),
            budget_bytes,
            snapshot_dir,
            slicer_config,
            counters: ManagerCounters::default(),
        }
    }

    fn touch(&self, session: &Session) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        session.last_touch.store(now, Ordering::Relaxed);
    }

    fn table(&self) -> MutexGuard<'_, Table> {
        match self.table.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    fn snapshot_path(&self, key: u64) -> Option<PathBuf> {
        self.snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{}.snap", format_id(key))))
    }

    /// Opens (or re-uses) the session for `source`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when the frontend or SDG construction rejects the
    /// source. Snapshot problems are *not* errors — they degrade to a cold
    /// open with [`Session::snapshot_warning`] set.
    pub fn open(&self, source: &str) -> Result<OpenOutcome, SpecError> {
        let program = specslice::frontend(source)?;
        let normalized = specslice_lang::pretty(&program);
        let key = session_key(&normalized);

        if let Some(session) = self.table().by_key.get(&key).cloned() {
            self.touch(&session);
            return Ok(OpenOutcome {
                session,
                existing: true,
            });
        }

        let slicer = Slicer::from_program_with(program, self.slicer_config)?;

        // Try the snapshot; any failure is recorded and shrugged off.
        let mut warm = false;
        let mut memo_imported = 0usize;
        let mut snapshot_warning = None;
        if let Some(path) = self.snapshot_path(key) {
            match snapshot::read_file(&path, key) {
                Ok(snap) => match slicer.import_memo(&snap.entries) {
                    Ok(n) => {
                        warm = true;
                        memo_imported = n;
                    }
                    Err(e) => snapshot_warning = Some(e.to_string()),
                },
                Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => snapshot_warning = Some(e.to_string()),
            }
        }
        if warm {
            self.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.cold_opens.fetch_add(1, Ordering::Relaxed);
        }

        let session = Arc::new(Session {
            meta: Mutex::new(SessionMeta {
                key,
                id: format_id(key),
                source: normalized,
            }),
            slicer: RwLock::new(slicer),
            last_touch: AtomicU64::new(0),
            warm,
            memo_imported,
            snapshot_warning,
        });
        self.touch(&session);

        // Insert, double-checking the table: a racing open of the same
        // program may have inserted first — share its session so both
        // clients see one memo.
        let session = {
            let mut table = self.table();
            if let Some(existing) = table.by_key.get(&key).cloned() {
                self.touch(&existing);
                return Ok(OpenOutcome {
                    session: existing,
                    existing: true,
                });
            }
            table.by_key.insert(key, session.clone());
            session
        };
        self.enforce_budget(key);
        Ok(OpenOutcome {
            session,
            existing: false,
        })
    }

    /// The live session with wire id `id` (16 hex digits; pre-edit aliases
    /// resolve to the re-keyed session).
    pub fn get(&self, id: &str) -> Option<Arc<Session>> {
        let key = u64::from_str_radix(id, 16).ok()?;
        let session = self.table().resolve(key).cloned()?;
        self.touch(&session);
        Some(session)
    }

    /// Applies `delta` to `session` under its write lock (serializing
    /// against in-flight queries), then re-keys the session under the hash
    /// of the edited program. The previous id is kept as an alias. Returns
    /// the edit report and the session's current (possibly new) wire id.
    ///
    /// # Errors
    ///
    /// Whatever [`Slicer::apply_edit`] reports; on error the session is
    /// unchanged and keeps its key.
    pub fn apply_edit(
        &self,
        session: &Session,
        delta: &ProgramDelta,
    ) -> Result<(EditReport, String), SpecError> {
        let mut slicer = session.slicer_mut();
        self.apply_locked(session, &mut slicer, delta)
    }

    /// Source-diff form of [`SessionManager::apply_edit`]: parses
    /// `new_source`, diffs it against the session's current program *under
    /// the write lock* (so a racing edit cannot stale the diff), and applies
    /// the resulting delta.
    ///
    /// # Errors
    ///
    /// Frontend errors for `new_source`, plus whatever
    /// [`Slicer::apply_edit`] reports.
    pub fn apply_edit_source(
        &self,
        session: &Session,
        new_source: &str,
    ) -> Result<(EditReport, String), SpecError> {
        let new_program = specslice::frontend(new_source)?;
        let mut slicer = session.slicer_mut();
        let old = slicer.program().ok_or_else(|| {
            SpecError::internal("apply_edit", "session has no program to diff against")
        })?;
        let delta = ProgramDelta::diff(old, &new_program);
        self.apply_locked(session, &mut slicer, &delta)
    }

    fn apply_locked(
        &self,
        session: &Session,
        slicer: &mut Slicer,
        delta: &ProgramDelta,
    ) -> Result<(EditReport, String), SpecError> {
        let report = slicer.apply_edit(delta)?;
        let program = slicer.program().ok_or_else(|| {
            SpecError::internal("apply_edit", "session has no program after edit")
        })?;
        let normalized = specslice_lang::pretty(program);
        let new_key = session_key(&normalized);

        let old = session.meta();
        if new_key != old.key {
            // Re-key (slicer write lock held ⇒ table lock is safe; see the
            // module's lock-order note).
            let mut table = self.table();
            if let Some(arc) = table.by_key.remove(&old.key) {
                // Everything that aliased the old key follows it.
                for target in table.aliases.values_mut() {
                    if *target == old.key {
                        *target = new_key;
                    }
                }
                table.aliases.insert(old.key, new_key);
                table.by_key.insert(new_key, arc);
            }
            let mut meta = match session.meta.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            *meta = SessionMeta {
                key: new_key,
                id: format_id(new_key),
                source: normalized,
            };
        }
        Ok((report, format_id(new_key)))
    }

    /// All live sessions, LRU-oldest first.
    pub fn list(&self) -> Vec<Arc<Session>> {
        let mut sessions: Vec<Arc<Session>> = self.table().by_key.values().cloned().collect();
        sessions.sort_by_key(|s| s.last_touch.load(Ordering::Relaxed));
        sessions
    }

    /// Evicts sessions in LRU order while the summed byte estimate exceeds
    /// the budget. `keep` (the session that triggered the rebalance) is
    /// never evicted. Sessions with in-flight requests (read or write locks
    /// held) are skipped — busy is the opposite of cold.
    fn enforce_budget(&self, keep: u64) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        loop {
            // Collect candidates under the table lock, then size them up
            // outside it (approx_bytes takes the slicer read lock, which
            // must not happen while the table lock is held).
            let mut sessions = self.list();
            let total: usize = sessions.iter().map(|s| s.approx_bytes()).sum();
            if total <= budget {
                return;
            }
            sessions.retain(|s| s.meta().key != keep);
            let Some(victim) = sessions.first().cloned() else {
                return; // only `keep` is resident; never evict it
            };
            // A busy session is skipped entirely this round rather than
            // retried — the loop would otherwise spin on it.
            let Ok(guard) = victim.slicer.try_write() else {
                return;
            };
            let meta = victim.meta();
            self.write_snapshot(&meta, &guard);
            drop(guard);
            if self.table().remove(meta.key).is_none() {
                return; // raced with another evictor; re-assess
            }
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Explicitly evicts the session with wire id `id`, snapshotting it
    /// first. Returns `false` when no such session is live.
    pub fn evict(&self, id: &str) -> bool {
        let Ok(key) = u64::from_str_radix(id, 16) else {
            return false;
        };
        let Some(session) = self.table().resolve(key).cloned() else {
            return false;
        };
        let guard = session.slicer(); // waits for in-flight edits
        let meta = session.meta();
        self.write_snapshot(&meta, &guard);
        drop(guard);
        if self.table().remove(meta.key).is_none() {
            return false;
        }
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Writes one session's snapshot (best-effort; errors go to stderr —
    /// persistence must never take down the serving path).
    fn write_snapshot(&self, meta: &SessionMeta, slicer: &Slicer) {
        let Some(path) = self.snapshot_path(meta.key) else {
            return;
        };
        let image = snapshot::encode(meta.key, &meta.source, &slicer.export_memo());
        match snapshot::write_file(&path, &image) {
            Ok(()) => {
                self.counters
                    .snapshots_written
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!(
                    "specslice-server: failed to snapshot session {}: {e}",
                    meta.id
                );
            }
        }
    }

    /// Snapshots every live session (shutdown path). Returns how many
    /// snapshots were written.
    pub fn snapshot_all(&self) -> u64 {
        let before = self.counters.snapshots_written.load(Ordering::Relaxed);
        for session in self.list() {
            let guard = session.slicer();
            let meta = session.meta();
            self.write_snapshot(&meta, &guard);
        }
        self.counters.snapshots_written.load(Ordering::Relaxed) - before
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.table().by_key.len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.table().by_key.is_empty()
    }

    /// The configured budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Whether snapshot persistence is enabled.
    pub fn persistent(&self) -> bool {
        self.snapshot_dir.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice::Criterion;
    use specslice_lang::ProgramEdit;

    const PROGRAM: &str = r#"
        int g;
        void inc(int x) { g = g + x; }
        int main() { g = 0; inc(2); inc(3); printf("%d", g); return 0; }
    "#;

    fn config() -> SlicerConfig {
        SlicerConfig {
            num_threads: 1,
            ..SlicerConfig::default()
        }
    }

    fn criterion(slicer: &Slicer) -> Criterion {
        Criterion::printf_actuals(slicer.sdg())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("specslice-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_is_keyed_by_normalized_source() {
        let mgr = SessionManager::new(None, None, config());
        let a = mgr.open(PROGRAM).unwrap();
        assert!(!a.existing);
        // Same program, different whitespace ⇒ same session.
        let reformatted = PROGRAM.replace("  ", " ");
        let b = mgr.open(&reformatted).unwrap();
        assert!(b.existing);
        assert_eq!(a.session.meta().key, b.session.meta().key);
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn snapshot_round_trip_makes_next_open_warm() {
        let dir = temp_dir("mgr-warm");
        let mgr = SessionManager::new(None, Some(dir.clone()), config());
        let opened = mgr.open(PROGRAM).unwrap();
        assert!(!opened.session.warm);
        let c = criterion(&opened.session.slicer());
        let cold = format!("{:?}", opened.session.slicer().slice(&c).unwrap());
        assert!(mgr.evict(&opened.session.id()));
        assert_eq!(mgr.len(), 0);

        // Second manager (a "restarted server") warm-starts from the file.
        let mgr2 = SessionManager::new(None, Some(dir.clone()), config());
        let reopened = mgr2.open(PROGRAM).unwrap();
        assert!(
            reopened.session.warm,
            "{:?}",
            reopened.session.snapshot_warning
        );
        assert_eq!(reopened.session.memo_imported, 1);
        let slicer = reopened.session.slicer();
        let warmed = format!("{:?}", slicer.slice(&c).unwrap());
        assert_eq!(warmed, cold, "warm slice must be byte-identical");
        assert_eq!(
            slicer.memo_hits(),
            1,
            "first repeated query must hit the memo"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_cold_open() {
        let dir = temp_dir("mgr-bad");
        let mgr = SessionManager::new(None, Some(dir.clone()), config());
        let opened = mgr.open(PROGRAM).unwrap();
        let path = dir.join(format!("{}.snap", opened.session.id()));
        mgr.evict(&opened.session.id());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mgr2 = SessionManager::new(None, Some(dir.clone()), config());
        let reopened = mgr2.open(PROGRAM).unwrap();
        assert!(!reopened.session.warm);
        let warning = reopened.session.snapshot_warning.as_deref().unwrap();
        assert!(
            warning.contains("checksum") || warning.contains("corrupt"),
            "{warning}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_budget_and_keeps_the_new_session() {
        let dir = temp_dir("mgr-lru");
        // A budget of 1 byte forces every open to evict everything else.
        let mgr = SessionManager::new(Some(1), Some(dir.clone()), config());
        let a = mgr.open(PROGRAM).unwrap();
        let a_id = a.session.id();
        let other = PROGRAM.replace("inc(3);", "inc(4);");
        let b = mgr.open(&other).unwrap();
        let b_id = b.session.id();
        assert_ne!(a_id, b_id);
        // Opening B evicted A (but never B itself).
        assert_eq!(mgr.len(), 1);
        assert!(mgr.get(&b_id).is_some());
        assert!(mgr.get(&a_id).is_none());
        assert_eq!(mgr.counters.evictions.load(Ordering::Relaxed), 1);
        // A's snapshot exists, so re-opening it is warm (and evicts B).
        let a2 = mgr.open(PROGRAM).unwrap();
        assert!(mgr.get(&a2.session.id()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn edits_rekey_and_alias() {
        let mgr = SessionManager::new(None, None, config());
        let opened = mgr.open(PROGRAM).unwrap();
        let old_id = opened.session.id();

        let edit = ProgramEdit::replace_function_src("void inc(int x) { g = g + x + 1; }").unwrap();
        let (report, new_id) = mgr
            .apply_edit(&opened.session, &ProgramDelta::single(edit))
            .unwrap();
        assert!(
            report.full_rebuild || report.rebuilt_procs.iter().any(|p| p == "inc"),
            "{report:?}"
        );
        assert_ne!(new_id, old_id, "an edit must re-key the session");

        // Both ids resolve to the same session.
        let via_old = mgr.get(&old_id).unwrap();
        let via_new = mgr.get(&new_id).unwrap();
        assert!(Arc::ptr_eq(&via_old, &via_new));
        assert_eq!(mgr.len(), 1);

        // Opening the ORIGINAL source now builds a fresh session — the
        // edited one must not leak back to it.
        let fresh = mgr.open(PROGRAM).unwrap();
        assert!(!fresh.existing);
        assert_eq!(fresh.session.id(), old_id);
        assert_eq!(mgr.len(), 2);
        // The alias now shadows…: explicit key lookup prefers the live
        // session with that exact key over the alias.
        let got = mgr.get(&old_id).unwrap();
        assert!(Arc::ptr_eq(&got, &fresh.session));

        // Opening the EDITED source re-uses the edited session.
        let edited_src = via_new.meta().source;
        let again = mgr.open(&edited_src).unwrap();
        assert!(again.existing);
        assert!(Arc::ptr_eq(&again.session, &via_new));
    }
}
