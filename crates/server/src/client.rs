//! A small blocking client for the daemon — used by the example, the tests,
//! and the bench harness. One request in flight at a time (the protocol
//! allows pipelining via request ids; this client doesn't need it).

use crate::json::Json;
use crate::proto::{
    read_frame_bytes, write_frame, FrameError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// Stream write failure.
    Io(std::io::Error),
    /// The server answered `ok: false`; the structured error payload rides
    /// along verbatim.
    Server(Json),
    /// The response was not the shape the client expected.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server(payload) => write!(f, "server error: {}", payload.to_text()),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected, handshaken client over any blocking byte stream.
pub struct Client<S: Read + Write> {
    stream: S,
    next_id: i64,
    max_frame: usize,
}

impl Client<TcpStream> {
    /// Connects over TCP and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Connection, framing, or handshake failures.
    pub fn connect_tcp(addr: &str) -> Result<Client<TcpStream>, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response protocol: never Nagle-delay a request frame.
        stream.set_nodelay(true)?;
        Client::handshake(stream)
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a unix socket and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Connection, framing, or handshake failures.
    pub fn connect_unix(path: &Path) -> Result<Client<UnixStream>, ClientError> {
        let stream = UnixStream::connect(path)?;
        Client::handshake(stream)
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Framing or handshake failures.
    pub fn handshake(stream: S) -> Result<Client<S>, ClientError> {
        let mut client = Client {
            stream,
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
        };
        let resp = client.request(
            "hello",
            [("version", Json::Int(i64::from(PROTOCOL_VERSION)))],
        )?;
        match resp.get("version").and_then(Json::as_i64) {
            Some(v) if v == i64::from(PROTOCOL_VERSION) => Ok(client),
            other => Err(ClientError::Protocol(format!(
                "server protocol version {other:?}, client speaks {PROTOCOL_VERSION}"
            ))),
        }
    }

    /// Sends one request and returns the parsed response object on `ok`.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] carrying the error
    /// payload when the server answers `ok: false`.
    pub fn request(
        &mut self,
        op: &str,
        params: impl IntoIterator<Item = (&'static str, Json)>,
    ) -> Result<Json, ClientError> {
        let bytes = self.request_bytes(op, params)?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
        let resp = Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("response is not JSON: {e}")))?;
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(ClientError::Server(
                resp.get("error").cloned().unwrap_or(Json::Null),
            )),
            None => Err(ClientError::Protocol("response has no `ok`".to_string())),
        }
    }

    /// Sends one request and returns the raw response frame payload —
    /// exactly the bytes the server wrote, for byte-identity comparisons.
    /// Server-side errors are *not* decoded (the bytes come back either
    /// way).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn request_bytes(
        &mut self,
        op: &str,
        params: impl IntoIterator<Item = (&'static str, Json)>,
    ) -> Result<Vec<u8>, ClientError> {
        self.next_id += 1;
        let mut req = match Json::obj(params) {
            Json::Object(m) => m,
            _ => unreachable!(),
        };
        req.insert("op".to_string(), Json::str(op));
        req.insert("id".to_string(), Json::Int(self.next_id));
        write_frame(&mut self.stream, &Json::Object(req))?;
        Ok(read_frame_bytes(&mut self.stream, self.max_frame)?)
    }

    /// The underlying stream (for tests that need to poke the raw protocol).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}
