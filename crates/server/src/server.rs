//! The daemon: accept loop, per-connection handshake, and request dispatch.
//!
//! # Request surface
//!
//! Every request is `{"op": …, "id": …, …params}`; the `id` is echoed in the
//! response. Ops:
//!
//! | op                   | params                              | response (on `ok`) |
//! |----------------------|-------------------------------------|--------------------|
//! | `hello`              | `version`                           | `version`, `max_frame` |
//! | `open`               | `source`                            | `session`, `existing`, `warm`, `memo_imported`, SDG dims |
//! | `slice`              | `session`, `criterion`              | slice body |
//! | `forward_slice`      | `session`, `criterion`              | slice body |
//! | `chop`               | `session`, `source`, `target`       | slice body |
//! | `slice_batch`        | `session`, `criteria`               | `slices: [slice body]` |
//! | `remove_feature`     | `session`, `criterion`              | slice body |
//! | `specialize_program` | `session`, `criteria`               | `source`, `functions`, … |
//! | `regenerate`         | `session`, `criterion`              | `source`, signature maps |
//! | `apply_edit`         | `session`, `edits` \| `source`      | `session` (new id), `report` |
//! | `stats`              | `session?`                          | server / session counters |
//! | `list_sessions`      |                                     | `sessions: […]` |
//! | `evict`              | `session`                           | `evicted` |
//! | `shutdown`           |                                     | `snapshots_written` |
//!
//! Query responses (`slice`, `slice_batch`, …) are **deterministic**: they
//! carry no wall-clock, no memo-hit flags, and serialize through the
//! ordered [`Json`] writer — so a response answered from a warm memo, a
//! cold pipeline run, or any `--threads` width is byte-identical, and the
//! concurrency tests can compare raw frames. Timing and hit counters are
//! observable through `stats`, which is allowed to vary.

use crate::json::Json;
use crate::proto::{
    error_payload, error_response, kind, ok_response, read_frame, spec_error_payload, write_frame,
    FrameError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionManager};
use specslice::{
    Criterion, ProgramDelta, ProgramEdit, Sdg, SlicerConfig, Solver, SpecSlice, SpecializedProgram,
};
use specslice_sdg::{CallSiteId, VertexId};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// TCP; `addr` as accepted by [`TcpListener::bind`] (use port 0 to let
    /// the OS pick — the bound address is reported by [`Handle::addr`]).
    Tcp(String),
    /// A unix-domain socket at the given path (removed and re-created).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Snapshot directory (`None` disables persistence).
    pub snapshot_dir: Option<PathBuf>,
    /// Session-memory budget in bytes (`None` disables eviction).
    pub budget_bytes: Option<usize>,
    /// Worker threads per session's `slice_batch` (`None` = the
    /// `SPECSLICE_NUM_THREADS` / available-parallelism default).
    pub threads: Option<usize>,
    /// Batch solver for every session (`None` = the `SPECSLICE_SOLVER` /
    /// one-pass default).
    pub solver: Option<Solver>,
    /// Maximum accepted frame payload size.
    pub max_frame: usize,
}

impl ServerConfig {
    /// A config listening on `bind` with defaults everywhere else.
    pub fn new(bind: Bind) -> ServerConfig {
        ServerConfig {
            bind,
            snapshot_dir: None,
            budget_bytes: None,
            threads: None,
            solver: None,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// A running daemon: the bound address plus the shutdown controls.
pub struct Handle {
    /// The actual bound address: `host:port` for TCP (with the OS-assigned
    /// port resolved), the socket path for unix.
    pub addr: String,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Handle {
    /// Requests shutdown (as the `shutdown` op does) and joins the accept
    /// loop. Sessions are *not* snapshotted here — that is the `shutdown`
    /// op's job; this is the handle-drop path for tests and embedders.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. until a client sends
    /// `shutdown` or [`Handle::stop`] is called from another thread).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A connected byte stream (TCP or unix).
trait Stream: Read + Write + Send {}
impl Stream for TcpStream {}
#[cfg(unix)]
impl Stream for UnixStream {}

impl Listener {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Box<dyn Stream>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // The accept loop is nonblocking; the connection itself must
                // block normally. Nagle would hold small response frames
                // hostage to the client's delayed ACKs — this is a
                // request/response protocol, so send frames immediately.
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
        }
    }
}

struct State {
    manager: SessionManager,
    shutdown: Arc<AtomicBool>,
    max_frame: usize,
    connections: AtomicU64,
    requests: AtomicU64,
    threads: usize,
}

/// Starts the daemon in a background thread and returns its [`Handle`].
///
/// # Errors
///
/// Binding failures.
pub fn serve(config: ServerConfig) -> std::io::Result<Handle> {
    let (listener, addr) = match &config.bind {
        Bind::Tcp(addr) => {
            let l = TcpListener::bind(addr)?;
            let actual = l.local_addr()?.to_string();
            (Listener::Tcp(l), actual)
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            // A previous daemon's socket file would make bind fail.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            (Listener::Unix(l), path.display().to_string())
        }
    };
    listener.set_nonblocking(true)?;

    if let Some(dir) = &config.snapshot_dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut slicer_config = SlicerConfig::default();
    if let Some(n) = config.threads {
        slicer_config.num_threads = n.max(1);
    }
    if let Some(s) = config.solver {
        slicer_config.solver = s;
    }
    let threads = slicer_config.num_threads;
    let shutdown = Arc::new(AtomicBool::new(false));
    let state = Arc::new(State {
        manager: SessionManager::new(config.budget_bytes, config.snapshot_dir, slicer_config),
        shutdown: shutdown.clone(),
        max_frame: config.max_frame,
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        threads,
    });

    let accept_state = state.clone();
    let accept_thread = std::thread::Builder::new()
        .name("specslice-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))?;

    Ok(Handle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Runs the daemon on the calling thread until a client sends `shutdown`.
///
/// # Errors
///
/// Binding failures.
pub fn run(config: ServerConfig) -> std::io::Result<()> {
    let handle = serve(config)?;
    // Readiness line for scripts that spawn the daemon and wait for it.
    println!("specslice-server listening on {}", handle.addr);
    handle.wait();
    Ok(())
}

fn accept_loop(listener: Listener, state: Arc<State>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                state.connections.fetch_add(1, Ordering::Relaxed);
                let conn_state = state.clone();
                let _ = std::thread::Builder::new()
                    .name("specslice-conn".to_string())
                    .spawn(move || handle_conn(conn_state, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(state: Arc<State>, mut stream: Box<dyn Stream>) {
    // Handshake: the first frame must be a version-matching `hello`.
    let hello = match read_frame(&mut stream, state.max_frame) {
        Ok(v) => v,
        Err(_) => return,
    };
    let id = hello.get("id").cloned().unwrap_or(Json::Null);
    if hello.get("op").and_then(Json::as_str) != Some("hello") {
        let _ = write_frame(
            &mut stream,
            &error_response(
                &id,
                error_payload(kind::PROTO, "first request must be `hello`"),
            ),
        );
        return;
    }
    let client_version = hello.get("version").and_then(Json::as_i64);
    if client_version != Some(i64::from(PROTOCOL_VERSION)) {
        let _ = write_frame(
            &mut stream,
            &error_response(
                &id,
                error_payload(
                    kind::PROTO,
                    format!(
                        "protocol version mismatch: client {:?}, server {PROTOCOL_VERSION}",
                        client_version
                    ),
                ),
            ),
        );
        return;
    }
    if write_frame(&mut stream, &hello_response(&state, &id)).is_err() {
        return;
    }

    loop {
        let request = match read_frame(&mut stream, state.max_frame) {
            Ok(v) => v,
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::TooLarge { .. }) => {
                // The payload was never read; the stream is desynchronized.
                // Report and close.
                let _ = write_frame(
                    &mut stream,
                    &error_response(&Json::Null, error_payload(kind::PROTO, e.to_string())),
                );
                return;
            }
            Err(e @ FrameError::Malformed(_)) => {
                // The frame boundary is intact — reject this request and
                // keep serving the connection.
                let _ = write_frame(
                    &mut stream,
                    &error_response(&Json::Null, error_payload(kind::PROTO, e.to_string())),
                );
                continue;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown) = dispatch(&state, &request);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn hello_response(state: &State, id: &Json) -> Json {
    ok_response(
        id,
        [
            ("version", Json::Int(i64::from(PROTOCOL_VERSION))),
            ("max_frame", Json::Int(state.max_frame as i64)),
        ],
    )
}

/// Routes one parsed request. Returns the response and whether the server
/// should shut down after sending it.
fn dispatch(state: &State, request: &Json) -> (Json, bool) {
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return (
            error_response(&id, error_payload(kind::PROTO, "request has no `op`")),
            false,
        );
    };
    let response = match op {
        "hello" => Ok(hello_response(state, &id)),
        "open" => op_open(state, &id, request),
        "slice" => op_slice(state, &id, request, SliceMode::Slice),
        "forward_slice" => op_slice(state, &id, request, SliceMode::Forward),
        "chop" => op_chop(state, &id, request),
        "remove_feature" => op_slice(state, &id, request, SliceMode::RemoveFeature),
        "slice_batch" => op_slice_batch(state, &id, request),
        "specialize_program" => op_specialize(state, &id, request),
        "regenerate" => op_regenerate(state, &id, request),
        "apply_edit" => op_apply_edit(state, &id, request),
        "stats" => op_stats(state, &id, request),
        "list_sessions" => Ok(op_list_sessions(state, &id)),
        "evict" => op_evict(state, &id, request),
        "shutdown" => {
            let written = state.manager.snapshot_all();
            return (
                ok_response(&id, [("snapshots_written", Json::Int(written as i64))]),
                true,
            );
        }
        other => Err(error_payload(kind::PROTO, format!("unknown op `{other}`"))),
    };
    (
        match response {
            Ok(r) => r,
            Err(e) => error_response(&id, e),
        },
        false,
    )
}

/// Fetches the session named by the request's `"session"` member.
fn session_of(state: &State, request: &Json) -> Result<Arc<Session>, Json> {
    let Some(sid) = request.get("session").and_then(Json::as_str) else {
        return Err(error_payload(kind::PROTO, "request has no `session`"));
    };
    state.manager.get(sid).ok_or_else(|| {
        error_payload(
            kind::UNKNOWN_SESSION,
            format!("no live session `{sid}` (evicted, or never opened)"),
        )
    })
}

fn op_open(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let Some(source) = request.get("source").and_then(Json::as_str) else {
        return Err(error_payload(kind::PROTO, "open needs a `source` string"));
    };
    let outcome = state
        .manager
        .open(source)
        .map_err(|e| spec_error_payload(&e))?;
    let session = &outcome.session;
    let (vertices, call_sites, procs) = {
        let slicer = session.slicer();
        let sdg = slicer.sdg();
        (sdg.vertex_count(), sdg.call_sites.len(), sdg.procs.len())
    };
    let mut members = vec![
        ("session", Json::Str(session.id())),
        ("existing", Json::Bool(outcome.existing)),
        ("warm", Json::Bool(session.warm)),
        ("memo_imported", Json::Int(session.memo_imported as i64)),
        ("vertices", Json::Int(vertices as i64)),
        ("call_sites", Json::Int(call_sites as i64)),
        ("procs", Json::Int(procs as i64)),
    ];
    if let Some(w) = &session.snapshot_warning {
        members.push(("snapshot_warning", Json::str(w.clone())));
    }
    Ok(ok_response(id, members))
}

enum SliceMode {
    Slice,
    Forward,
    RemoveFeature,
}

fn op_slice(state: &State, id: &Json, request: &Json, mode: SliceMode) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let Some(criterion) = request.get("criterion") else {
        return Err(error_payload(kind::PROTO, "request has no `criterion`"));
    };
    let spec = parse_criterion(criterion)?;
    let slicer = session.slicer();
    let criterion = spec.resolve(slicer.sdg());
    let slice = match mode {
        SliceMode::Slice => slicer.slice(&criterion),
        SliceMode::Forward => slicer.forward_slice(&criterion),
        SliceMode::RemoveFeature => slicer.remove_feature(&criterion),
    }
    .map_err(|e| spec_error_payload(&e))?;
    Ok(ok_response(
        id,
        [("slice", slice_body(slicer.sdg(), &slice))],
    ))
}

fn op_chop(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let Some(source) = request.get("source") else {
        return Err(error_payload(
            kind::PROTO,
            "chop needs a `source` criterion",
        ));
    };
    let Some(target) = request.get("target") else {
        return Err(error_payload(
            kind::PROTO,
            "chop needs a `target` criterion",
        ));
    };
    let source = parse_criterion(source)?;
    let target = parse_criterion(target)?;
    let slicer = session.slicer();
    let source = source.resolve(slicer.sdg());
    let target = target.resolve(slicer.sdg());
    let slice = slicer
        .chop(&source, &target)
        .map_err(|e| spec_error_payload(&e))?;
    Ok(ok_response(
        id,
        [("slice", slice_body(slicer.sdg(), &slice))],
    ))
}

fn op_slice_batch(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let Some(items) = request.get("criteria").and_then(Json::as_array) else {
        return Err(error_payload(
            kind::PROTO,
            "request has no `criteria` array",
        ));
    };
    let specs = items
        .iter()
        .map(parse_criterion)
        .collect::<Result<Vec<_>, _>>()?;
    let slicer = session.slicer();
    let criteria: Vec<Criterion> = specs.iter().map(|s| s.resolve(slicer.sdg())).collect();
    let batch = slicer
        .slice_batch(&criteria)
        .map_err(|e| spec_error_payload(&e))?;
    let slices = batch
        .slices
        .iter()
        .map(|s| slice_body(slicer.sdg(), s))
        .collect();
    Ok(ok_response(id, [("slices", Json::Array(slices))]))
}

fn op_specialize(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let Some(items) = request.get("criteria").and_then(Json::as_array) else {
        return Err(error_payload(
            kind::PROTO,
            "request has no `criteria` array",
        ));
    };
    let specs = items
        .iter()
        .map(parse_criterion)
        .collect::<Result<Vec<_>, _>>()?;
    let slicer = session.slicer();
    let criteria: Vec<Criterion> = specs.iter().map(|s| s.resolve(slicer.sdg())).collect();
    let sp = slicer
        .specialize_program(&criteria)
        .map_err(|e| spec_error_payload(&e))?;
    Ok(ok_response(id, specialize_body(&sp)))
}

fn op_regenerate(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let Some(criterion) = request.get("criterion") else {
        return Err(error_payload(kind::PROTO, "request has no `criterion`"));
    };
    let spec = parse_criterion(criterion)?;
    let slicer = session.slicer();
    let criterion = spec.resolve(slicer.sdg());
    let slice = slicer
        .slice(&criterion)
        .map_err(|e| spec_error_payload(&e))?;
    let regen = slicer
        .regenerate(&slice)
        .map_err(|e| spec_error_payload(&e))?;
    let functions: BTreeMap<String, Json> = regen
        .variant_of_function
        .iter()
        .map(|(name, &variant)| (name.clone(), Json::Int(variant as i64)))
        .collect();
    let param_maps: BTreeMap<String, Json> = regen
        .param_maps
        .iter()
        .map(|(name, map)| {
            (
                name.clone(),
                Json::arr(map.iter().map(|&i| Json::Int(i as i64))),
            )
        })
        .collect();
    Ok(ok_response(
        id,
        [
            ("source", Json::str(regen.source)),
            ("functions", Json::Object(functions)),
            ("param_maps", Json::Object(param_maps)),
        ],
    ))
}

fn op_apply_edit(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let session = session_of(state, request)?;
    let result = if let Some(source) = request.get("source").and_then(Json::as_str) {
        if request.get("edits").is_some() {
            return Err(error_payload(
                kind::PROTO,
                "apply_edit takes `edits` or `source`, not both",
            ));
        }
        state.manager.apply_edit_source(&session, source)
    } else if let Some(edits) = request.get("edits").and_then(Json::as_array) {
        let edits = edits
            .iter()
            .map(parse_edit)
            .collect::<Result<Vec<_>, _>>()?;
        state.manager.apply_edit(&session, &ProgramDelta { edits })
    } else {
        return Err(error_payload(
            kind::PROTO,
            "apply_edit needs an `edits` array or a full `source`",
        ));
    };
    let (report, new_id) = result.map_err(|e| spec_error_payload(&e))?;
    Ok(ok_response(
        id,
        [
            ("session", Json::Str(new_id)),
            (
                "report",
                Json::obj([
                    (
                        "rebuilt_procs",
                        Json::arr(report.rebuilt_procs.iter().map(|p| Json::str(p.clone()))),
                    ),
                    ("reused_procs", Json::Int(report.reused_procs as i64)),
                    ("rules_reused", Json::Int(report.rules_reused as i64)),
                    ("rules_rebuilt", Json::Int(report.rules_rebuilt as i64)),
                    ("memo_kept", Json::Int(report.memo_kept as i64)),
                    ("memo_dropped", Json::Int(report.memo_dropped as i64)),
                    ("reachable_kept", Json::Bool(report.reachable_kept)),
                    ("full_rebuild", Json::Bool(report.full_rebuild)),
                ]),
            ),
        ],
    ))
}

fn op_stats(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let c = &state.manager.counters;
    let mut members = vec![
        ("protocol_version", Json::Int(i64::from(PROTOCOL_VERSION))),
        ("threads", Json::Int(state.threads as i64)),
        ("sessions", Json::Int(state.manager.len() as i64)),
        (
            "connections",
            Json::Int(state.connections.load(Ordering::Relaxed) as i64),
        ),
        (
            "requests",
            Json::Int(state.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "cold_opens",
            Json::Int(c.cold_opens.load(Ordering::Relaxed) as i64),
        ),
        (
            "warm_starts",
            Json::Int(c.warm_starts.load(Ordering::Relaxed) as i64),
        ),
        (
            "evictions",
            Json::Int(c.evictions.load(Ordering::Relaxed) as i64),
        ),
        (
            "snapshots_written",
            Json::Int(c.snapshots_written.load(Ordering::Relaxed) as i64),
        ),
        ("persistent", Json::Bool(state.manager.persistent())),
        (
            "budget_bytes",
            state
                .manager
                .budget_bytes()
                .map_or(Json::Null, |b| Json::Int(b as i64)),
        ),
    ];
    if request.get("session").is_some() {
        let session = session_of(state, request)?;
        let slicer = session.slicer();
        let store = slicer.store_stats();
        members.push((
            "session_stats",
            Json::obj([
                ("session", Json::Str(session.id())),
                ("bytes", Json::Int(slicer.approx_bytes() as i64)),
                ("memo_len", Json::Int(slicer.memo_len() as i64)),
                ("memo_hits", Json::Int(slicer.memo_hits() as i64)),
                ("queries_run", Json::Int(slicer.queries_run() as i64)),
                (
                    "reachable_builds",
                    Json::Int(slicer.reachable_builds() as i64),
                ),
                ("store_interned", Json::Int(store.interned as i64)),
                ("store_row_bytes", Json::Int(store.row_bytes as i64)),
                ("warm", Json::Bool(session.warm)),
                ("memo_imported", Json::Int(session.memo_imported as i64)),
            ]),
        ));
    }
    Ok(ok_response(id, members))
}

fn op_list_sessions(state: &State, id: &Json) -> Json {
    let sessions = state
        .manager
        .list()
        .into_iter()
        .map(|s| {
            let slicer = s.slicer();
            Json::obj([
                ("session", Json::Str(s.id())),
                ("bytes", Json::Int(slicer.approx_bytes() as i64)),
                ("memo_len", Json::Int(slicer.memo_len() as i64)),
                ("warm", Json::Bool(s.warm)),
                ("last_touch", Json::Int(s.last_touch() as i64)),
            ])
        })
        .collect();
    ok_response(id, [("sessions", Json::Array(sessions))])
}

fn op_evict(state: &State, id: &Json, request: &Json) -> Result<Json, Json> {
    let Some(sid) = request.get("session").and_then(Json::as_str) else {
        return Err(error_payload(kind::PROTO, "request has no `session`"));
    };
    let evicted = state.manager.evict(sid);
    Ok(ok_response(id, [("evicted", Json::Bool(evicted))]))
}

// ------------------------------------------------------------ wire shapes

/// A criterion as it appears on the wire, before dense ids are resolved
/// against a session's SDG.
enum CriterionSpec {
    PrintfActuals,
    AllContexts(Vec<u32>),
    Configurations(Vec<(u32, Vec<u32>)>),
}

impl CriterionSpec {
    fn resolve(&self, sdg: &Sdg) -> Criterion {
        match self {
            CriterionSpec::PrintfActuals => Criterion::printf_actuals(sdg),
            CriterionSpec::AllContexts(vs) => {
                Criterion::AllContexts(vs.iter().map(|&v| VertexId(v)).collect())
            }
            CriterionSpec::Configurations(cs) => Criterion::Configurations(
                cs.iter()
                    .map(|(v, stack)| {
                        (VertexId(*v), stack.iter().map(|&c| CallSiteId(c)).collect())
                    })
                    .collect(),
            ),
        }
    }
}

fn parse_criterion(v: &Json) -> Result<CriterionSpec, Json> {
    let bad = |m: String| error_payload(kind::BAD_CRITERION, m);
    match v.get("kind").and_then(Json::as_str) {
        Some("printf_actuals") => Ok(CriterionSpec::PrintfActuals),
        Some("all_contexts") => {
            let vs = v
                .get("vertices")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("all_contexts needs a `vertices` array".to_string()))?;
            let vs = vs
                .iter()
                .map(|x| {
                    x.as_u32()
                        .ok_or_else(|| bad(format!("vertex {} is not a u32", x.to_text())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(CriterionSpec::AllContexts(vs))
        }
        Some("configurations") => {
            let cs = v
                .get("configurations")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    bad("configurations needs a `configurations` array".to_string())
                })?;
            let cs = cs
                .iter()
                .map(|c| {
                    let vertex = c
                        .get("vertex")
                        .and_then(Json::as_u32)
                        .ok_or_else(|| bad("configuration needs a `vertex` u32".to_string()))?;
                    let stack = match c.get("stack") {
                        None => Vec::new(),
                        Some(s) => s
                            .as_array()
                            .ok_or_else(|| bad("`stack` must be an array".to_string()))?
                            .iter()
                            .map(|x| {
                                x.as_u32().ok_or_else(|| {
                                    bad(format!("call site {} is not a u32", x.to_text()))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    };
                    Ok((vertex, stack))
                })
                .collect::<Result<Vec<_>, Json>>()?;
            Ok(CriterionSpec::Configurations(cs))
        }
        Some(other) => Err(bad(format!(
            "unknown criterion kind `{other}` (expected printf_actuals, all_contexts, or configurations)"
        ))),
        None => Err(bad("criterion needs a `kind` string".to_string())),
    }
}

fn parse_edit(v: &Json) -> Result<ProgramEdit, Json> {
    let proto_err = |m: String| error_payload(kind::PROTO, m);
    let name_of = |v: &Json, what: &str| {
        v.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("{what} needs a `name` string")))
    };
    let source_of = |v: &Json, what: &str| {
        v.get("source")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| proto_err(format!("{what} needs a `source` string")))
    };
    match v.get("kind").and_then(Json::as_str) {
        Some("add_global") => Ok(ProgramEdit::AddGlobal(name_of(v, "add_global")?)),
        Some("remove_global") => Ok(ProgramEdit::RemoveGlobal(name_of(v, "remove_global")?)),
        Some("remove_function") => Ok(ProgramEdit::RemoveFunction(name_of(v, "remove_function")?)),
        Some("add_function") => ProgramEdit::add_function_src(&source_of(v, "add_function")?)
            .map_err(|e| spec_error_payload(&e.into())),
        Some("replace_function") => {
            ProgramEdit::replace_function_src(&source_of(v, "replace_function")?)
                .map_err(|e| spec_error_payload(&e.into()))
        }
        Some(other) => Err(proto_err(format!("unknown edit kind `{other}`"))),
        None => Err(proto_err("edit needs a `kind` string".to_string())),
    }
}

/// The deterministic wire body of a slice (no wall-clock, no memo info).
fn slice_body(sdg: &Sdg, slice: &SpecSlice) -> Json {
    let variants = slice
        .variants()
        .iter()
        .map(|v| {
            Json::obj([
                ("name", Json::str(v.name.clone())),
                ("origin", Json::str(sdg.proc(v.proc).name.clone())),
                ("proc", Json::Int(i64::from(v.proc.0))),
                (
                    "vertices",
                    Json::arr(v.vertices.iter().map(|x| Json::Int(i64::from(x.0)))),
                ),
                (
                    "calls",
                    Json::arr(v.calls.iter().map(|(site, &callee)| {
                        Json::arr([Json::Int(i64::from(site.0)), Json::Int(callee as i64)])
                    })),
                ),
                (
                    "kept_params",
                    Json::arr(v.kept_params(sdg).into_iter().map(|i| Json::Int(i as i64))),
                ),
                ("state", Json::Int(i64::from(v.state.0))),
            ])
        })
        .collect();
    Json::obj([
        ("variants", Json::Array(variants)),
        (
            "main_variant",
            slice
                .main_variant
                .map_or(Json::Null, |i| Json::Int(i as i64)),
        ),
        (
            "elems",
            Json::arr(slice.elems().iter().map(|x| Json::Int(i64::from(x.0)))),
        ),
        ("total_vertices", Json::Int(slice.total_vertices() as i64)),
    ])
}

fn specialize_body(sp: &SpecializedProgram) -> Vec<(&'static str, Json)> {
    vec![
        ("source", Json::str(sp.source().to_string())),
        (
            "functions",
            Json::arr(sp.functions.iter().map(|f| {
                Json::obj([
                    ("name", Json::str(f.name.clone())),
                    ("origin", Json::str(f.origin.clone())),
                    (
                        "demanded_by",
                        Json::arr(f.demanded_by.iter().map(|&i| Json::Int(i as i64))),
                    ),
                ])
            })),
        ),
        (
            "per_criterion",
            Json::arr(
                sp.per_criterion
                    .iter()
                    .map(|fs| Json::arr(fs.iter().map(|&i| Json::Int(i as i64)))),
            ),
        ),
        (
            "total_criterion_variants",
            Json::Int(sp.total_criterion_variants as i64),
        ),
        ("reused_variants", Json::Int(sp.reused_variants as i64)),
        ("driver_main", Json::Bool(sp.driver_main)),
    ]
}
