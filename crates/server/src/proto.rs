//! The framed wire protocol: length-prefixed JSON over a byte stream.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := length payload
//! length  := u32 (little-endian) — byte length of `payload`
//! payload := one JSON value (UTF-8, no trailing bytes)
//! ```
//!
//! Requests and responses are JSON objects. Every request carries an `"op"`
//! string and a caller-chosen `"id"` (echoed verbatim in the response, so
//! clients may pipeline). Responses carry `"ok": true` plus op-specific
//! members, or `"ok": false` plus an [`error payload`](error_payload).
//!
//! The first exchange on a connection must be the version handshake: the
//! client sends `{"op":"hello","id":…,"version":1}` and the server answers
//! with its own `"version"`. A version mismatch or a non-`hello` first
//! request is rejected with a `proto` error and the connection is closed.
//!
//! Frames larger than the negotiated limit ([`DEFAULT_MAX_FRAME`] unless the
//! server is configured otherwise) are rejected *before* the payload is read,
//! so a hostile length prefix cannot make the server allocate.

use crate::json::Json;
use specslice::SpecError;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build. Bumped on incompatible changes to
/// the frame grammar or request/response shapes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default upper bound on a frame's payload size (16 MiB). Programs and
/// slices in the corpus are far smaller; the bound exists to stop a bad
/// length prefix from driving allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// A protocol-level failure while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// I/O error on the underlying stream.
    Io(io::Error),
    /// The length prefix exceeds the frame-size limit.
    TooLarge {
        /// Declared payload size.
        declared: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The payload is not valid UTF-8 or not valid JSON.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds limit of {limit} bytes"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame's raw payload bytes.
///
/// # Errors
///
/// [`FrameError::Eof`] on clean close before the length prefix,
/// [`FrameError::Io`] on stream errors (including truncation mid-frame),
/// [`FrameError::TooLarge`] when the prefix exceeds `max_frame`.
pub fn read_frame_bytes(stream: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Eof),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_le_bytes(len_buf) as usize;
    if declared > max_frame {
        return Err(FrameError::TooLarge {
            declared,
            limit: max_frame,
        });
    }
    let mut payload = vec![0u8; declared];
    stream.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Reads one frame and parses its payload as JSON.
///
/// # Errors
///
/// Everything [`read_frame_bytes`] returns, plus [`FrameError::Malformed`]
/// for non-UTF-8 or non-JSON payloads.
pub fn read_frame(stream: &mut impl Read, max_frame: usize) -> Result<Json, FrameError> {
    let payload = read_frame_bytes(stream, max_frame)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    Json::parse(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Serializes `value` and writes it as one frame — in a single `write_all`,
/// so a small frame goes out as one TCP segment instead of a length segment
/// followed by a Nagle-delayed payload segment.
///
/// # Errors
///
/// Propagates stream errors.
pub fn write_frame(stream: &mut impl Write, value: &Json) -> io::Result<()> {
    let text = value.to_text();
    let len = u32::try_from(text.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length",
        )
    })?;
    let mut frame = Vec::with_capacity(4 + text.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(text.as_bytes());
    stream.write_all(&frame)?;
    stream.flush()
}

/// Error kinds carried in `"error":{"kind":…}` payloads. One kind per
/// [`SpecError`] variant, plus server-side kinds for protocol, configuration,
/// snapshot, and session-lookup failures.
pub mod kind {
    /// Lexical/syntax error from the MiniC frontend.
    pub const PARSE: &str = "parse";
    /// Semantic error from the MiniC checker.
    pub const SEMA: &str = "sema";
    /// SDG construction failure.
    pub const SDG_BUILD: &str = "sdg_build";
    /// Malformed slicing criterion.
    pub const BAD_CRITERION: &str = "bad_criterion";
    /// Saturation engine rejected a query (pre*/post* precondition).
    pub const PDS: &str = "pds";
    /// Internal invariant violation in the slicer.
    pub const INTERNAL: &str = "internal";
    /// Malformed request, unknown op, or handshake violation.
    pub const PROTO: &str = "proto";
    /// Invalid server or environment configuration.
    pub const CONFIG: &str = "config";
    /// Snapshot file rejected (truncated, corrupt, wrong version, …).
    pub const SNAPSHOT: &str = "snapshot";
    /// The request names a session the server does not hold.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
}

/// Builds the `"error"` member of a failure response: `{"kind", "message"}`
/// plus `"line"` for frontend errors and `"context"` for internal ones.
pub fn error_payload(kind: &str, message: impl Into<String>) -> Json {
    Json::obj([
        ("kind", Json::str(kind)),
        ("message", Json::Str(message.into())),
    ])
}

/// Maps a [`SpecError`] to its structured error payload.
pub fn spec_error_payload(e: &SpecError) -> Json {
    match e {
        SpecError::Parse(le) => with_line(kind::PARSE, le),
        SpecError::Sema(le) => with_line(kind::SEMA, le),
        SpecError::SdgBuild(se) => error_payload(kind::SDG_BUILD, se.to_string()),
        SpecError::BadCriterion { reason } => error_payload(kind::BAD_CRITERION, reason.clone()),
        SpecError::Pds { stage, source } => Json::obj([
            ("kind", Json::str(kind::PDS)),
            ("stage", Json::str(*stage)),
            ("message", Json::str(source.to_string())),
        ]),
        SpecError::Internal { context, message } => Json::obj([
            ("kind", Json::str(kind::INTERNAL)),
            ("context", Json::str(*context)),
            ("message", Json::str(message.clone())),
        ]),
    }
}

fn with_line(kind: &str, le: &specslice::LangError) -> Json {
    Json::obj([
        ("kind", Json::str(kind)),
        ("line", Json::Int(i64::from(le.line()))),
        ("message", Json::str(le.message())),
    ])
}

/// Builds a failure response echoing `id`.
pub fn error_response(id: &Json, error: Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", error),
    ])
}

/// Builds a success response echoing `id`, merging `members` into the
/// response object.
pub fn ok_response(id: &Json, members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut obj = match Json::obj(members) {
        Json::Object(m) => m,
        _ => unreachable!(),
    };
    obj.insert("id".to_string(), id.clone());
    obj.insert("ok".to_string(), Json::Bool(true));
    Json::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let v = Json::obj([("op", Json::str("hello")), ("version", Json::Int(1))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_le_bytes());
        let got = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut Cursor::new(&buf), 1024) {
            Err(FrameError::TooLarge { declared, limit }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_eof() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new()), 1024),
            Err(FrameError::Eof)
        ));
        // Length prefix promising more bytes than present ⇒ Io, not Eof.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"tru");
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn malformed_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(b"not jso");
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn spec_error_mapping() {
        let e = SpecError::bad_criterion("empty");
        let p = spec_error_payload(&e);
        assert_eq!(p.get("kind").and_then(Json::as_str), Some("bad_criterion"));
        let e = SpecError::internal("readout", "boom");
        let p = spec_error_payload(&e);
        assert_eq!(p.get("kind").and_then(Json::as_str), Some("internal"));
        assert_eq!(p.get("context").and_then(Json::as_str), Some("readout"));
        let e = SpecError::pds("prestar", specslice::PdsError::EpsilonInQuery { count: 2 });
        let p = spec_error_payload(&e);
        assert_eq!(p.get("kind").and_then(Json::as_str), Some("pds"));
        assert_eq!(p.get("stage").and_then(Json::as_str), Some("prestar"));
        assert!(p
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| !m.is_empty()));
        let e = SpecError::from(specslice::LangError::parse(3, "bad token"));
        let p = spec_error_payload(&e);
        assert_eq!(p.get("kind").and_then(Json::as_str), Some("parse"));
        assert_eq!(p.get("line").and_then(Json::as_i64), Some(3));
    }
}
