//! `specslice-server` — a long-lived slicing daemon with persistent,
//! warm-startable sessions.
//!
//! The library behind the `specslice-server` binary. It layers a service on
//! top of the `specslice` pipeline:
//!
//! * [`proto`] — the framed wire protocol: length-prefixed JSON frames, a
//!   version handshake, structured error payloads (one kind per
//!   [`specslice::SpecError`] variant plus server-side kinds), and
//!   frame-size limits enforced before allocation.
//! * [`json`] — the in-tree, dependency-free JSON subset the protocol uses;
//!   its writer is deterministic (ordered object members), which is what
//!   makes query responses byte-comparable across thread counts and warm
//!   vs. cold sessions.
//! * [`session`] — the session manager: one `Sync` [`specslice::Slicer`]
//!   per program content hash, shared by all connections; queries run
//!   concurrently under read locks while edits serialize under the write
//!   lock; cold sessions are LRU-evicted under a byte budget estimated by
//!   [`specslice::Slicer::approx_bytes`].
//! * [`snapshot`] — the persistence layer: a checksummed little-endian
//!   binary image of each session's normalized source and criterion→slice
//!   memo, written on eviction/shutdown and imported on open, so a
//!   restarted daemon answers its first repeated query from the memo.
//! * [`server`] / [`client`] — the accept loop + dispatcher, and a small
//!   blocking client used by the example, tests, and bench harness.
//!
//! Everything is std-only: `TcpListener`/`UnixListener` for transport, the
//! in-tree JSON for encoding — no third-party dependencies, matching the
//! rest of the workspace.

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod snapshot;

pub use client::{Client, ClientError};
pub use json::Json;
pub use proto::{FrameError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
pub use server::{run, serve, Bind, Handle, ServerConfig};
pub use session::{Session, SessionManager};
pub use snapshot::{Snapshot, SnapshotError, FORMAT_VERSION};
