//! A minimal scoped work-stealing thread pool (the container has no
//! third-party crates, so this stands in for `rayon`, the way
//! `specslice_corpus::rng` stands in for `rand` and `specslice_bench::timer`
//! for Criterion).
//!
//! The only shape of parallelism the slicer needs is a *parallel map over a
//! borrowed slice*: a batch of independent slicing criteria, each answered
//! against shared read-only session state. [`Pool::map`] provides exactly
//! that, built on [`std::thread::scope`] so the items, the closure, and any
//! captured session state are plain borrows — no `'static` bounds, no
//! channels, no reference counting.
//!
//! Scheduling is classic work stealing: the input index space is dealt into
//! one deque per worker, each worker drains its own deque from the front,
//! and a worker that runs dry steals from the *back* of a victim's deque
//! (back-stealing keeps the contended ends apart). Items cost wildly
//! different amounts in slicing workloads — one criterion can saturate a
//! whole recursion web while its neighbors touch three vertices — so static
//! chunking alone would leave workers idle exactly when it hurts.
//!
//! Results are returned **in input order** regardless of which worker
//! answered which item, and [`Pool::new`]`(1)` degenerates to a plain
//! sequential loop on the calling thread (no threads spawned), so callers
//! get bit-for-bit reproducibility across thread counts for free as long as
//! their closure is a pure function of the item.
//!
//! ```
//! let pool = specslice_exec::Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of hardware threads available to this process (1 when the query
/// fails). The conventional default for [`Pool::new`].
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A present-but-invalid `SPECSLICE_NUM_THREADS` value: what was set, why
/// it was rejected, and the width the process was clamped to instead.
///
/// A silently ignored misconfiguration is the worst kind — a CI sweep that
/// exports `SPECSLICE_NUM_THREADS=O` (the letter) would happily "pass" at
/// the hardware default. [`configured_threads`] surfaces this as a value;
/// [`default_threads`] additionally logs it (once per process) and clamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadConfigError {
    /// The rejected value, verbatim.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
    /// The worker width used instead: `1` for a parsed-but-zero value
    /// (matching `SlicerConfig::num_threads` clamping), the hardware
    /// default for anything unparsable.
    pub clamped_to: usize,
}

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid SPECSLICE_NUM_THREADS={:?}: {}; clamped to {}",
            self.value, self.reason, self.clamped_to
        )
    }
}

impl std::error::Error for ThreadConfigError {}

/// Strictly parses a worker-thread count: a positive integer (surrounding
/// whitespace tolerated). `0` is rejected — a zero-width pool is always a
/// configuration mistake, even though downstream layers would clamp it.
pub fn parse_thread_count(value: &str) -> Result<usize, ThreadConfigError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(ThreadConfigError {
            value: value.to_string(),
            reason: "thread count must be at least 1".to_string(),
            clamped_to: 1,
        }),
        Ok(n) => Ok(n),
        Err(e) => Err(ThreadConfigError {
            value: value.to_string(),
            reason: format!("not a positive integer ({e})"),
            clamped_to: available_parallelism(),
        }),
    }
}

/// Reads `SPECSLICE_NUM_THREADS` strictly: `Ok(None)` when unset,
/// `Ok(Some(n))` for a valid positive integer, and a structured
/// [`ThreadConfigError`] for a present-but-invalid value (instead of the
/// silent fallback this function's callers historically applied). Servers
/// and CLIs should call this once at startup and surface the error.
pub fn configured_threads() -> Result<Option<usize>, ThreadConfigError> {
    match std::env::var("SPECSLICE_NUM_THREADS") {
        Ok(v) => parse_thread_count(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// The default worker-thread count for slicing sessions: the
/// `SPECSLICE_NUM_THREADS` environment variable when set to a valid
/// positive integer, otherwise [`available_parallelism`].
///
/// The variable exists for test sweeps and CI: exporting
/// `SPECSLICE_NUM_THREADS=1|2|4` runs every default-configured session at
/// that width without touching code (output is bit-for-bit identical at
/// every setting — the knob only trades wall-clock for cores). Explicitly
/// configured widths are never overridden.
///
/// A present-but-invalid value is **not** silently ignored: the structured
/// [`ThreadConfigError`] is logged to stderr (once per process) and its
/// [`clamped_to`](ThreadConfigError::clamped_to) width is used — `1` for
/// `0`, the hardware default for unparsable text. Callers that want the
/// error as a value use [`configured_threads`].
pub fn default_threads() -> usize {
    match configured_threads() {
        Ok(Some(n)) => n,
        Ok(None) => available_parallelism(),
        Err(e) => {
            static LOGGED: std::sync::Once = std::sync::Once::new();
            LOGGED.call_once(|| eprintln!("specslice-exec: {e}"));
            e.clamped_to
        }
    }
}

/// What one worker did during a [`Pool::map_init_stats`] call — how many
/// items it answered, how many it had to steal, and how long it was busy.
/// Exposed so callers (e.g. `specslice`'s batch slicer) can report
/// per-thread utilization.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index in `0..threads`.
    pub worker: usize,
    /// Items this worker processed.
    pub items: usize,
    /// Of those, how many were stolen from another worker's deque.
    pub steals: usize,
    /// Wall-clock from the worker's start to its last item retired.
    pub busy: Duration,
}

/// A fixed-width scoped thread pool. Creating one is free — threads are
/// spawned per call inside a [`std::thread::scope`], which is what lets the
/// mapped closure borrow from the caller's stack.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers. `0` and `1` both mean "run on the
    /// calling thread, sequentially".
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to [`available_parallelism`].
    pub fn with_available_parallelism() -> Pool {
        Pool::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, &item)` to every item, in parallel, returning the
    /// results in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, item| f(i, item))
    }

    /// [`map`](Pool::map) with per-worker state: `init` runs once on each
    /// worker thread and the resulting value is passed (mutably) to every
    /// item that worker answers. This is how callers thread scratch buffers
    /// through the hot loop without sharing or locking them.
    pub fn map_init<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        self.map_init_stats(items, init, f).0
    }

    /// [`map_init`](Pool::map_init), also returning one [`WorkerStats`] per
    /// worker that ran.
    pub fn map_init_stats<S, T, R, I, F>(
        &self,
        items: &[T],
        init: I,
        f: F,
    ) -> (Vec<R>, Vec<WorkerStats>)
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        self.map_init_stats_weighted(items, init, |_| 1, f)
    }

    /// [`map_init_stats`](Pool::map_init_stats) where each item contributes
    /// `weight(item)` (instead of 1) to the per-worker `items`/`steals`
    /// accounting.
    ///
    /// For callers that dispatch *groups* of logical work items — e.g. the
    /// one-pass batch slicer mapping over criterion groups — this keeps the
    /// invariant that per-worker `items` sum to the logical item count, not
    /// the group count, no matter how the groups were packed.
    pub fn map_init_stats_weighted<S, T, R, I, W, F>(
        &self,
        items: &[T],
        init: I,
        weight: W,
        f: F,
    ) -> (Vec<R>, Vec<WorkerStats>)
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        W: Fn(&T) -> usize + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = self.threads.min(items.len()).max(1);
        if n == 1 {
            // Sequential fast path: no threads, no queues, no locks. This is
            // also the semantics anchor — the parallel path must produce
            // exactly what this loop produces.
            let start = Instant::now();
            let mut state = init();
            let out: Vec<R> = items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
            let stats = vec![WorkerStats {
                worker: 0,
                items: items.iter().map(&weight).sum(),
                steals: 0,
                busy: start.elapsed(),
            }];
            return (out, stats);
        }

        // Deal the index space into contiguous per-worker deques. Contiguity
        // keeps each worker's initial run cache-friendly; stealing handles
        // whatever imbalance the deal leaves behind.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..n)
            .map(|w| {
                let lo = w * items.len() / n;
                let hi = (w + 1) * items.len() / n;
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let (slots, stats) = std::thread::scope(|scope| {
            let queues = &queues;
            let init = &init;
            let weight = &weight;
            let f = &f;
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    scope.spawn(move || {
                        let start = Instant::now();
                        let mut state = init();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let mut done = 0usize;
                        let mut steals = 0usize;
                        loop {
                            // Own deque first (front); then scan the other
                            // workers round-robin and steal from the back.
                            let mut next = lock(&queues[w]).pop_front();
                            let mut stolen = false;
                            if next.is_none() {
                                for off in 1..n {
                                    if let Some(i) = lock(&queues[(w + off) % n]).pop_back() {
                                        stolen = true;
                                        next = Some(i);
                                        break;
                                    }
                                }
                            }
                            // All deques empty means all work is claimed;
                            // no new items are ever enqueued, so exit.
                            let Some(i) = next else { break };
                            let units = weight(&items[i]);
                            done += units;
                            if stolen {
                                steals += units;
                            }
                            local.push((i, f(&mut state, i, &items[i])));
                        }
                        let stats = WorkerStats {
                            worker: w,
                            items: done,
                            steals,
                            busy: start.elapsed(),
                        };
                        (local, stats)
                    })
                })
                .collect();

            let mut slots: Vec<Option<R>> =
                std::iter::repeat_with(|| None).take(items.len()).collect();
            let mut stats = Vec::with_capacity(n);
            for handle in handles {
                // Re-raise a worker's panic with its original payload, so
                // the caller sees the real message/location instead of a
                // generic "worker panicked".
                let (local, worker) = match handle.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                for (i, r) in local {
                    debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                    slots[i] = Some(r);
                }
                stats.push(worker);
            }
            (slots, stats)
        });

        let out = slots
            .into_iter()
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect();
        (out, stats)
    }
}

/// Locks a queue, shrugging off poisoning: a poisoned deque of indices is
/// still valid (the panic that poisoned it propagates via the scope anyway).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        let none: Vec<usize> = pool.map(&[] as &[usize], |_, &x| x);
        assert!(none.is_empty());
        assert_eq!(pool.map(&[7usize], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = Pool::new(4).map(&items, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // Each worker's state counts only its own items. If `init` were
        // shared (one state aliased across workers), some item would observe
        // a count larger than its worker's total; if a worker's counter were
        // reset or skipped, the multiset of observed counts would not be
        // exactly 1..=items for each worker.
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = Pool::new(4).map_init_stats(
            &items,
            || 0usize,
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.len(), items.len());
        assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), items.len());
        let mut observed = out;
        observed.sort_unstable();
        let mut expected: Vec<usize> = stats.iter().flat_map(|s| 1..=s.items).collect();
        expected.sort_unstable();
        assert_eq!(observed, expected);
    }

    #[test]
    fn imbalanced_work_gets_stolen() {
        // Index 0 is enormously more expensive than the rest; with static
        // chunking worker 0 would finish last while the others idle. The
        // pool must let other workers drain worker 0's remaining chunk.
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = Pool::new(4).map_init_stats(
            &items,
            || (),
            |(), _, &x| {
                if x == 0 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                x
            },
        );
        assert_eq!(out, items);
        let total: usize = stats.iter().map(|s| s.items).sum();
        assert_eq!(total, items.len());
    }

    #[test]
    fn weighted_stats_sum_to_logical_items() {
        // Groups of varying width: per-worker `items` must sum to the
        // total logical weight at every thread count, and results stay in
        // input order.
        let groups: Vec<Vec<u32>> = (0..23).map(|g| (0..(g % 5 + 1)).collect()).collect();
        let total: usize = groups.iter().map(Vec::len).sum();
        for threads in [1, 2, 4, 8] {
            let (out, stats) = Pool::new(threads).map_init_stats_weighted(
                &groups,
                || (),
                Vec::len,
                |(), i, g| (i, g.len()),
            );
            assert_eq!(out.len(), groups.len(), "{threads} threads");
            assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
            assert_eq!(
                stats.iter().map(|s| s.items).sum::<usize>(),
                total,
                "{threads} threads"
            );
            assert!(stats.iter().all(|s| s.steals <= s.items));
        }
    }

    #[test]
    fn thread_count_parsing_is_strict() {
        // Valid widths parse (whitespace tolerated).
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 2 "), Ok(2));
        // `0` is rejected with a structured error that clamps to 1 — the
        // historical behavior was a silent `max(1)`.
        let zero = parse_thread_count("0").unwrap_err();
        assert_eq!(zero.clamped_to, 1);
        assert!(zero.reason.contains("at least 1"), "{zero}");
        // Unparsable text is rejected, clamping to the hardware default
        // (never 0) — historically a silent fallback.
        for bad in ["abc", "-1", "2.5", ""] {
            let err = parse_thread_count(bad).unwrap_err();
            assert_eq!(err.value, bad);
            assert_eq!(err.clamped_to, available_parallelism(), "{bad:?}");
            assert!(err.clamped_to >= 1);
            // The rendering names the variable and the clamp, so a log line
            // alone is actionable.
            let msg = err.to_string();
            assert!(msg.contains("SPECSLICE_NUM_THREADS"), "{msg}");
            assert!(msg.contains("clamped"), "{msg}");
        }
    }

    #[test]
    fn zero_threads_means_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(0).map(&[1, 2, 3], |_, &x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..321).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(2_654_435_761).rotate_left(7);
        let seq = Pool::new(1).map(&items, f);
        for threads in [2, 5, 16] {
            assert_eq!(Pool::new(threads).map(&items, f), seq, "{threads} threads");
        }
    }
}
