//! The unified execution API, re-exported — run original and specialized
//! programs through an interchangeable backend.
//!
//! Slicing's output is *programs*: the semantic guarantee of the paper is
//! that a specialization slice, run on the same input as the original,
//! agrees with it on the slicing criterion. Validating that — and
//! measuring the §5 claim that specialized programs do strictly less work —
//! means executing MiniC a lot, so execution goes through one API with two
//! observationally identical backends:
//!
//! * [`Interp`] — the tree-walking reference interpreter
//!   (`specslice-interp`);
//! * [`Vm`] — the compile-once bytecode machine (`specslice-vm`).
//!
//! Build an [`ExecRequest`] (named budget defaults replace the magic fuel
//! numbers that used to be scattered around), then either pick a backend
//! explicitly or let [`run`] dispatch to the process default, selected by
//! `SPECSLICE_EXEC_BACKEND=interp|vm` (strict parsing, interpreter
//! fallback; see [`parse_backend`] / [`configured_backend`]):
//!
//! ```
//! use specslice::exec::{self, ExecRequest};
//!
//! let program = specslice_lang::frontend(
//!     "int main() { int x; scanf(\"%d\", &x); printf(\"%d\", x + 1); return 0; }",
//! )?;
//! let out = exec::run(&ExecRequest::new(&program).with_input(&[41]))?;
//! assert_eq!(out.output, vec![42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`crate::SpecializedProgram::run`] is the one-call version for slicer
//! output.

pub use specslice_interp::{
    configured_backend, parse_backend, BackendConfigError, BackendKind, ExecBackend, ExecError,
    ExecOutcome, ExecRequest, Interp,
};
pub use specslice_vm::{backend, default_backend, run, Module, Vm, VmStats};
