//! Incremental re-slicing: editing a [`Slicer`] session in place.
//!
//! A session caches three program-dependent artifacts — the SDG, the
//! SDG→PDS encoding, and the reachable-configuration automaton — plus a
//! criterion → slice memo. Rebuilding all of that after every edit throws
//! away exactly the work a sustained edit-reslice loop needs to keep.
//! [`Slicer::apply_edit`] threads a [`ProgramDelta`] through every layer
//! instead:
//!
//! 1. the delta is applied, re-normalized, and re-checked
//!    (`specslice_lang::delta`);
//! 2. the SDG is patched — dependence edges are recomputed only for dirty
//!    procedures (`specslice_sdg::patch`);
//! 3. the PDS encoding is patched in place: surviving internal rules are
//!    identifier-remapped, only rebuilt procedures' rules and the
//!    interprocedural plumbing are re-derived ([`encode::patch_encoding`]);
//! 4. the reachable-configuration automaton is kept (symbol-remapped)
//!    whenever the edit cannot have changed it — i.e. no rebuilt procedure
//!    is call-reachable from `main` — and dropped for lazy rebuild
//!    otherwise;
//! 5. memo entries are kept (identifier-remapped, re-canonicalized, and
//!    re-read-out once into the session's fresh [`VariantStore`] — the
//!    superseded store's rows are keyed by pre-edit vertex ids) unless the
//!    edit's *impact region* — every procedure call-reachable from a
//!    rebuilt one — intersects the procedures their slice mentions.
//!    Unaffected criteria are then answered without re-running `post*`,
//!    `Prestar`, the MRD pipeline, or the read-out: a hit clones the
//!    cached `VariantId` rows.
//!
//! The contract is exact: after `apply_edit`, every query answers
//! byte-for-byte what a fresh `Slicer` on the edited program would answer
//! (`tests/incremental.rs` checks this across the corpus). On any patching
//! failure the session falls back to a full rebuild — the incremental path
//! changes cost, never results.

use crate::encode;
use crate::readout::{self, ReadoutScratch};
use crate::slicer::{CachedSlice, KeySelect, MemoEntry, MemoKey, Slicer};
use crate::store::VariantStore;
use crate::SpecError;
use specslice_fsa::{canonicalize_mrd, Nfa, Symbol};
use specslice_lang::{Program, ProgramDelta};
use specslice_sdg::build::build_sdg;
use specslice_sdg::{patch_sdg, CallSiteId, CalleeKind, ProcId, Sdg, SdgPatch, VertexId};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

/// What one [`Slicer::apply_edit`] call reused versus recomputed.
#[derive(Clone, Debug, Default)]
pub struct EditReport {
    /// Procedures whose dependence edges were recomputed.
    pub rebuilt_procs: Vec<String>,
    /// Procedures whose dependence edges were copied from the old SDG.
    pub reused_procs: usize,
    /// PDS rules carried over from the old encoding (symbol-remapped).
    pub rules_reused: usize,
    /// PDS rules re-derived from the patched SDG.
    pub rules_rebuilt: usize,
    /// Memo entries kept across the edit (remapped to new identifiers).
    pub memo_kept: usize,
    /// Memo entries invalidated by the edit.
    pub memo_dropped: usize,
    /// Whether the cached reachable-configuration automaton survived.
    pub reachable_kept: bool,
    /// `true` when patching was not possible and the session fell back to a
    /// full rebuild (results are identical either way).
    pub full_rebuild: bool,
}

impl Slicer {
    /// Applies a program edit to the session in place, patching the cached
    /// SDG, PDS encoding, reachable automaton, and slice memo instead of
    /// rebuilding them.
    ///
    /// After this returns, the session behaves exactly like
    /// `Slicer::from_program` on the edited program — same slices, byte for
    /// byte — but queries whose slice region the edit did not touch are
    /// answered from the patched memo without re-running the saturation
    /// pipeline.
    ///
    /// ```
    /// use specslice::{Criterion, Slicer};
    /// use specslice_lang::{ProgramDelta, ProgramEdit};
    ///
    /// let mut slicer = Slicer::from_source(
    ///     "int g; void p(int a) { g = a; } \
    ///      int main() { p(2); printf(\"%d\", g); return 0; }",
    /// )?;
    /// let criterion = Criterion::printf_actuals(slicer.sdg());
    /// let before = slicer.slice(&criterion)?;
    ///
    /// // Edit p, re-slice: the session is patched, not rebuilt.
    /// let program = slicer.program().unwrap().clone();
    /// let replacement = specslice_lang::frontend(
    ///     "int g; void p(int a) { g = a + 1; } \
    ///      int main() { p(2); printf(\"%d\", g); return 0; }",
    /// )?;
    /// let delta = ProgramDelta::diff(&program, &replacement);
    /// let report = slicer.apply_edit(&delta)?;
    /// assert!(report.rebuilt_procs.contains(&"p".to_string()));
    /// let after = slicer.slice(&Criterion::printf_actuals(slicer.sdg()))?;
    /// assert_eq!(before.elems().len(), after.elems().len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] / [`SpecError::Sema`] when the delta does not
    /// apply cleanly (unknown targets, or the edited program fails the
    /// checker); [`SpecError::Internal`] for sessions built with
    /// `Slicer::from_sdg`, which carry no program to edit. The session is
    /// unchanged when an error is returned.
    pub fn apply_edit(&mut self, delta: &ProgramDelta) -> Result<EditReport, SpecError> {
        let program = self.program.as_ref().ok_or_else(|| {
            SpecError::internal(
                "apply_edit",
                "session was built from an SDG only; use Slicer::from_source / \
                 from_program to enable incremental edits",
            )
        })?;
        let new_program = delta.apply(program)?;
        let touched = delta.touched_functions(program);
        let full = delta.touches_globals();
        match patch_sdg(&self.sdg, &new_program, &touched, full) {
            Ok(patch) => Ok(self.install_patch(new_program, patch)),
            // A failed patch means the old session state cannot be
            // correlated with the edited program (e.g. a hand-modified SDG);
            // results must not depend on which path ran, so rebuild.
            Err(_) => self.rebuild_for(new_program),
        }
    }

    /// Swaps the patched state in, migrating every cache the edit spared.
    fn install_patch(&mut self, new_program: Program, patch: SdgPatch) -> EditReport {
        let (enc, enc_stats) = encode::patch_encoding(&self.enc, &patch.sdg, &patch);

        // The edit's impact region: procedures whose slices could observe
        // the edit. A slice's automaton mentions every procedure on its
        // dependence paths *and* on the call chains from `main` down to its
        // vertices, so a statement edit can only influence slices that
        // mention the edited procedure itself. Only a *call-structure*
        // change (procedure added, call inserted/removed) can create or
        // destroy chains into procedures it reaches — those cast their
        // call-descendant net as well. "impact ∩ mentions = ∅" then
        // certifies a slice's dependence paths and stacks are untouched.
        // The same certificate covers forward (post*) memo entries: a
        // forward language can only change if a mentioned procedure was
        // rebuilt or a new call chain routes through the criterion's
        // procedure — and the criterion's own procedures anchor `mentions`
        // even when the slice is empty (see below).
        let mut impact = call_descendants(&patch.sdg, patch.structure_changed.iter().cloned());
        impact.extend(patch.rebuilt.iter().cloned());

        // Symbol translation old encoding → new encoding.
        let old_enc = &self.enc;
        let sym_map = |s: Symbol| -> Option<Symbol> {
            if let Some(v) = old_enc.symbol_vertex(s) {
                patch.map_vertex(v).map(|nv| Symbol(nv.0))
            } else if let Some(c) = old_enc.symbol_call_site(s) {
                patch
                    .map_call_site(c)
                    .map(|nc| Symbol(enc.n_vertices + nc.0))
            } else {
                None
            }
        };
        // Procedures an entry depends on, in old-SDG terms: everything its
        // slice automaton mentions, *plus* the criterion's own vertices and
        // stack sites. The latter matter exactly when the slice is empty —
        // an unreachable criterion's automaton mentions nothing, but the
        // entry still turns stale the moment an edit routes a call chain to
        // the criterion's procedure, so the criterion anchors it.
        let mentions = |key: &MemoKey, a6: &Nfa| -> BTreeSet<String> {
            let mut out = BTreeSet::new();
            let add_vertex = |out: &mut BTreeSet<String>, v: VertexId| {
                if let Some(vx) = self.sdg.vertices.get(v.index()) {
                    out.insert(self.sdg.proc(vx.proc).name.clone());
                }
            };
            let add_site = |out: &mut BTreeSet<String>, c: CallSiteId| {
                if let Some(site) = self.sdg.call_sites.get(c.index()) {
                    out.insert(self.sdg.proc(site.caller).name.clone());
                    if let CalleeKind::User(p) = site.callee {
                        out.insert(self.sdg.proc(p).name.clone());
                    }
                }
            };
            for s in a6.symbols() {
                if let Some(v) = old_enc.symbol_vertex(s) {
                    add_vertex(&mut out, v);
                } else if let Some(c) = old_enc.symbol_call_site(s) {
                    add_site(&mut out, c);
                }
            }
            match &key.select {
                KeySelect::AllContexts(vs) => {
                    for &v in vs {
                        add_vertex(&mut out, VertexId(v));
                    }
                }
                KeySelect::Configurations(cs) => {
                    for (v, stack) in cs {
                        add_vertex(&mut out, VertexId(*v));
                        for &c in stack {
                            add_site(&mut out, CallSiteId(c));
                        }
                    }
                }
            }
            out
        };

        // Migrate the memo: remap identifiers, keep what the impact region
        // provably spares, re-canonicalize so a memo hit is byte-identical
        // to a fresh computation on the edited program. The edit also
        // replaces the session's variant store (the old store's rows are
        // keyed by pre-edit vertex ids; slices already returned keep their
        // own handle to it), so each surviving entry's cached rows are
        // rebuilt by re-reading the migrated automaton out into the fresh
        // store — still skipping `Prestar` and the MRD pipeline, the two
        // super-linear stages. Entries are migrated in key order so the
        // fresh store's interned ids are process-deterministic.
        let new_store = Arc::new(VariantStore::new());
        let old_memo = {
            let mut guard = self.memo.write().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        let mut old_entries: Vec<(MemoKey, MemoEntry)> = old_memo.into_iter().collect();
        old_entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut scratch = ReadoutScratch::default();
        let mut kept: HashMap<MemoKey, MemoEntry> = HashMap::new();
        let mut dropped = 0usize;
        for (key, entry) in old_entries {
            let survives = mentions(&key, &entry.a6).is_disjoint(&impact);
            let migrated = survives
                .then(|| {
                    let nk = key.remap(|v| patch.map_vertex(v), |c| patch.map_call_site(c))?;
                    let a6 = canonicalize_mrd(&entry.a6.remap_symbols(sym_map)?);
                    // Read out against a throwaway store first: a read-out
                    // that fails halfway must not strand the rows it
                    // already interned in the session's fresh store.
                    let staging = Arc::new(VariantStore::new());
                    let slice = readout::read_out_in(
                        &patch.sdg,
                        &enc,
                        &a6,
                        self.config.validate,
                        key.dir.into(),
                        &mut scratch,
                        &staging,
                    )
                    .ok()?
                    .reintern_into(&new_store);
                    let cached = CachedSlice::of(&slice);
                    Some((
                        nk,
                        MemoEntry {
                            a6,
                            cached,
                            ..entry
                        },
                    ))
                })
                .flatten();
            match migrated {
                Some((nk, ne)) => {
                    kept.insert(nk, ne);
                }
                None => dropped += 1,
            }
        }

        // The reachable-configuration automaton describes `post*` from
        // `main`: it survives exactly when no rebuilt procedure is live
        // (call-reachable from `main`) — edits confined to dead code cannot
        // change it. Otherwise it is dropped and lazily rebuilt.
        let live = call_descendants(
            &patch.sdg,
            std::iter::once(patch.sdg.proc(patch.sdg.main).name.clone()),
        );
        let reachable = OnceLock::new();
        let mut reachable_kept = false;
        if patch.rebuilt.is_disjoint(&live) {
            if let Some(r) = self.reachable.get().and_then(|r| r.as_ref().ok()) {
                if let Some(remapped) = r.remap_symbols(sym_map) {
                    let _ = reachable.set(Ok(remapped));
                    reachable_kept = true;
                }
            }
        }

        let report = EditReport {
            rebuilt_procs: patch.rebuilt.iter().cloned().collect(),
            reused_procs: patch.reused_procs,
            rules_reused: enc_stats.rules_reused,
            rules_rebuilt: enc_stats.rules_rebuilt,
            memo_kept: kept.len(),
            memo_dropped: dropped,
            reachable_kept,
            full_rebuild: false,
        };

        self.program = Some(new_program);
        self.sdg = patch.sdg;
        self.enc = enc;
        self.store = new_store;
        self.reachable = reachable;
        // The call graph may have changed shape; the planner's region map
        // is cheap to rebuild, so always recompute it lazily.
        self.regions = std::sync::OnceLock::new();
        *self.memo.write().unwrap_or_else(|e| e.into_inner()) = kept;
        report
    }

    /// Full-rebuild fallback: same observable behavior, no reuse.
    fn rebuild_for(&mut self, new_program: Program) -> Result<EditReport, SpecError> {
        let sdg = build_sdg(&new_program)?;
        let enc = encode::encode_sdg(&sdg);
        let report = EditReport {
            rebuilt_procs: sdg.procs.iter().map(|p| p.name.clone()).collect(),
            full_rebuild: true,
            ..EditReport::default()
        };
        let dropped = self.memo_len();
        self.program = Some(new_program);
        self.sdg = sdg;
        self.enc = enc;
        self.store = Arc::new(VariantStore::new());
        self.reachable = OnceLock::new();
        self.regions = OnceLock::new();
        self.memo.write().unwrap_or_else(|e| e.into_inner()).clear();
        Ok(EditReport {
            memo_dropped: dropped,
            ..report
        })
    }
}

/// Every procedure call-reachable from `seeds` (including the seeds), by
/// name, over the SDG's user-call edges.
fn call_descendants(sdg: &Sdg, seeds: impl IntoIterator<Item = String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut work: Vec<ProcId> = seeds
        .into_iter()
        .filter_map(|n| sdg.proc_by_name.get(&n).copied())
        .collect();
    for &p in &work {
        out.insert(sdg.proc(p).name.clone());
    }
    while let Some(p) = work.pop() {
        for site in sdg.call_sites.iter().filter(|c| c.caller == p) {
            if let CalleeKind::User(q) = site.callee {
                if out.insert(sdg.proc(q).name.clone()) {
                    work.push(q);
                }
            }
        }
    }
    out
}
