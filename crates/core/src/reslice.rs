//! The reslicing self-check (§8.3 of the paper).
//!
//! Specialization slicing should be idempotent: slicing the regenerated
//! program `R` with the (alphabet-mapped) criterion must yield the same
//! configuration language as slicing the original `S`. Vertices and call
//! sites of `R` are renamed copies of `S`'s, so the comparison goes through
//! a finite-state transduction `T_C` (here: a symbol-to-symbol map):
//!
//! * reslice criterion: `C' = T_C⁻¹(C) ∩ Poststar[P_R](entry_main)`;
//! * verdict: `L(A6_S) = L(T_C(A6_R))`.

use crate::criteria::{self, Criterion};
use crate::encode::{self, Encoded};
use crate::regen::RegenOutput;
use crate::{SpecError, SpecSlice};
use specslice_fsa::ops::{equivalent, relabel, relabel_inverse};
use specslice_fsa::Symbol;
use specslice_lang::ast::StmtId;
use specslice_sdg::build::build_sdg;
use specslice_sdg::{InSlot, OutSlot, Sdg, VertexKind};
use std::collections::HashMap;

/// Outcome of the reslicing check.
#[derive(Clone, Debug)]
pub struct ResliceReport {
    /// `true` when the two slice languages agree (the expected verdict).
    pub languages_equal: bool,
    /// Number of `R` symbols successfully mapped back to `S`.
    pub mapped_symbols: usize,
    /// `R` vertices that could not be mapped (should be empty).
    pub unmapped: Vec<String>,
}

/// Runs the §8.3 reslicing check for a completed specialization slice.
///
/// One-shot wrapper that re-encodes the original SDG; sessions use
/// [`crate::Slicer::reslice_check`], which reuses the cached encoding.
///
/// # Errors
///
/// Fails if the regenerated program cannot be rebuilt into an SDG or the
/// reslice criterion cannot be constructed.
pub fn reslice_check(
    sdg_s: &Sdg,
    criterion: &Criterion,
    slice_s: &SpecSlice,
    regen: &RegenOutput,
) -> Result<ResliceReport, SpecError> {
    let enc_s = encode::encode_sdg(sdg_s);
    reslice_check_reusing(sdg_s, &enc_s, criterion, slice_s, regen)
}

/// [`reslice_check`] against a session's cached encoding of the original
/// program (the regenerated program `R` still gets a fresh encoding — it is
/// a different program).
pub fn reslice_check_reusing(
    sdg_s: &Sdg,
    enc_s: &Encoded,
    criterion: &Criterion,
    slice_s: &SpecSlice,
    regen: &RegenOutput,
) -> Result<ResliceReport, SpecError> {
    let sdg_r = build_sdg(&regen.program)?;
    let enc_r = encode::encode_sdg(&sdg_r);

    // Build the symbol map, resolving Entry vertices via the slice.
    let (mut map, unmapped) = symbol_map_with_slice(sdg_s, enc_s, &sdg_r, &enc_r, regen, slice_s)?;

    // C' = T⁻¹(C) ∩ Poststar[P_R](entry_main).
    let query_s = criteria::query_automaton(sdg_s, enc_s, criterion)?;
    let c_nfa = query_s.to_nfa(encode::MAIN_CONTROL);
    // Preimages of each S symbol under the map.
    let mut preimages: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    for (&r, &s) in &map {
        preimages.entry(s).or_default().push(r);
    }
    let inv = relabel_inverse(&c_nfa, |s| preimages.get(&s).cloned().unwrap_or_default());
    let reach_r = criteria::reachable_configurations(&sdg_r, &enc_r)?;
    let c_prime = specslice_fsa::ops::intersect(&inv, &reach_r);
    let (c_prime, _) = c_prime.trimmed();
    if c_prime.is_empty_language() {
        return Err(SpecError::bad_criterion(
            "reslice criterion is empty after transduction",
        ));
    }

    // Slice R (against the encoding already built above) and compare
    // languages. R is a different program, so its slice content goes into a
    // transient store — the session store only ever holds rows keyed by the
    // original program's vertex ids.
    let query_r =
        criteria::query_automaton_reusing(&sdg_r, &enc_r, None, &Criterion::Automaton(c_prime))?;
    let store_r = std::sync::Arc::new(crate::store::VariantStore::new());
    let (slice_r, _) = crate::slicer::run_query(
        specslice_pds::Direction::Backward,
        &sdg_r,
        &enc_r,
        &query_r,
        true,
        &store_r,
    )?;
    // Map any leftover symbols to a fresh sink symbol so relabel is total.
    let sink = Symbol(u32::MAX);
    for (_, l, _) in slice_r.a6.transitions() {
        if let Some(s) = l {
            map.entry(s).or_insert(sink);
        }
    }
    let a6_r_mapped = relabel(&slice_r.a6, |s| map[&s]);
    let languages_equal = equivalent(&slice_s.a6, &a6_r_mapped);
    Ok(ResliceReport {
        languages_equal,
        mapped_symbols: map.len(),
        unmapped,
    })
}

/// `symbol_map` with Entry vertices resolved through the slice.
fn symbol_map_with_slice(
    sdg_s: &Sdg,
    enc_s: &Encoded,
    sdg_r: &Sdg,
    enc_r: &Encoded,
    regen: &RegenOutput,
    slice_s: &SpecSlice,
) -> Result<(HashMap<Symbol, Symbol>, Vec<String>), SpecError> {
    let (mut map, mut unmapped) = raw_symbol_map(sdg_s, enc_s, sdg_r, enc_r, regen)?;
    // Entry vertices.
    for v in sdg_r.vertex_ids() {
        if matches!(sdg_r.vertex(v).kind, VertexKind::Entry) {
            let name = &sdg_r.proc(sdg_r.vertex(v).proc).name;
            if let Some(&vi) = regen.variant_of_function.get(name) {
                let s_proc = slice_s.meta(vi).proc;
                map.insert(
                    enc_r.vertex_symbol(v),
                    enc_s.vertex_symbol(sdg_s.proc(s_proc).entry),
                );
                unmapped.retain(|u| u != &sdg_r.label(v));
            }
        }
    }
    Ok((map, unmapped))
}

/// The stmt/slot-based part of the map (everything except Entry vertices).
fn raw_symbol_map(
    sdg_s: &Sdg,
    enc_s: &Encoded,
    sdg_r: &Sdg,
    enc_r: &Encoded,
    regen: &RegenOutput,
) -> Result<(HashMap<Symbol, Symbol>, Vec<String>), SpecError> {
    // Reuse `symbol_map` minus the Entry arm by inlining here.
    let mut s_anchor: HashMap<StmtId, specslice_sdg::VertexId> = HashMap::new();
    let mut s_site_of_stmt: HashMap<StmtId, specslice_sdg::CallSiteId> = HashMap::new();
    for v in sdg_s.vertex_ids() {
        match sdg_s.vertex(v).kind {
            VertexKind::Statement { stmt }
            | VertexKind::Predicate { stmt }
            | VertexKind::Jump { stmt } => {
                s_anchor.insert(stmt, v);
            }
            VertexKind::Call { stmt, site } => {
                s_anchor.insert(stmt, v);
                s_site_of_stmt.insert(stmt, site);
            }
            _ => {}
        }
    }
    let r_site_to_s = |site: specslice_sdg::CallSiteId| -> Option<specslice_sdg::CallSiteId> {
        let stmt_r = sdg_r.call_site(site).stmt;
        let stmt_s = regen.stmt_origin.get(&stmt_r)?;
        s_site_of_stmt.get(stmt_s).copied()
    };
    let param_origin =
        |fname: &str, i: usize| -> Option<usize> { regen.param_maps.get(fname)?.get(i).copied() };

    let mut map: HashMap<Symbol, Symbol> = HashMap::new();
    let mut unmapped: Vec<String> = Vec::new();
    for v in sdg_r.vertex_ids() {
        let vx = sdg_r.vertex(v);
        let r_proc_name = sdg_r.proc(vx.proc).name.clone();
        let mapped: Option<Symbol> = match &vx.kind {
            VertexKind::Entry => None, // handled by symbol_map_with_slice
            VertexKind::Statement { stmt }
            | VertexKind::Predicate { stmt }
            | VertexKind::Jump { stmt }
            | VertexKind::Call { stmt, .. } => regen
                .stmt_origin
                .get(stmt)
                .and_then(|s| s_anchor.get(s))
                .map(|&sv| enc_s.vertex_symbol(sv)),
            VertexKind::FormalIn { slot } => {
                map_formal_in(sdg_s, enc_s, regen, &r_proc_name, slot, &param_origin)
            }
            VertexKind::FormalOut { slot } => {
                map_formal_out(sdg_s, enc_s, regen, &r_proc_name, slot, &param_origin)
            }
            VertexKind::ActualIn { site, slot } => r_site_to_s(*site).and_then(|s_site| {
                let site_rec = sdg_s.call_site(s_site);
                let is_lib = matches!(
                    sdg_r.call_site(*site).callee,
                    specslice_sdg::CalleeKind::Library(_)
                );
                let slot_s = match slot {
                    // Library arguments are never renumbered; user-call
                    // params map through the callee variant's kept list.
                    InSlot::Param(i) if !is_lib => {
                        let callee_name = callee_name_r(sdg_r, *site);
                        InSlot::Param(param_origin(&callee_name, *i)?)
                    }
                    other => other.clone(),
                };
                sdg_s
                    .actual_in_for_slot(site_rec, &slot_s)
                    .map(|sv| enc_s.vertex_symbol(sv))
            }),
            VertexKind::ActualOut { site, slot } => r_site_to_s(*site).and_then(|s_site| {
                let site_rec = sdg_s.call_site(s_site);
                let is_lib = matches!(
                    sdg_r.call_site(*site).callee,
                    specslice_sdg::CalleeKind::Library(_)
                );
                let slot_s = match slot {
                    OutSlot::RefParam(i) if !is_lib => {
                        let callee_name = callee_name_r(sdg_r, *site);
                        OutSlot::RefParam(param_origin(&callee_name, *i)?)
                    }
                    other => other.clone(),
                };
                sdg_s
                    .actual_out_for_slot(site_rec, &slot_s)
                    .map(|sv| enc_s.vertex_symbol(sv))
            }),
        };
        match mapped {
            Some(s) => {
                map.insert(enc_r.vertex_symbol(v), s);
            }
            None if matches!(vx.kind, VertexKind::Entry) => {}
            None => unmapped.push(sdg_r.label(v)),
        }
    }
    for site in &sdg_r.call_sites {
        match r_site_to_s(site.id) {
            Some(s_site) => {
                map.insert(enc_r.call_symbol(site.id), enc_s.call_symbol(s_site));
            }
            None => unmapped.push(format!("site {:?}", site.id)),
        }
    }
    Ok((map, unmapped))
}

/// For an R call site, the name of the called R function (used to find its
/// parameter-origin map). Library callees return their library name, which
/// has no param map — slot mapping then falls through correctly because
/// library slots are never `Param`-renumbered.
fn callee_name_r(sdg_r: &Sdg, site: specslice_sdg::CallSiteId) -> String {
    match sdg_r.call_site(site).callee {
        specslice_sdg::CalleeKind::User(p) => sdg_r.proc(p).name.clone(),
        specslice_sdg::CalleeKind::Library(l) => l.name().to_string(),
    }
}

fn map_formal_in(
    sdg_s: &Sdg,
    enc_s: &Encoded,
    regen: &RegenOutput,
    r_proc_name: &str,
    slot: &InSlot,
    param_origin: &impl Fn(&str, usize) -> Option<usize>,
) -> Option<Symbol> {
    let s_proc_name = origin_proc_name(regen, r_proc_name)?;
    let s_proc = sdg_s.proc_named(&s_proc_name)?;
    let slot_s = match slot {
        InSlot::Param(i) => InSlot::Param(param_origin(r_proc_name, *i)?),
        other => other.clone(),
    };
    s_proc
        .formal_ins
        .iter()
        .copied()
        .find(|&v| sdg_s.in_slot(v) == Some(&slot_s))
        .map(|v| enc_s.vertex_symbol(v))
}

fn map_formal_out(
    sdg_s: &Sdg,
    enc_s: &Encoded,
    regen: &RegenOutput,
    r_proc_name: &str,
    slot: &OutSlot,
    param_origin: &impl Fn(&str, usize) -> Option<usize>,
) -> Option<Symbol> {
    let s_proc_name = origin_proc_name(regen, r_proc_name)?;
    let s_proc = sdg_s.proc_named(&s_proc_name)?;
    let slot_s = match slot {
        OutSlot::RefParam(i) => OutSlot::RefParam(param_origin(r_proc_name, *i)?),
        other => other.clone(),
    };
    s_proc
        .formal_outs
        .iter()
        .copied()
        .find(|&v| sdg_s.out_slot(v) == Some(&slot_s))
        .map(|v| enc_s.vertex_symbol(v))
}

/// Strips the `__k` variant suffix to recover the original procedure name.
fn origin_proc_name(regen: &RegenOutput, r_name: &str) -> Option<String> {
    if regen.variant_of_function.contains_key(r_name) {
        match r_name.rfind("__") {
            Some(i) if r_name[i + 2..].chars().all(|c| c.is_ascii_digit()) => {
                Some(r_name[..i].to_string())
            }
            _ => Some(r_name.to_string()),
        }
    } else {
        None
    }
}
