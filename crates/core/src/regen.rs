//! Regenerating executable source from specialized variants
//! (Alg. 1, step 5 — "pretty-print the specialized SDG").
//!
//! Each emitted variant becomes one MiniC function: statements whose anchor
//! vertex is in the variant's (interned, sorted) vertex row are kept, the
//! signature keeps exactly the parameters whose formal vertices are kept,
//! and every call site targets the callee *variant* chosen by the MRD
//! automaton. The regenerated program is re-normalized and re-checked, so
//! the output is executable by construction; origin maps (new statement →
//! original statement, new parameter index → original index) support the
//! §8.3 reslicing check.
//!
//! Two producers share the emitter: [`regenerate`] turns one [`SpecSlice`]
//! into a program, and the whole-program driver
//! ([`crate::Slicer::specialize_program`]) emits the merged variant set of
//! many criteria at once — each deduplicated variant is emitted (and
//! pretty-printed) exactly once, no matter how many criteria demanded it,
//! and a synthesized `main` drives the per-criterion `main` variants when
//! the criteria disagree about `main`.

use crate::readout::{kept_params_row, SpecSlice};
use crate::SpecError;
use specslice_lang::ast::{
    Block, CallStmt, Callee, Expr, Function, Param, Program, RetKind, Stmt, StmtId, StmtKind,
};
use specslice_lang::{normalize, pretty, sema};
use specslice_sdg::{CallSiteId, OutSlot, ProcId, Sdg, VertexId, VertexKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A regenerated (specialized) program plus provenance maps.
#[derive(Clone, Debug)]
pub struct RegenOutput {
    /// The specialized program (normalized and semantically checked).
    pub program: Program,
    /// Pretty-printed source text.
    pub source: String,
    /// New statement id → original statement id.
    pub stmt_origin: HashMap<StmtId, StmtId>,
    /// New function name → index of its variant in the emitted set (for
    /// [`regenerate`]: the variant's index in the input slice; for
    /// `specialize_program`: the merged function index).
    pub variant_of_function: HashMap<String, usize>,
    /// New function name → (new param index → original param index).
    pub param_maps: HashMap<String, Vec<usize>>,
}

/// One function to emit: a named variant with its (sorted, dense) vertex
/// row and its resolved callee indices (into the same emit list).
#[derive(Clone, Debug)]
pub(crate) struct EmitFn {
    /// The emitted function's name.
    pub(crate) name: String,
    /// The original procedure it specializes.
    pub(crate) proc: ProcId,
    /// Sorted dense vertex row (the variant's `Elems`).
    pub(crate) row: Vec<u32>,
    /// Original call site → index (into the emit list) of the callee.
    pub(crate) calls: BTreeMap<CallSiteId, usize>,
}

impl EmitFn {
    fn contains(&self, v: VertexId) -> bool {
        self.row.binary_search(&v.0).is_ok()
    }
}

/// How the emitted program gets its entry point.
#[derive(Clone, Debug)]
pub(crate) enum EmitMain {
    /// Empty slice: emit a runnable empty `main`.
    Empty,
    /// One `main` variant (named `main`) — the single-criterion shape.
    Single(usize),
    /// Several `main` variants (named `main__k`): synthesize a `main` that
    /// invokes each listed one in order.
    Driver(Vec<usize>),
}

/// Anchors: original statement → its anchor vertex, and statement → site.
struct Anchors {
    stmt_vertex: HashMap<StmtId, VertexId>,
    stmt_site: HashMap<StmtId, CallSiteId>,
}

fn anchors(sdg: &Sdg) -> Anchors {
    let mut stmt_vertex = HashMap::new();
    let mut stmt_site = HashMap::new();
    for v in sdg.vertex_ids() {
        match sdg.vertex(v).kind {
            VertexKind::Statement { stmt }
            | VertexKind::Predicate { stmt }
            | VertexKind::Jump { stmt } => {
                stmt_vertex.insert(stmt, v);
            }
            VertexKind::Call { stmt, site } => {
                stmt_vertex.insert(stmt, v);
                stmt_site.insert(stmt, site);
            }
            _ => {}
        }
    }
    Anchors {
        stmt_vertex,
        stmt_site,
    }
}

/// Regenerates executable source for a specialization slice.
///
/// # Errors
///
/// Fails if the slice violates structural invariants (e.g. a statement kept
/// under a dropped predicate) or if the regenerated program does not pass
/// the MiniC semantic checker — both indicate internal bugs.
pub fn regenerate(
    sdg: &Sdg,
    program: &Program,
    slice: &SpecSlice,
) -> Result<RegenOutput, SpecError> {
    // §6.2: functions whose address is taken keep their original name as an
    // *empty stub* (the pointer-value space), so their variants are always
    // suffixed even when unique.
    let addr_taken = address_taken(program);
    let mut per_proc_seen: HashMap<ProcId, usize> = HashMap::new();
    let mut fns: Vec<EmitFn> = Vec::with_capacity(slice.variant_count());
    for (i, meta) in slice.metas().iter().enumerate() {
        let base = &sdg.proc(meta.proc).name;
        let k = per_proc_seen.entry(meta.proc).or_insert(0);
        *k += 1;
        let name = if addr_taken.contains(base) {
            crate::readout::variant_name(base, 0, *k, true)
        } else {
            meta.name.clone()
        };
        fns.push(EmitFn {
            name,
            proc: meta.proc,
            row: slice.row_dense(i),
            calls: meta.calls.clone(),
        });
    }
    let main = match slice.main_variant {
        Some(i) => EmitMain::Single(i),
        None => EmitMain::Empty,
    };
    emit_program(sdg, program, &fns, &main)
}

/// Emits one executable program from a set of specialized variants: the
/// shared back half of [`regenerate`] and
/// [`crate::Slicer::specialize_program`].
pub(crate) fn emit_program(
    sdg: &Sdg,
    program: &Program,
    fns: &[EmitFn],
    main: &EmitMain,
) -> Result<RegenOutput, SpecError> {
    let anchors = anchors(sdg);
    let mut functions = Vec::new();
    let mut variant_of_function = HashMap::new();
    let mut param_maps = HashMap::new();

    // Emit variants grouped by original function order.
    let mut order: Vec<usize> = (0..fns.len()).collect();
    order.sort_by_key(|&i| (fns[i].proc.0, i));

    for &vi in &order {
        let original = &program.functions[fns[vi].proc.index()];
        let f = emit_fn(sdg, program, fns, vi, original, &anchors)?;
        variant_of_function.insert(f.name.clone(), vi);
        param_maps.insert(
            f.name.clone(),
            kept_params_row(sdg, fns[vi].proc, &fns[vi].row),
        );
        functions.push(f);
    }

    match main {
        EmitMain::Empty => {
            // Empty slice: still produce a runnable (empty) program.
            functions.push(Function {
                name: "main".into(),
                ret: RetKind::Int,
                params: Vec::new(),
                body: Block::default(),
                line: 0,
            });
        }
        EmitMain::Single(mi) => {
            // The entry variant keeps the name `main` — with one legitimate
            // exception: a program that takes `main`'s address forces the
            // §6.2 rename to `main__1`, and the surviving-FuncRef stub pass
            // below re-emits an (empty) `main` as the pointer-value space.
            if fns[*mi].name != "main" && !address_taken(program).contains("main") {
                return Err(SpecError::internal(
                    "regen",
                    format!(
                        "single-main emission requires the entry variant to keep the \
                         name `main` (got `{}`)",
                        fns[*mi].name
                    ),
                ));
            }
        }
        EmitMain::Driver(mains) => {
            // The criteria disagree about `main`: every `main` variant is a
            // suffixed function, and a synthesized entry point runs each in
            // order. (Globals persist across the calls — the driver
            // documents and exercises every variant, it does not replay
            // each criterion's program from a pristine heap.)
            let stmts = mains
                .iter()
                .map(|&mi| {
                    Stmt::new(
                        0,
                        StmtKind::Call(CallStmt {
                            callee: Callee::Named(fns[mi].name.clone()),
                            args: Vec::new(),
                            assign_to: None,
                        }),
                    )
                })
                .collect();
            functions.push(Function {
                name: "main".into(),
                ret: RetKind::Int,
                params: Vec::new(),
                body: Block { stmts },
                line: 0,
            });
        }
    }

    // Address stubs: emptied originals retained for FuncRefs that survive.
    let mut surviving_refs: BTreeSet<String> = BTreeSet::new();
    for f in &functions {
        f.body.visit(&mut |s| match &s.kind {
            StmtKind::Decl { init: Some(e), .. } | StmtKind::Assign { value: e, .. } => {
                collect_funcrefs_expr(e, &mut surviving_refs)
            }
            StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
                collect_funcrefs_expr(cond, &mut surviving_refs)
            }
            StmtKind::Return { value: Some(e) } => collect_funcrefs_expr(e, &mut surviving_refs),
            StmtKind::Call(c) => {
                for a in &c.args {
                    collect_funcrefs_expr(a, &mut surviving_refs);
                }
            }
            _ => {}
        });
    }
    for name in &surviving_refs {
        if let Some(orig) = program.function(name) {
            functions.push(Function {
                name: orig.name.clone(),
                ret: orig.ret,
                params: orig.params.clone(),
                body: Block::default(),
                line: orig.line,
            });
        }
    }

    // Globals actually used by the emitted bodies, in original order.
    let mut used: BTreeSet<String> = BTreeSet::new();
    for f in &functions {
        collect_vars_function(f, &mut used);
    }
    let globals: Vec<String> = program
        .globals
        .iter()
        .filter(|g| used.contains(*g))
        .cloned()
        .collect();

    let raw = Program { globals, functions };

    // Collect original ids in visit pre-order, then renumber and zip.
    let mut old_ids: Vec<StmtId> = Vec::new();
    for f in &raw.functions {
        f.body.visit(&mut |s| old_ids.push(s.id));
    }
    let normalized = normalize::normalize(raw);
    sema::check(&normalized).map_err(|e| {
        SpecError::internal("regen", format!("regenerated program failed checking: {e}"))
    })?;
    let mut new_ids: Vec<StmtId> = Vec::new();
    for f in &normalized.functions {
        f.body.visit(&mut |s| new_ids.push(s.id));
    }
    if new_ids.len() != old_ids.len() {
        return Err(SpecError::internal(
            "regen",
            "normalization changed the regenerated program's shape",
        ));
    }
    let stmt_origin: HashMap<StmtId, StmtId> = new_ids
        .into_iter()
        .zip(old_ids)
        .filter(|(_, old)| *old != StmtId::UNASSIGNED)
        .collect();

    // Render into one pre-sized buffer; each deduplicated variant is
    // printed exactly once, however many criteria demanded it.
    let mut source = String::with_capacity(1024);
    pretty::pretty_program_into(&normalized, &mut source);
    Ok(RegenOutput {
        program: normalized,
        source,
        stmt_origin,
        variant_of_function,
        param_maps,
    })
}

fn emit_fn(
    sdg: &Sdg,
    program: &Program,
    fns: &[EmitFn],
    vi: usize,
    original: &Function,
    anchors: &Anchors,
) -> Result<Function, SpecError> {
    let this = &fns[vi];
    let kept = kept_params_row(sdg, this.proc, &this.row);
    let params: Vec<Param> = kept.iter().map(|&i| original.params[i].clone()).collect();

    let body = emit_block(sdg, fns, vi, &original.body, anchors)?;

    // Local declarations: every local name used in the body that is neither
    // a kept parameter, a global, nor declared by a kept Decl statement.
    let mut used: BTreeSet<String> = BTreeSet::new();
    collect_vars_block(&body, &mut used);
    let mut declared: BTreeSet<String> = params.iter().map(|p| p.name.clone()).collect();
    body.visit(&mut |s| {
        if let StmtKind::Decl { name, .. } = &s.kind {
            declared.insert(name.clone());
        }
    });
    let mut decls: Vec<Stmt> = Vec::new();
    // Walk original declarations in order so re-declared locals keep their
    // (fn-pointer) types.
    original.body.visit(&mut |s| {
        if let StmtKind::Decl { name, ty, .. } = &s.kind {
            if used.contains(name) && !declared.contains(name) && !program.is_global(name) {
                declared.insert(name.clone());
                decls.push(Stmt::new(
                    s.line,
                    StmtKind::Decl {
                        name: name.clone(),
                        ty: *ty,
                        init: None,
                    },
                ));
            }
        }
    });
    // A dropped parameter whose name is still used by kept statements has
    // become scratch storage (the slice needs neither its incoming nor its
    // outgoing value): re-declare it as a local.
    for (i, param) in original.params.iter().enumerate() {
        if kept.contains(&i) || !used.contains(&param.name) || declared.contains(&param.name) {
            continue;
        }
        declared.insert(param.name.clone());
        let ty = match param.mode {
            specslice_lang::ast::ParamMode::FnPtr { arity } => {
                specslice_lang::ast::Type::FnPtr { arity }
            }
            _ => specslice_lang::ast::Type::Int,
        };
        decls.push(Stmt::new(
            original.line,
            StmtKind::Decl {
                name: param.name.clone(),
                ty,
                init: None,
            },
        ));
    }
    // Any remaining used-but-undeclared non-global name (e.g. a dropped
    // parameter name that still appears in a kept by-ref argument of the
    // caller) is a bug at this level.
    for u in &used {
        let is_fn = program.function(u).is_some() || fns.iter().any(|f| f.name == *u);
        if !declared.contains(u) && !program.is_global(u) && !is_fn {
            return Err(SpecError::internal(
                "regen",
                format!("variant `{}` uses undeclared `{u}`", this.name),
            ));
        }
    }
    let mut stmts = decls;
    stmts.extend(body.stmts);
    Ok(Function {
        name: this.name.clone(),
        ret: original.ret,
        params,
        body: Block { stmts },
        line: original.line,
    })
}

fn emit_block(
    sdg: &Sdg,
    fns: &[EmitFn],
    vi: usize,
    block: &Block,
    anchors: &Anchors,
) -> Result<Block, SpecError> {
    let this = &fns[vi];
    let mut out = Vec::new();
    for s in &block.stmts {
        let kept = anchors
            .stmt_vertex
            .get(&s.id)
            .is_some_and(|&v| this.contains(v));
        match &s.kind {
            StmtKind::Decl { .. } => {
                if kept {
                    out.push(reid(s.id, s.line, s.kind.clone()));
                }
            }
            StmtKind::Assign { .. }
            | StmtKind::Printf { .. }
            | StmtKind::Scanf { .. }
            | StmtKind::Exit { .. }
            | StmtKind::Return { .. }
            | StmtKind::Break
            | StmtKind::Continue => {
                if kept {
                    out.push(reid(s.id, s.line, s.kind.clone()));
                }
            }
            StmtKind::Call(c) => {
                if !kept {
                    continue;
                }
                let site = anchors.stmt_site[&s.id];
                if matches!(
                    sdg.call_site(site).callee,
                    specslice_sdg::CalleeKind::Library(_)
                ) {
                    out.push(reid(s.id, s.line, s.kind.clone()));
                    continue;
                }
                let callee_idx = *this.calls.get(&site).ok_or_else(|| {
                    SpecError::internal(
                        "regen",
                        format!(
                            "variant `{}` keeps a call at {site:?} with no callee variant",
                            this.name
                        ),
                    )
                })?;
                let callee = &fns[callee_idx];
                let kept_params = kept_params_row(sdg, callee.proc, &callee.row);
                let args: Vec<Expr> = kept_params.iter().map(|&i| c.args[i].clone()).collect();
                // Keep the result assignment only when the return actual-out
                // survives in this variant.
                let site_rec = sdg.call_site(site);
                let ret_kept = sdg
                    .actual_out_for_slot(site_rec, &OutSlot::Ret)
                    .is_some_and(|ao| this.contains(ao));
                let assign_to = if ret_kept { c.assign_to.clone() } else { None };
                out.push(reid(
                    s.id,
                    s.line,
                    StmtKind::Call(CallStmt {
                        callee: Callee::Named(callee.name.clone()),
                        args,
                        assign_to,
                    }),
                ));
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let then_b = emit_block(sdg, fns, vi, then_block, anchors)?;
                let else_b = match else_block {
                    Some(e) => Some(emit_block(sdg, fns, vi, e, anchors)?),
                    None => None,
                };
                if kept {
                    let else_out = match else_b {
                        Some(b) if !b.stmts.is_empty() => Some(b),
                        _ => None,
                    };
                    out.push(reid(
                        s.id,
                        s.line,
                        StmtKind::If {
                            cond: cond.clone(),
                            then_block: then_b,
                            else_block: else_out,
                        },
                    ));
                } else if !then_b.stmts.is_empty()
                    || else_b.as_ref().is_some_and(|b| !b.stmts.is_empty())
                {
                    return Err(SpecError::internal(
                        "regen",
                        "statement kept under a dropped predicate (control \
                         dependence violated)",
                    ));
                }
            }
            StmtKind::While { cond, body } => {
                let body_b = emit_block(sdg, fns, vi, body, anchors)?;
                if kept {
                    out.push(reid(
                        s.id,
                        s.line,
                        StmtKind::While {
                            cond: cond.clone(),
                            body: body_b,
                        },
                    ));
                } else if !body_b.stmts.is_empty() {
                    return Err(SpecError::internal(
                        "regen",
                        "loop body kept under a dropped loop predicate",
                    ));
                }
            }
        }
    }
    Ok(Block { stmts: out })
}

/// Builds a statement carrying the *original* statement id (used to recover
/// provenance after renumbering).
fn reid(old: StmtId, line: u32, kind: StmtKind) -> Stmt {
    Stmt {
        id: old,
        line,
        kind,
    }
}

fn collect_vars_function(f: &Function, out: &mut BTreeSet<String>) {
    collect_vars_block(&f.body, out);
}

fn collect_funcrefs_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::FuncRef(name) => {
            out.insert(name.clone());
        }
        Expr::Unary(_, inner) => collect_funcrefs_expr(inner, out),
        Expr::Binary(_, a, b) => {
            collect_funcrefs_expr(a, out);
            collect_funcrefs_expr(b, out);
        }
        Expr::Call(c) => {
            for a in &c.args {
                collect_funcrefs_expr(a, out);
            }
        }
        Expr::Int(_) | Expr::Var(_) => {}
    }
}

/// Function names whose address is taken anywhere in `p`.
pub(crate) fn address_taken(p: &Program) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    p.visit_all(|_, s| match &s.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Assign { value: e, .. } => {
            collect_funcrefs_expr(e, &mut out)
        }
        StmtKind::Call(c) => {
            for a in &c.args {
                collect_funcrefs_expr(a, &mut out);
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            collect_funcrefs_expr(cond, &mut out)
        }
        StmtKind::Return { value: Some(e) } => collect_funcrefs_expr(e, &mut out),
        StmtKind::Printf { args, .. } => {
            for a in args {
                collect_funcrefs_expr(a, &mut out);
            }
        }
        StmtKind::Exit { code } => collect_funcrefs_expr(code, &mut out),
        _ => {}
    });
    out
}

fn collect_vars_block(b: &Block, out: &mut BTreeSet<String>) {
    b.visit(&mut |s| match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            out.insert(name.clone());
            if let Some(e) = init {
                out.extend(e.vars());
            }
        }
        StmtKind::Assign { name, value } => {
            out.insert(name.clone());
            out.extend(value.vars());
        }
        StmtKind::Call(c) => {
            for a in &c.args {
                out.extend(a.vars());
            }
            if let Some(t) = &c.assign_to {
                out.insert(t.clone());
            }
            if let Callee::Indirect(v) = &c.callee {
                out.insert(v.clone());
            }
        }
        StmtKind::Printf { args, .. } => {
            for a in args {
                out.extend(a.vars());
            }
        }
        StmtKind::Scanf {
            targets, assign_to, ..
        } => {
            out.extend(targets.iter().cloned());
            if let Some(t) = assign_to {
                out.insert(t.clone());
            }
        }
        StmtKind::Exit { code } => out.extend(code.vars()),
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => out.extend(cond.vars()),
        StmtKind::Return { value: Some(e) } => out.extend(e.vars()),
        _ => {}
    });
}
