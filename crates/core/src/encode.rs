//! Encoding an SDG as a pushdown system (Defn. 3.2 / Fig. 8 of the paper).
//!
//! The stack alphabet is the union of SDG vertex ids and call-site labels;
//! the transition relation of the resulting PDS *is* the unrolled SDG
//! (Defn. 3.4). Five edge kinds are encoded:
//!
//! | SDG edge                    | PDS rule(s)                                |
//! |-----------------------------|--------------------------------------------|
//! | flow / control (/ §6.1)     | `⟨p, u⟩ ↪ ⟨p, v⟩`                          |
//! | call `c → e` at `C`         | `⟨p, c⟩ ↪ ⟨p, e C⟩`                        |
//! | param-in `ai → fi` at `C`   | `⟨p, ai⟩ ↪ ⟨p, fi C⟩`                      |
//! | param-out `fo → ao` at `C`  | `⟨p, fo⟩ ↪ ⟨p_fo, ε⟩`, `⟨p_fo, C⟩ ↪ ⟨p, ao⟩` |
//!
//! Summary edges are *not* encoded (they are unnecessary for Alg. 1).

use specslice_fsa::Symbol;
use specslice_pds::{ControlLoc, Pds, Rhs, RuleIndex};
use specslice_sdg::{CallSiteId, EdgeKind, Sdg, SdgPatch, VertexId, VertexKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The shared control location `p` of Fig. 8.
pub const MAIN_CONTROL: ControlLoc = ControlLoc(0);

/// Process-wide count of [`encode_sdg`] invocations. Exists so tests (and
/// suspicious callers) can observe that a [`crate::Slicer`] session encodes
/// its SDG exactly once no matter how many queries it answers.
static ENCODE_CALLS: AtomicUsize = AtomicUsize::new(0);

/// How many times [`encode_sdg`] has run in this process.
pub fn encode_call_count() -> usize {
    ENCODE_CALLS.load(Ordering::Relaxed)
}

/// The SDG-as-PDS encoding plus the symbol interning tables.
///
/// Symbols and control locations are interned into contiguous `u32` ranges
/// here, at encode time: vertex symbols are `0..n_vertices`, call-site
/// symbols `n_vertices..n_vertices + n_call_sites`, and control locations
/// `0` (`p`) followed by one dense id per formal-out (`p_fo`). Every
/// downstream stage — saturation, the automaton chain, read-out — works on
/// those dense ids; [`Encoded::index`] is the prebuilt CSR rule index the
/// saturation engines share across all of a session's queries.
#[derive(Clone, Debug)]
pub struct Encoded {
    /// The pushdown system.
    pub pds: Pds,
    /// The per-PDS saturation rule index (built once, immutable).
    pub index: RuleIndex,
    /// Number of SDG vertices (vertex symbols are `0..n_vertices`).
    pub n_vertices: u32,
    /// Number of call sites (call-site symbols are `n_vertices..`).
    pub n_call_sites: u32,
    /// Control location for each formal-out vertex (`p_fo` of Fig. 8).
    pub fo_controls: HashMap<VertexId, ControlLoc>,
}

impl Encoded {
    /// The stack symbol of vertex `v`.
    pub fn vertex_symbol(&self, v: VertexId) -> Symbol {
        Symbol(v.0)
    }

    /// The stack symbol of call site `c`.
    pub fn call_symbol(&self, c: CallSiteId) -> Symbol {
        Symbol(self.n_vertices + c.0)
    }

    /// Decodes a symbol back into a vertex, if it is one.
    pub fn symbol_vertex(&self, s: Symbol) -> Option<VertexId> {
        (s.0 < self.n_vertices).then_some(VertexId(s.0))
    }

    /// Decodes a symbol back into a call site, if it is one.
    pub fn symbol_call_site(&self, s: Symbol) -> Option<CallSiteId> {
        (s.0 >= self.n_vertices && s.0 < self.n_vertices + self.n_call_sites)
            .then(|| CallSiteId(s.0 - self.n_vertices))
    }

    /// Every symbol of the stack alphabet `Γ`.
    pub fn all_symbols(&self) -> impl Iterator<Item = Symbol> {
        (0..self.n_vertices + self.n_call_sites).map(Symbol)
    }

    /// Estimated resident bytes of the encoding: the PDS rule table, the
    /// prebuilt CSR saturation index over it, and the formal-out control
    /// map. Deterministic (a pure function of rule and vertex counts), so
    /// the server's session budget computed from it is reproducible.
    pub fn approx_bytes(&self) -> usize {
        let rules = self.pds.rule_count();
        // A rule is ~20 bytes; the index re-materializes each rule into its
        // per-RHS/LHS CSR rows (~24 bytes a rule) plus dense offset tables
        // over the symbol space (~8 bytes a symbol).
        rules * (20 + 24)
            + (self.n_vertices + self.n_call_sites) as usize * 8
            + self.fo_controls.len() * 24
    }
}

/// Encodes `sdg` as a pushdown system following Fig. 8.
pub fn encode_sdg(sdg: &Sdg) -> Encoded {
    ENCODE_CALLS.fetch_add(1, Ordering::Relaxed);
    let n_vertices = sdg.vertex_count() as u32;
    let n_call_sites = sdg.call_sites.len() as u32;
    let mut pds = Pds::new(1); // control location p

    // One control location per formal-out vertex.
    let mut fo_controls = HashMap::new();
    for v in sdg.vertex_ids() {
        if matches!(sdg.vertex(v).kind, VertexKind::FormalOut { .. }) {
            fo_controls.insert(v, pds.add_control());
        }
    }

    let enc_sym = |v: VertexId| Symbol(v.0);

    for u in sdg.vertex_ids() {
        for &(v, kind) in sdg.successors(u) {
            if matches!(
                kind,
                EdgeKind::Flow | EdgeKind::Control | EdgeKind::LibActual
            ) {
                pds.add_internal(MAIN_CONTROL, enc_sym(u), MAIN_CONTROL, enc_sym(v));
            }
        }
    }
    add_interprocedural_rules(&mut pds, sdg, &fo_controls, n_vertices);

    let index = RuleIndex::new(&pds);
    Encoded {
        pds,
        index,
        n_vertices,
        n_call_sites,
        fo_controls,
    }
}

/// The interprocedural rules of Fig. 8 — call and parameter-in pushes,
/// parameter-out internal rules through `p_fo` control locations, and one
/// pop per formal-out with a parameter-out edge. Shared by [`encode_sdg`]
/// and [`patch_encoding`]: the incremental path's exactness contract is
/// that both derive identical rule *sets*, so the derivation exists once.
/// Returns the number of rules added.
fn add_interprocedural_rules(
    pds: &mut Pds,
    sdg: &Sdg,
    fo_controls: &HashMap<VertexId, ControlLoc>,
    n_vertices: u32,
) -> usize {
    let enc_sym = |v: VertexId| Symbol(v.0);
    let enc_call = |c: CallSiteId| Symbol(n_vertices + c.0);
    let mut added = 0usize;
    for u in sdg.vertex_ids() {
        for &(v, kind) in sdg.successors(u) {
            match kind {
                EdgeKind::Call => {
                    let site = match sdg.vertex(u).kind {
                        VertexKind::Call { site, .. } => site,
                        _ => unreachable!("call edge from non-call vertex"),
                    };
                    pds.add_push(
                        MAIN_CONTROL,
                        enc_sym(u),
                        MAIN_CONTROL,
                        enc_sym(v),
                        enc_call(site),
                    );
                    added += 1;
                }
                EdgeKind::ParamIn => {
                    let site = match &sdg.vertex(u).kind {
                        VertexKind::ActualIn { site, .. } => *site,
                        _ => unreachable!("param-in edge from non-actual-in"),
                    };
                    pds.add_push(
                        MAIN_CONTROL,
                        enc_sym(u),
                        MAIN_CONTROL,
                        enc_sym(v),
                        enc_call(site),
                    );
                    added += 1;
                }
                EdgeKind::ParamOut => {
                    let site = match &sdg.vertex(v).kind {
                        VertexKind::ActualOut { site, .. } => *site,
                        _ => unreachable!("param-out edge to non-actual-out"),
                    };
                    let pfo = fo_controls[&u];
                    // The pop rule is added once per formal-out (below);
                    // the internal rule once per (fo, site) pair.
                    pds.add_internal(pfo, enc_call(site), MAIN_CONTROL, enc_sym(v));
                    added += 1;
                }
                // Intra-procedural kinds are the caller's business; summary
                // edges are never encoded (unnecessary for Alg. 1).
                EdgeKind::Flow | EdgeKind::Control | EdgeKind::LibActual | EdgeKind::Summary => {}
            }
        }
    }
    // Pop rules ⟨p, fo⟩ ↪ ⟨p_fo, ε⟩, one per formal-out vertex that has at
    // least one parameter-out edge — in vertex order, so the rule list (and
    // with it every order-sensitive saturation *counter*, like peak
    // worklist depth) is identical from process to process. Iterating the
    // randomly-seeded `fo_controls` map here used to vary the rule order
    // per run; results were unaffected (saturation is confluent) but the
    // benchmark's deterministic-counter gate would have tripped on noise.
    for v in sdg.vertex_ids() {
        let Some(&pfo) = fo_controls.get(&v) else {
            continue;
        };
        let has_param_out = sdg
            .successors(v)
            .iter()
            .any(|&(_, k)| k == EdgeKind::ParamOut);
        if has_param_out {
            pds.add_pop(MAIN_CONTROL, enc_sym(v), pfo);
            added += 1;
        }
    }
    added
}

/// What [`patch_encoding`] reused versus re-derived (reported through
/// `Slicer::apply_edit`'s edit report).
#[derive(Clone, Copy, Debug, Default)]
pub struct EncodingPatchStats {
    /// Internal rules carried over from the previous encoding (symbol ids
    /// rewritten through the patch's vertex map).
    pub rules_reused: usize,
    /// Rules re-derived from the patched SDG (rebuilt procedures' internal
    /// rules plus every interprocedural rule).
    pub rules_rebuilt: usize,
}

/// Patches a cached encoding after an SDG edit, in place of a full
/// [`encode_sdg`] pass.
///
/// The bulk of an encoding — one internal rule per control/flow/§6.1 edge —
/// survives an edit untouched except for symbol renumbering, so those rules
/// are rewritten through the patch's vertex map instead of being re-derived
/// from adjacency lists. Rules of rebuilt procedures and all
/// interprocedural rules (call / parameter-in / parameter-out / pop, which
/// depend on cross-procedure identifiers) are re-derived from the patched
/// SDG. The resulting rule *set* is exactly `encode_sdg(sdg)`'s — only the
/// rule order may differ, which no downstream output depends on (the MRD
/// automaton is canonical by language).
pub fn patch_encoding(old: &Encoded, sdg: &Sdg, patch: &SdgPatch) -> (Encoded, EncodingPatchStats) {
    let n_vertices = sdg.vertex_count() as u32;
    let n_call_sites = sdg.call_sites.len() as u32;
    let mut pds = Pds::new(1);
    let mut stats = EncodingPatchStats::default();

    // Control locations must match a fresh encode exactly: one per
    // formal-out, in vertex order.
    let mut fo_controls = HashMap::new();
    for v in sdg.vertex_ids() {
        if matches!(sdg.vertex(v).kind, VertexKind::FormalOut { .. }) {
            fo_controls.insert(v, pds.add_control());
        }
    }

    let enc_sym = |v: VertexId| Symbol(v.0);

    // 1. Carry over the internal rules of procedures whose dependence edges
    // were copied: their vertices map through the patch, rebuilt
    // procedures' vertices do not.
    for rule in old.pds.rules() {
        if rule.from_loc != MAIN_CONTROL {
            continue; // parameter-out plumbing: re-derived below
        }
        let Rhs::Internal(rhs) = rule.rhs else {
            continue; // push/pop rules: re-derived below
        };
        let (Some(u), Some(v)) = (old.symbol_vertex(rule.from_sym), old.symbol_vertex(rhs)) else {
            continue;
        };
        let (Some(nu), Some(nv)) = (patch.map_vertex(u), patch.map_vertex(v)) else {
            continue;
        };
        pds.add_internal(MAIN_CONTROL, enc_sym(nu), MAIN_CONTROL, enc_sym(nv));
        stats.rules_reused += 1;
    }

    // 2. Internal rules of rebuilt procedures, from the patched SDG.
    for name in &patch.rebuilt {
        let Some(&pid) = sdg.proc_by_name.get(name) else {
            continue; // removed procedure
        };
        for &u in &sdg.proc(pid).vertices {
            for &(v, kind) in sdg.successors(u) {
                if matches!(
                    kind,
                    EdgeKind::Flow | EdgeKind::Control | EdgeKind::LibActual
                ) {
                    pds.add_internal(MAIN_CONTROL, enc_sym(u), MAIN_CONTROL, enc_sym(v));
                    stats.rules_rebuilt += 1;
                }
            }
        }
    }

    // 3. Interprocedural rules, always re-derived (they mix identifiers of
    // several procedures, so no single procedure's reuse covers them) —
    // through the exact derivation `encode_sdg` uses.
    stats.rules_rebuilt += add_interprocedural_rules(&mut pds, sdg, &fo_controls, n_vertices);

    let index = RuleIndex::new(&pds);
    (
        Encoded {
            pds,
            index,
            n_vertices,
            n_call_sites,
            fo_controls,
        },
        stats,
    )
}

/// Pretty-prints the PDS rules in the style of the paper's Tab. I (used by
/// the `tab1` experiment).
pub fn dump_rules(sdg: &Sdg, enc: &Encoded) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let sym_name = |s: Symbol| -> String {
        if let Some(v) = enc.symbol_vertex(s) {
            sdg.label(v)
        } else if let Some(c) = enc.symbol_call_site(s) {
            format!("C{}", c.0 + 1)
        } else {
            format!("{s}")
        }
    };
    let loc_name = |l: ControlLoc| -> String {
        if l == MAIN_CONTROL {
            "p".into()
        } else {
            let fo = enc
                .fo_controls
                .iter()
                .find(|(_, &c)| c == l)
                .map(|(&v, _)| v)
                .expect("control maps to a formal-out");
            format!("p_{}", sdg.label(fo))
        }
    };
    for (i, r) in enc.pds.rules().iter().enumerate() {
        let rhs = match r.rhs {
            specslice_pds::Rhs::Pop => "ε".to_string(),
            specslice_pds::Rhs::Internal(g) => sym_name(g),
            specslice_pds::Rhs::Push(a, b) => format!("{} {}", sym_name(a), sym_name(b)),
        };
        let _ = writeln!(
            out,
            "{:>4}. ⟨{}, {}⟩ ↪ ⟨{}, {}⟩",
            i + 1,
            loc_name(r.from_loc),
            sym_name(r.from_sym),
            loc_name(r.to_loc),
            rhs
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;
    use specslice_pds::Rhs;
    use specslice_sdg::build::build_sdg;

    const FIG1: &str = r#"
        int g1, g2, g3;
        void p(int a, int b) {
            g1 = a;
            g2 = b;
            g3 = g2;
        }
        int main() {
            g2 = 100;
            p(g2, 2);
            p(g2, 3);
            p(4, g1 + g2);
            printf("%d", g2);
        }
    "#;

    #[test]
    fn fig1_rule_inventory_matches_table1_shape() {
        let sdg = build_sdg(&frontend(FIG1).unwrap()).unwrap();
        let enc = encode_sdg(&sdg);
        let rules = enc.pds.rules();
        let pops = rules.iter().filter(|r| r.rhs == Rhs::Pop).count();
        let pushes = rules
            .iter()
            .filter(|r| matches!(r.rhs, Rhs::Push(..)))
            .count();
        // Tab. I: 3 call edges + 6 parameter-in edges = 9 push rules;
        // 3 formal-outs → 3 pop rules; 9 parameter-out internal rules.
        assert_eq!(pops, 3, "one pop rule per formal-out of p");
        assert_eq!(pushes, 9, "3 call + 6 param-in push rules");
        let pout_internals = rules.iter().filter(|r| r.from_loc != MAIN_CONTROL).count();
        assert_eq!(pout_internals, 9, "3 formal-outs × 3 call sites");
    }

    #[test]
    fn symbols_roundtrip() {
        let sdg = build_sdg(&frontend(FIG1).unwrap()).unwrap();
        let enc = encode_sdg(&sdg);
        for v in sdg.vertex_ids() {
            assert_eq!(enc.symbol_vertex(enc.vertex_symbol(v)), Some(v));
            assert_eq!(enc.symbol_call_site(enc.vertex_symbol(v)), None);
        }
        for c in &sdg.call_sites {
            assert_eq!(enc.symbol_call_site(enc.call_symbol(c.id)), Some(c.id));
            assert_eq!(enc.symbol_vertex(enc.call_symbol(c.id)), None);
        }
    }

    #[test]
    fn unrolling_simulates_dependences() {
        // In the PDS, an internal dependence edge u→v lets (u, w) ⇒ (v, w).
        let sdg = build_sdg(&frontend(FIG1).unwrap()).unwrap();
        let enc = encode_sdg(&sdg);
        let p = sdg.proc_named("p").unwrap();
        // p entry has a control edge to its statements; take the first one.
        let entry_sym = enc.vertex_symbol(p.entry);
        let succs = enc.pds.step(MAIN_CONTROL, &[entry_sym]);
        assert!(!succs.is_empty());
        for (loc, stack) in &succs {
            assert_eq!(*loc, MAIN_CONTROL);
            assert_eq!(stack.len(), 1);
        }
    }

    #[test]
    fn dump_is_readable() {
        let sdg = build_sdg(&frontend(FIG1).unwrap()).unwrap();
        let enc = encode_sdg(&sdg);
        let text = dump_rules(&sdg, &enc);
        assert!(text.contains("↪"));
        assert!(text.contains("p:entry") || text.contains("main:entry"));
    }
}
