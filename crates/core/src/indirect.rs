//! Lowering calls through procedure pointers (§6.2 of the paper).
//!
//! Each indirect call `x = p(a, b)` is rewritten into a call of a
//! synthesized dispatcher:
//!
//! ```c
//! int __dispatch2(int (*p)(int, int), int a0, int a1) {
//!     int __r;
//!     if (p == f) { __r = f(a0, a1); }
//!     else { __r = g(a0, a1); }
//!     return __r;
//! }
//! ```
//!
//! so that specialization slicing — which only understands direct calls —
//! automatically produces specialized dispatchers (`__dispatch2__1`) and
//! specialized pointees (`f__1`, `g__1`), exactly as in the paper's §6.2
//! example. The points-to sets are computed per pointer arity (a sound
//! coarsening of Andersen's analysis: every function whose address is taken
//! anywhere, grouped by type).

use crate::SpecError;
use specslice_lang::ast::{
    Block, CallStmt, Callee, Expr, Function, Param, ParamMode, Program, RetKind, Stmt, StmtKind,
    Type,
};
use specslice_lang::{normalize, sema};
use std::collections::BTreeMap;

/// Rewrites all indirect calls into dispatcher calls. Programs without
/// indirect calls are returned unchanged (modulo renumbering).
///
/// # Errors
///
/// Fails if a pointer arity has an empty points-to set (no function of that
/// type ever has its address taken) or if the rewritten program fails the
/// semantic checker.
pub fn lower_indirect_calls(program: &Program) -> Result<Program, SpecError> {
    // Arities of indirect calls present.
    let mut call_arities: BTreeMap<usize, ()> = BTreeMap::new();
    program.visit_all(|_, s| {
        if let StmtKind::Call(c) = &s.kind {
            if matches!(c.callee, Callee::Indirect(_)) {
                call_arities.insert(c.args.len(), ());
            }
        }
    });
    if call_arities.is_empty() {
        return Ok(program.clone());
    }

    // Points-to candidates per arity: every function referenced by address.
    let mut candidates: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let note = |e: &Expr, program: &Program, candidates: &mut BTreeMap<usize, Vec<String>>| {
        collect_funcrefs(e, &mut |name| {
            if let Some(f) = program.function(name) {
                let arity = f.params.len();
                let entry = candidates.entry(arity).or_default();
                if !entry.contains(&name.to_string()) {
                    entry.push(name.to_string());
                }
            }
        });
    };
    program.visit_all(|_, s| match &s.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Assign { value: e, .. } => {
            note(e, program, &mut candidates)
        }
        StmtKind::Call(c) => {
            for a in &c.args {
                note(a, program, &mut candidates);
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            note(cond, program, &mut candidates)
        }
        StmtKind::Return { value: Some(e) } => note(e, program, &mut candidates),
        StmtKind::Printf { args, .. } => {
            for a in args {
                note(a, program, &mut candidates);
            }
        }
        StmtKind::Exit { code } => note(code, program, &mut candidates),
        _ => {}
    });

    // Synthesize one dispatcher per arity in use.
    let mut out = program.clone();
    for &arity in call_arities.keys() {
        let cands = candidates.get(&arity).cloned().unwrap_or_default();
        if cands.is_empty() {
            return Err(SpecError::Sema(specslice_lang::LangError::sema(
                0,
                format!("indirect call of arity {arity} has an empty points-to set"),
            )));
        }
        out.functions.push(make_dispatcher(arity, &cands));
    }

    // Rewrite indirect calls.
    for f in &mut out.functions {
        rewrite_block(&mut f.body);
    }

    let out = normalize::normalize(out);
    sema::check(&out).map_err(|e| {
        SpecError::internal(
            "indirect",
            format!("indirect-call lowering produced invalid code: {e}"),
        )
    })?;
    Ok(out)
}

/// Name of the dispatcher for a given arity.
pub fn dispatcher_name(arity: usize) -> String {
    format!("__dispatch{arity}")
}

fn make_dispatcher(arity: usize, candidates: &[String]) -> Function {
    let mut params = vec![Param {
        name: "__fp".into(),
        mode: ParamMode::FnPtr { arity },
    }];
    for i in 0..arity {
        params.push(Param {
            name: format!("__a{i}"),
            mode: ParamMode::Value,
        });
    }
    let args: Vec<Expr> = (0..arity).map(|i| Expr::Var(format!("__a{i}"))).collect();
    let call_to = |f: &str| {
        Stmt::new(
            0,
            StmtKind::Call(CallStmt {
                callee: Callee::Named(f.to_string()),
                args: args.clone(),
                assign_to: Some("__r".into()),
            }),
        )
    };
    // if (__fp == f1) { __r = f1(..); } else { … else { __r = fk(..); } }
    let mut chain = Block {
        stmts: vec![call_to(candidates.last().expect("non-empty"))],
    };
    for f in candidates.iter().rev().skip(1) {
        chain = Block {
            stmts: vec![Stmt::new(
                0,
                StmtKind::If {
                    cond: Expr::Binary(
                        specslice_lang::ast::BinOp::Eq,
                        Box::new(Expr::Var("__fp".into())),
                        Box::new(Expr::FuncRef(f.clone())),
                    ),
                    then_block: Block {
                        stmts: vec![call_to(f)],
                    },
                    else_block: Some(chain),
                },
            )],
        };
    }
    let mut stmts = vec![Stmt::new(
        0,
        StmtKind::Decl {
            name: "__r".into(),
            ty: Type::Int,
            init: None,
        },
    )];
    stmts.extend(chain.stmts);
    stmts.push(Stmt::new(
        0,
        StmtKind::Return {
            value: Some(Expr::Var("__r".into())),
        },
    ));
    Function {
        name: dispatcher_name(arity),
        ret: RetKind::Int,
        params,
        body: Block { stmts },
        line: 0,
    }
}

fn rewrite_block(b: &mut Block) {
    b.visit_mut(&mut |s| {
        if let StmtKind::Call(c) = &mut s.kind {
            if let Callee::Indirect(v) = &c.callee {
                let mut args = vec![Expr::Var(v.clone())];
                args.append(&mut c.args);
                c.callee = Callee::Named(dispatcher_name(args.len() - 1));
                c.args = args;
            }
        }
    });
}

fn collect_funcrefs(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::FuncRef(name) => f(name),
        Expr::Unary(_, inner) => collect_funcrefs(inner, f),
        Expr::Binary(_, a, b) => {
            collect_funcrefs(a, f);
            collect_funcrefs(b, f);
        }
        Expr::Call(c) => {
            for a in &c.args {
                collect_funcrefs(a, f);
            }
        }
        Expr::Int(_) | Expr::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    /// The paper's Fig. 15 program.
    const FIG15: &str = r#"
        int f(int a, int b) { return a + b; }
        int g(int a, int b) { return a; }
        int main() {
            int (*p)(int, int);
            int x;
            int c;
            scanf("%d", &c);
            if (c > 0) { p = f; } else { p = g; }
            x = p(1, 2);
            printf("%d", x);
        }
    "#;

    #[test]
    fn fig15_lowering() {
        let p = frontend(FIG15).unwrap();
        let lowered = lower_indirect_calls(&p).unwrap();
        // Dispatcher synthesized with fnptr + 2 args.
        let d = lowered.function("__dispatch2").unwrap();
        assert_eq!(d.params.len(), 3);
        assert_eq!(d.params[0].mode, ParamMode::FnPtr { arity: 2 });
        // The indirect call is gone.
        let mut any_indirect = false;
        lowered.visit_all(|_, s| {
            if let StmtKind::Call(c) = &s.kind {
                if matches!(c.callee, Callee::Indirect(_)) {
                    any_indirect = true;
                }
            }
        });
        assert!(!any_indirect);
        // main now calls the dispatcher, passing p first.
        let mut found = false;
        lowered.visit_all(|f, s| {
            if f != "main" {
                return;
            }
            if let StmtKind::Call(c) = &s.kind {
                if c.callee == Callee::Named("__dispatch2".into()) {
                    assert_eq!(c.args.len(), 3);
                    assert_eq!(c.args[0], Expr::Var("p".into()));
                    found = true;
                }
            }
        });
        assert!(found);
        // Dispatcher dispatches on both candidates.
        let d = lowered.function("__dispatch2").unwrap();
        let mut refs = Vec::new();
        d.body.visit(&mut |s| {
            if let StmtKind::If { cond, .. } = &s.kind {
                collect_funcrefs(cond, &mut |n| refs.push(n.to_string()));
            }
        });
        assert_eq!(refs, vec!["f".to_string()]);
    }

    #[test]
    fn programs_without_indirect_calls_unchanged() {
        let p = frontend("int main() { return 0; }").unwrap();
        let lowered = lower_indirect_calls(&p).unwrap();
        assert_eq!(p, lowered);
    }

    #[test]
    fn empty_points_to_set_is_an_error() {
        // p is declared and called but never assigned any function.
        let p = frontend(
            r#"
            int main() {
                int (*p)(int);
                int x;
                x = p(1);
                return x;
            }
            "#,
        )
        .unwrap();
        let err = lower_indirect_calls(&p).unwrap_err();
        assert!(err.to_string().contains("points-to"), "{err}");
    }

    #[test]
    fn lowered_program_builds_an_sdg() {
        let p = frontend(FIG15).unwrap();
        let lowered = lower_indirect_calls(&p).unwrap();
        let sdg = specslice_sdg::build::build_sdg(&lowered).unwrap();
        assert!(sdg.proc_named("__dispatch2").is_some());
    }
}
