//! # specslice — specialization slicing
//!
//! A from-scratch reproduction of *Specialization Slicing* (Aung, Horwitz,
//! Joiner, Reps; PLDI 2014): optimal **polyvariant executable
//! interprocedural program slicing**.
//!
//! Given a program's system dependence graph (SDG) and a slicing criterion,
//! the algorithm may emit *several specialized copies* of a procedure — one
//! per pattern of formal parameters the slice actually needs — producing an
//! executable slice with no parameter mismatches, while never adding any
//! element that is not in the closure slice. The output is *optimal*: sound,
//! complete, and minimal in the sense of the paper's Defn. 2.10/2.11.
//!
//! The pipeline (Alg. 1):
//!
//! 1. [`encode`] the SDG as a pushdown system (Fig. 8 / Tab. I);
//! 2. express the criterion as a query automaton ([`criteria`]);
//! 3. run `Prestar` — *stack-configuration slicing* of the possibly
//!    infinite unrolled SDG;
//! 4. build the minimal reverse-deterministic automaton (`specslice_fsa::mrd`);
//! 5. [`readout`] the specialized SDG from the automaton — variant content
//!    is interned into the session's [`VariantStore`] — and [`regen`]erate
//!    executable MiniC source; for a whole criterion *set*,
//!    [`Slicer::specialize_program`] merges every criterion's variants
//!    (deduplicated by content interning) into one specialized program
//!    ([`mod@specialize`]).
//!
//! Also implemented: feature removal via forward stack-configuration slicing
//! ([`feature_removal`], Alg. 2), the §6.2 indirect-call transformation
//! ([`indirect`]), the §8.3 reslicing self-check ([`reslice`]), and slice
//! statistics ([`stats`]) used by the paper's evaluation.
//!
//! # Quickstart — the [`Slicer`] session
//!
//! A [`Slicer`] runs the frontend, SDG construction, and the SDG→PDS
//! encoding **once**, then answers any number of slicing queries against the
//! cached encoding — the per-program stages dominate the cost of a query, so
//! multi-criterion clients should always share one session:
//!
//! ```
//! use specslice::{Criterion, Slicer};
//!
//! let slicer = Slicer::from_source(
//!     r#"
//!     int g1, g2, g3;
//!     void p(int a, int b) { g1 = a; g2 = b; g3 = g2; }
//!     int main() {
//!         g2 = 100;
//!         p(g2, 2);
//!         p(g2, 3);
//!         p(4, g1 + g2);
//!         printf("%d", g2);
//!     }
//!     "#,
//! )?;
//! let criterion = Criterion::printf_actuals(slicer.sdg());
//! let slice = slicer.slice(&criterion)?;
//! // Fig. 1(b): p is specialized into two variants.
//! assert_eq!(slice.variants_of_proc(slicer.sdg(), "p").len(), 2);
//! let regen = slicer.regenerate(&slice)?;
//! assert!(regen.source.contains("void p__1"));
//!
//! // Batch queries reuse the cached encoding (and the reachable-stack
//! // automaton) instead of re-encoding per criterion:
//! let per_vertex: Vec<Criterion> = slicer
//!     .sdg()
//!     .printf_actual_in_vertices()
//!     .into_iter()
//!     .map(Criterion::vertex)
//!     .collect();
//! let batch = slicer.slice_batch(&per_vertex)?;
//! assert_eq!(batch.slices.len(), per_vertex.len());
//! # Ok::<(), specslice::SpecError>(())
//! ```
//!
//! Batches fan out across worker threads (see [`SlicerConfig::num_threads`]
//! and `docs/ARCHITECTURE.md`); output is bit-for-bit identical at every
//! thread count.

#![warn(missing_docs)]

pub mod criteria;
pub mod encode;
pub mod exec;
pub mod feature_removal;
pub mod incremental;
pub mod indirect;
pub mod readout;
pub mod regen;
pub mod reslice;
pub mod session_io;
pub mod slicer;
pub mod specialize;
pub mod stats;
pub mod store;

pub use criteria::Criterion;
pub use incremental::EditReport;
pub use readout::{QueryKind, SpecSlice, VariantMeta, VariantPdg};
pub use session_io::{MemoExport, MemoExportVariant, MemoKeyExport};
pub use slicer::{BatchResult, ScratchStats, Slicer, SlicerConfig, Solver};
pub use specialize::{MergedFunction, SpecializedProgram};
pub use store::{StoreStats, VariantId, VariantStore};
// Batch slicing reports per-worker accounting in [`BatchResult::per_thread`];
// re-exported so clients can name the type without a `specslice-exec` dep.
pub use specslice_exec::WorkerStats;
// Query direction (backward specialization slice vs. forward slice) is
// defined by the saturation engine; re-exported so clients can select a
// direction without a `specslice-pds` dep.
pub use specslice_pds::{Direction, PdsError};

// The facade re-exports everything a client needs to construct criteria,
// describe program edits (including the AST types statement-level
// [`ProgramEdit`]s are built from), and inspect results, so depending on
// `specslice` alone suffices.
pub use specslice_lang::{
    ast, frontend, LangError, Program, ProgramDelta, ProgramEdit, Stmt, StmtId, StmtKind,
};
pub use specslice_sdg::{
    CallSiteId, CalleeKind, ProcId, Sdg, SdgError, SdgPatch, Vertex, VertexId, VertexKind,
};

use specslice_fsa::mrd::MrdStats;
use std::fmt;

/// Errors from the specialization-slicing pipeline, classified by stage.
///
/// Wrapped stage errors are reachable through [`std::error::Error::source`],
/// so callers can render full chains (`anyhow`-style) or match on the stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The MiniC frontend rejected the source text (lexical or syntax
    /// error).
    Parse(LangError),
    /// The MiniC semantic checker rejected the program.
    Sema(LangError),
    /// SDG construction failed.
    SdgBuild(SdgError),
    /// The slicing criterion is malformed (out-of-range vertex, unrealizable
    /// stack, empty set, ill-shaped automaton).
    BadCriterion {
        /// What is wrong with the criterion.
        reason: String,
    },
    /// A saturation engine ([`prestar`] / [`poststar`]) rejected its query
    /// automaton. The structured source error is preserved (not flattened to
    /// a string), so callers can match on the exact precondition that failed
    /// and error chains render it via [`std::error::Error::source`].
    ///
    /// [`prestar`]: specslice_pds::prestar()
    /// [`poststar`]: specslice_pds::poststar()
    Pds {
        /// Which engine invocation failed (e.g. `"prestar"`, `"poststar"`,
        /// `"poststar(reachable)"`).
        stage: &'static str,
        /// The engine's structured error.
        source: specslice_pds::PdsError,
    },
    /// An internal invariant was violated — always a bug in the slicer, not
    /// in the caller's input (results are validated against Cor. 3.19
    /// before being returned).
    Internal {
        /// The pipeline stage that failed (e.g. `"readout"`).
        context: &'static str,
        /// Description of the violated invariant.
        message: String,
    },
}

impl SpecError {
    /// Creates a [`SpecError::BadCriterion`].
    pub fn bad_criterion(reason: impl Into<String>) -> Self {
        SpecError::BadCriterion {
            reason: reason.into(),
        }
    }

    /// Creates a [`SpecError::Internal`] tagged with the failing stage.
    pub fn internal(context: &'static str, message: impl Into<String>) -> Self {
        SpecError::Internal {
            context,
            message: message.into(),
        }
    }

    /// Creates a [`SpecError::Pds`] tagged with the failing engine stage.
    pub fn pds(stage: &'static str, source: specslice_pds::PdsError) -> Self {
        SpecError::Pds { stage, source }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "frontend rejected the source: {e}"),
            SpecError::Sema(e) => write!(f, "semantic check failed: {e}"),
            SpecError::SdgBuild(e) => write!(f, "SDG construction failed: {e}"),
            SpecError::BadCriterion { reason } => write!(f, "bad criterion: {reason}"),
            SpecError::Pds { stage, source } => {
                write!(f, "saturation failed ({stage}): {source}")
            }
            SpecError::Internal { context, message } => {
                write!(f, "internal error ({context}): {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Parse(e) | SpecError::Sema(e) => Some(e),
            SpecError::SdgBuild(e) => Some(e),
            SpecError::Pds { source, .. } => Some(source),
            SpecError::BadCriterion { .. } | SpecError::Internal { .. } => None,
        }
    }
}

impl From<SdgError> for SpecError {
    fn from(e: SdgError) -> Self {
        SpecError::SdgBuild(e)
    }
}

impl From<LangError> for SpecError {
    fn from(e: LangError) -> Self {
        if e.is_sema() {
            SpecError::Sema(e)
        } else {
            SpecError::Parse(e)
        }
    }
}

/// Computes the specialization slice of `sdg` with respect to `criterion`
/// (the paper's Alg. 1).
///
/// This is the one-shot convenience wrapper: it encodes the SDG as a
/// pushdown system, answers the single query, and throws the encoding away.
/// Any caller with more than one criterion should build a [`Slicer`] session
/// instead and amortize the encoding across queries.
///
/// # Errors
///
/// Fails on malformed criteria (unknown vertices / call sites) and on
/// internal invariant violations (which would indicate a bug — the result is
/// validated against Cor. 3.19 before being returned).
pub fn specialize(sdg: &Sdg, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
    let enc = encode::encode_sdg(sdg);
    let query = criteria::query_automaton(sdg, &enc, criterion)?;
    let store = std::sync::Arc::new(VariantStore::new());
    slicer::run_query(Direction::Backward, sdg, &enc, &query, true, &store).map(|(s, _)| s)
}

/// Sizes (and wall-clock) observed along the Alg. 1 pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    /// `|Δ|` of the encoded PDS.
    pub pds_rules: usize,
    /// Transitions in the saturated automaton (`Prestar` for backward
    /// queries, `Poststar` for forward ones; the field name keeps the
    /// historical spelling for serialization stability).
    pub prestar_transitions: usize,
    /// Peak bytes retained during saturation (Fig. 22 accounting).
    pub prestar_peak_bytes: usize,
    /// Saturation-rule firings — a deterministic work measure (independent
    /// of machine, thread count, and worklist order).
    pub prestar_rule_applications: usize,
    /// Peak saturation worklist depth (deterministic for a given build).
    pub prestar_peak_worklist: usize,
    /// States of the trimmed `A1`.
    pub a1_states: usize,
    /// Transitions of the trimmed `A1`.
    pub a1_transitions: usize,
    /// MRD pipeline statistics (`determinize` / `minimize` sizes).
    pub mrd: MrdStats,
    /// `Prestar` saturations this query paid for. Under the per-criterion
    /// solver every computed query runs its own (`1`); under the one-pass
    /// solver one member of each criterion group carries its group's shared
    /// saturation and the rest report `0`, so a batch aggregate counts
    /// *distinct* saturations run — the number the one-pass solver exists
    /// to shrink. Memo hits replay the stats recorded when the entry was
    /// computed.
    pub saturations_run: usize,
    /// Criteria answered by this query's saturation (its criterion-group
    /// width; `1` under the per-criterion solver, `0` on non-carrying group
    /// members). Aggregated as a max, so a batch aggregate reports the
    /// widest single saturation in the batch.
    pub criteria_per_saturation: usize,
    /// Backward queries answered from the session memo (`1` on a hit, `0`
    /// otherwise; summed by [`PipelineStats::absorb`], so a batch aggregate
    /// counts hits).
    pub memo_hits_backward: usize,
    /// Backward queries that missed the memo and paid for a pipeline run.
    pub memo_misses_backward: usize,
    /// Forward queries answered from the session memo.
    pub memo_hits_forward: usize,
    /// Forward queries that missed the memo and paid for a pipeline run.
    pub memo_misses_forward: usize,
    /// Wall-clock of the criterion-dependent pipeline for this query (query
    /// automaton → `Prestar` → MRD → read-out), as measured by the worker
    /// thread that answered it. Summed by [`PipelineStats::absorb`], so a
    /// batch aggregate reports total CPU-side work — which exceeds batch
    /// wall-clock exactly when parallel slicing helps.
    pub query_time: std::time::Duration,
}

impl PipelineStats {
    /// Accumulates another query's stats into `self` (used by
    /// [`Slicer::slice_batch`] aggregation). Per-query sizes are summed;
    /// `pds_rules` describes the shared encoding and is kept as-is.
    pub fn absorb(&mut self, other: &PipelineStats) {
        self.pds_rules = self.pds_rules.max(other.pds_rules);
        self.prestar_transitions += other.prestar_transitions;
        self.prestar_peak_bytes = self.prestar_peak_bytes.max(other.prestar_peak_bytes);
        self.prestar_rule_applications += other.prestar_rule_applications;
        self.prestar_peak_worklist = self.prestar_peak_worklist.max(other.prestar_peak_worklist);
        self.a1_states += other.a1_states;
        self.a1_transitions += other.a1_transitions;
        self.mrd.input_states += other.mrd.input_states;
        self.mrd.determinized_states += other.mrd.determinized_states;
        self.mrd.minimized_states += other.mrd.minimized_states;
        self.mrd.mrd_states += other.mrd.mrd_states;
        self.mrd.mrd_transitions += other.mrd.mrd_transitions;
        self.saturations_run += other.saturations_run;
        self.criteria_per_saturation = self
            .criteria_per_saturation
            .max(other.criteria_per_saturation);
        self.memo_hits_backward += other.memo_hits_backward;
        self.memo_misses_backward += other.memo_misses_backward;
        self.memo_hits_forward += other.memo_hits_forward;
        self.memo_misses_forward += other.memo_misses_forward;
        self.query_time += other.query_time;
    }

    /// Estimated resident bytes of the *retained* artifacts these stats
    /// describe — the canonical MRD automaton a memoized query keeps alive
    /// (its variant rows are accounted by [`StoreStats::approx_bytes`]
    /// instead, since rows live in the shared store). Deterministic: a pure
    /// function of the counters, so the server's eviction budget computed
    /// from it is reproducible across runs and machines.
    pub fn approx_bytes(&self) -> usize {
        // Per MRD state: an out-transition vector header (~24) plus finals/
        // dedup bookkeeping; per transition: (label, target) plus its dedup
        // set entry (~12 + 12).
        self.mrd.mrd_states * 32 + self.mrd.mrd_transitions * 24
    }

    /// One line of human-readable pipeline accounting. The examples and the
    /// bench drivers all report through this, so their output stays
    /// consistent with each other (and with the docs).
    pub fn summary(&self) -> String {
        format!(
            "rules={} prestar={}t a1={}s/{}t mrd={}s/{}t memo=b{}h/{}m f{}h/{}m time={:.1?}",
            self.pds_rules,
            self.prestar_transitions,
            self.a1_states,
            self.a1_transitions,
            self.mrd.mrd_states,
            self.mrd.mrd_transitions,
            self.memo_hits_backward,
            self.memo_misses_backward,
            self.memo_hits_forward,
            self.memo_misses_forward,
            self.query_time,
        )
    }
}
