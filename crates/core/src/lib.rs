//! # specslice — specialization slicing
//!
//! A from-scratch reproduction of *Specialization Slicing* (Aung, Horwitz,
//! Joiner, Reps; PLDI 2014): optimal **polyvariant executable
//! interprocedural program slicing**.
//!
//! Given a program's system dependence graph (SDG) and a slicing criterion,
//! the algorithm may emit *several specialized copies* of a procedure — one
//! per pattern of formal parameters the slice actually needs — producing an
//! executable slice with no parameter mismatches, while never adding any
//! element that is not in the closure slice. The output is *optimal*: sound,
//! complete, and minimal in the sense of the paper's Defn. 2.10/2.11.
//!
//! The pipeline (Alg. 1):
//!
//! 1. [`encode`] the SDG as a pushdown system (Fig. 8 / Tab. I);
//! 2. express the criterion as a query automaton ([`criteria`]);
//! 3. run `Prestar` — *stack-configuration slicing* of the possibly
//!    infinite unrolled SDG;
//! 4. build the minimal reverse-deterministic automaton (`specslice_fsa::mrd`);
//! 5. [`readout`] the specialized SDG from the automaton, and [`regen`]erate
//!    executable MiniC source.
//!
//! Also implemented: feature removal via forward stack-configuration slicing
//! ([`feature_removal`], Alg. 2), the §6.2 indirect-call transformation
//! ([`indirect`]), the §8.3 reslicing self-check ([`reslice`]), and slice
//! statistics ([`stats`]) used by the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use specslice::{specialize, Criterion};
//!
//! let src = r#"
//!     int g1, g2, g3;
//!     void p(int a, int b) { g1 = a; g2 = b; g3 = g2; }
//!     int main() {
//!         g2 = 100;
//!         p(g2, 2);
//!         p(g2, 3);
//!         p(4, g1 + g2);
//!         printf("%d", g2);
//!     }
//! "#;
//! let program = specslice_lang::frontend(src)?;
//! let sdg = specslice_sdg::build::build_sdg(&program)?;
//! let criterion = Criterion::printf_actuals(&sdg);
//! let slice = specialize(&sdg, &criterion)?;
//! // Fig. 1(b): p is specialized into two variants.
//! assert_eq!(slice.variants_of_proc(&sdg, "p").len(), 2);
//! let regen = specslice::regen::regenerate(&sdg, &program, &slice)?;
//! assert!(regen.source.contains("void p__1"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod criteria;
pub mod encode;
pub mod feature_removal;
pub mod indirect;
pub mod readout;
pub mod regen;
pub mod reslice;
pub mod stats;

pub use criteria::Criterion;
pub use readout::{SpecSlice, VariantPdg};

use specslice_fsa::mrd::{mrd_with_stats, MrdStats};
use specslice_sdg::Sdg;
use std::fmt;

/// Errors from the specialization-slicing pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<specslice_sdg::SdgError> for SpecError {
    fn from(e: specslice_sdg::SdgError) -> Self {
        SpecError::new(e.message)
    }
}

impl From<specslice_lang::LangError> for SpecError {
    fn from(e: specslice_lang::LangError) -> Self {
        SpecError::new(e.to_string())
    }
}

/// Computes the specialization slice of `sdg` with respect to `criterion`
/// (the paper's Alg. 1).
///
/// # Errors
///
/// Fails on malformed criteria (unknown vertices / call sites) and on
/// internal invariant violations (which would indicate a bug — the result is
/// validated against Cor. 3.19 before being returned).
pub fn specialize(sdg: &Sdg, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
    specialize_with_stats(sdg, criterion).map(|(s, _)| s)
}

/// [`specialize`] plus the automaton statistics the evaluation section
/// reports (determinize/minimize sizes, Prestar sizes).
pub fn specialize_with_stats(
    sdg: &Sdg,
    criterion: &Criterion,
) -> Result<(SpecSlice, PipelineStats), SpecError> {
    let enc = encode::encode_sdg(sdg);
    let query = criteria::query_automaton(sdg, &enc, criterion)?;
    let (a1, prestats) = specslice_pds::prestar::prestar_with_stats(&enc.pds, &query);
    let a1_nfa = a1.to_nfa(encode::MAIN_CONTROL);
    let (a1_trim, _) = a1_nfa.trimmed();
    let (a6, mrd_stats) = mrd_with_stats(&a1_trim);
    let slice = readout::read_out(sdg, &enc, &a6)?;
    let stats = PipelineStats {
        pds_rules: enc.pds.rule_count(),
        prestar_transitions: prestats.transitions,
        prestar_peak_bytes: prestats.peak_bytes,
        a1_states: a1_trim.state_count(),
        a1_transitions: a1_trim.transition_count(),
        mrd: mrd_stats,
    };
    Ok((slice, stats))
}

/// Sizes observed along the Alg. 1 pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipelineStats {
    /// `|Δ|` of the encoded PDS.
    pub pds_rules: usize,
    /// Transitions in the saturated Prestar automaton.
    pub prestar_transitions: usize,
    /// Peak bytes retained during Prestar (Fig. 22 accounting).
    pub prestar_peak_bytes: usize,
    /// States of the trimmed `A1`.
    pub a1_states: usize,
    /// Transitions of the trimmed `A1`.
    pub a1_transitions: usize,
    /// MRD pipeline statistics (`determinize` / `minimize` sizes).
    pub mrd: MrdStats,
}
