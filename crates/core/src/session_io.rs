//! Session persistence hooks: exporting and importing the criterion → slice
//! memo in a store-independent form.
//!
//! A long-lived service (the `specslice-server` crate) keeps one [`Slicer`]
//! per analyzed program and wants two things this module provides:
//!
//! * **warm starts** — a restarted process should answer its first repeated
//!   query from the memo instead of re-running `Prestar` and the MRD
//!   pipeline. [`Slicer::export_memo`] turns the memo into plain data
//!   ([`MemoExport`]: criterion key, canonical MRD automaton, materialized
//!   variant rows) that a snapshot format can serialize;
//!   [`Slicer::import_memo`] re-interns the rows into a fresh session's
//!   [`VariantStore`](crate::VariantStore) and installs the entries, after
//!   validating every identifier against the session's SDG — a corrupted or
//!   mismatched snapshot yields a structured error, never a panic and never
//!   a poisoned session.
//! * **memory accounting** — [`Slicer::approx_bytes`] estimates the
//!   session's resident footprint (SDG + encoding + variant store + memo)
//!   from the deterministic `approx_bytes` helpers, so an eviction budget
//!   computed from it is reproducible across runs and machines.
//!
//! Exported entries are *store-independent*: variant content rides along as
//! explicit vertex rows, not as [`VariantId`](crate::VariantId)s (ids are
//! store-relative and meaningless across processes). Import re-interns the
//! rows, so a warm session's store counters equal those of a session that
//! answered the same criteria from a cold memo — and its query responses
//! are byte-identical to the live session the export came from.

use crate::readout::VariantMeta;
use crate::slicer::{CachedSlice, KeySelect, MemoEntry, MemoKey, Slicer};
use crate::{Direction, PipelineStats, SpecError};
use specslice_fsa::{Nfa, StateId};
use specslice_sdg::{CallSiteId, ProcId};
use std::collections::BTreeMap;

/// The criterion key of an exported memo entry, in dense-id form (sorted
/// and deduplicated — the canonical shape the memo itself uses).
/// Raw-automaton criteria are never memoized, so they never appear here.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemoKeyExport {
    /// Sorted vertex ids of an all-contexts criterion.
    AllContexts(Vec<u32>),
    /// Sorted `(vertex, stack-of-call-sites)` configurations.
    Configurations(Vec<(u32, Vec<u32>)>),
}

/// One variant of an exported slice: the positional metadata plus the
/// materialized content row (which lives in the session store while the
/// session is alive).
#[derive(Clone, Debug)]
pub struct MemoExportVariant {
    /// The original procedure this variant specializes.
    pub proc: u32,
    /// The variant's emitted name (`p__1`, … — original name when unique).
    pub name: String,
    /// Original call site → index (in this slice) of the callee variant.
    pub calls: Vec<(u32, u32)>,
    /// The `A6` state the variant was read from.
    pub state: u32,
    /// The variant's sorted dense vertex row.
    pub row: Vec<u32>,
}

/// One memo entry in store-independent, serializable form.
#[derive(Clone, Debug)]
pub struct MemoExport {
    /// The saturation direction the entry answers queries for.
    pub direction: Direction,
    /// The canonical criterion key.
    pub key: MemoKeyExport,
    /// The canonical MRD automaton (`A6`) for the criterion.
    pub a6: Nfa,
    /// The slice's variants, in variant order.
    pub variants: Vec<MemoExportVariant>,
    /// Index of the `main` variant, `None` when the slice is empty.
    pub main_variant: Option<u32>,
    /// The pipeline sizes observed when the entry was first computed.
    pub stats: PipelineStats,
}

fn corrupt(message: impl Into<String>) -> SpecError {
    SpecError::internal("memo_import", message.into())
}

impl Slicer {
    /// Exports the criterion → slice memo as store-independent entries,
    /// sorted by key (so the export — and anything serialized from it — is
    /// deterministic). Sessions with memoization disabled export nothing.
    pub fn export_memo(&self) -> Vec<MemoExport> {
        let memo = match self.memo.read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        let mut entries: Vec<(&MemoKey, &MemoEntry)> = memo.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
            .into_iter()
            .map(|(key, entry)| {
                let direction = key.dir;
                let key = match &key.select {
                    KeySelect::AllContexts(vs) => MemoKeyExport::AllContexts(vs.clone()),
                    KeySelect::Configurations(cs) => MemoKeyExport::Configurations(cs.clone()),
                };
                let variants = entry
                    .cached
                    .ids
                    .iter()
                    .zip(&entry.cached.metas)
                    .map(|(&id, meta)| MemoExportVariant {
                        proc: meta.proc.0,
                        name: meta.name.clone(),
                        calls: meta.calls.iter().map(|(c, &i)| (c.0, i as u32)).collect(),
                        state: meta.state.0,
                        row: self.variant_store().row_dense(id),
                    })
                    .collect();
                MemoExport {
                    direction,
                    key,
                    a6: entry.a6.clone(),
                    variants,
                    main_variant: entry.cached.main_variant.map(|i| i as u32),
                    stats: entry.stats,
                }
            })
            .collect()
    }

    /// Imports previously exported memo entries into this session,
    /// re-interning every variant row into the session's
    /// [`VariantStore`](crate::VariantStore). Returns the number of entries
    /// installed. Entries whose key is already memoized are skipped (the
    /// live entry wins — it is known-consistent with this session).
    ///
    /// Every identifier is validated against the session's SDG and
    /// encoding first, and **nothing is installed unless the whole import
    /// validates**: an entry referencing an out-of-range vertex, procedure,
    /// call site, or automaton state — the signature of a snapshot from a
    /// different program or a corrupted file — yields
    /// [`SpecError::Internal`] (context `"memo_import"`) and leaves the
    /// session exactly as it was.
    ///
    /// # Errors
    ///
    /// [`SpecError::Internal`] with context `"memo_import"` on any
    /// validation failure, naming the offending entry.
    pub fn import_memo(&self, entries: &[MemoExport]) -> Result<usize, SpecError> {
        for (i, entry) in entries.iter().enumerate() {
            self.validate_import(entry)
                .map_err(|e| corrupt(format!("entry #{i}: {e}")))?;
        }
        let mut installed = 0usize;
        let mut memo = match self.memo.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        for entry in entries {
            let select = match &entry.key {
                MemoKeyExport::AllContexts(vs) => {
                    let mut v = vs.clone();
                    v.sort_unstable();
                    v.dedup();
                    KeySelect::AllContexts(v)
                }
                MemoKeyExport::Configurations(cs) => {
                    let mut v = cs.clone();
                    v.sort_unstable();
                    v.dedup();
                    KeySelect::Configurations(v)
                }
            };
            let key = MemoKey {
                dir: entry.direction,
                select,
            };
            if memo.contains_key(&key) {
                continue;
            }
            let mut ids = Vec::with_capacity(entry.variants.len());
            let mut metas = Vec::with_capacity(entry.variants.len());
            for v in &entry.variants {
                ids.push(self.store.intern(ProcId(v.proc), &v.row));
                metas.push(VariantMeta {
                    proc: ProcId(v.proc),
                    name: v.name.clone(),
                    calls: v
                        .calls
                        .iter()
                        .map(|&(c, i)| (CallSiteId(c), i as usize))
                        .collect::<BTreeMap<_, _>>(),
                    state: StateId(v.state),
                });
            }
            memo.insert(
                key,
                MemoEntry {
                    a6: entry.a6.clone(),
                    cached: CachedSlice {
                        ids,
                        metas,
                        main_variant: entry.main_variant.map(|i| i as usize),
                    },
                    stats: entry.stats,
                },
            );
            installed += 1;
        }
        Ok(installed)
    }

    /// Checks one entry's identifiers against this session's SDG/encoding.
    fn validate_import(&self, entry: &MemoExport) -> Result<(), String> {
        let n_vertices = self.sdg.vertex_count() as u32;
        let n_sites = self.sdg.call_sites.len() as u32;
        let n_procs = self.sdg.procs.len() as u32;
        let check_vertex = |v: u32| {
            if v >= n_vertices {
                Err(format!("vertex {v} out of range (< {n_vertices})"))
            } else {
                Ok(())
            }
        };
        let check_site = |c: u32| {
            if c >= n_sites {
                Err(format!("call site {c} out of range (< {n_sites})"))
            } else {
                Ok(())
            }
        };
        match &entry.key {
            MemoKeyExport::AllContexts(vs) => {
                if vs.is_empty() {
                    return Err("empty all-contexts key".to_string());
                }
                vs.iter().try_for_each(|&v| check_vertex(v))?;
            }
            MemoKeyExport::Configurations(cs) => {
                if cs.is_empty() {
                    return Err("empty configurations key".to_string());
                }
                for (v, stack) in cs {
                    check_vertex(*v)?;
                    stack.iter().try_for_each(|&c| check_site(c))?;
                }
            }
        }
        let n_states = entry.a6.state_count() as u32;
        for s in entry.a6.symbols() {
            if s.0 >= n_vertices + n_sites {
                return Err(format!(
                    "automaton symbol {} outside the alphabet (< {})",
                    s.0,
                    n_vertices + n_sites
                ));
            }
        }
        let n_variants = entry.variants.len() as u32;
        for (vi, v) in entry.variants.iter().enumerate() {
            if v.proc >= n_procs {
                return Err(format!("variant #{vi}: proc {} out of range", v.proc));
            }
            if v.state >= n_states {
                return Err(format!("variant #{vi}: A6 state {} out of range", v.state));
            }
            if !v.row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("variant #{vi}: vertex row not strictly sorted"));
            }
            v.row.iter().try_for_each(|&x| check_vertex(x))?;
            for &(c, idx) in &v.calls {
                check_site(c)?;
                if idx >= n_variants {
                    return Err(format!(
                        "variant #{vi}: callee index {idx} out of range (< {n_variants})"
                    ));
                }
            }
        }
        if let Some(m) = entry.main_variant {
            if m >= n_variants {
                return Err(format!("main variant index {m} out of range"));
            }
        }
        Ok(())
    }

    /// Estimated resident bytes of this session: SDG, PDS encoding, variant
    /// store, memoized automata, and the warm scratch pool (saturation
    /// arenas, row tables, and readout buffers retained by idle workers).
    /// Built from the deterministic `approx_bytes` helpers
    /// ([`specslice_sdg::Sdg::approx_bytes`],
    /// [`crate::encode::Encoded::approx_bytes`],
    /// [`crate::StoreStats::approx_bytes`],
    /// [`PipelineStats::approx_bytes`],
    /// [`crate::ScratchStats`]), so eviction decisions based on it
    /// — the server's session budget — are reproducible across runs.
    pub fn approx_bytes(&self) -> usize {
        let memo_bytes: usize = {
            let memo = match self.memo.read() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            memo.values()
                .map(|e| e.stats.approx_bytes() + 128)
                .sum::<usize>()
        };
        self.sdg.approx_bytes()
            + self.enc.approx_bytes()
            + self.store_stats().approx_bytes()
            + memo_bytes
            + self.scratch_stats().approx_bytes
    }
}
