//! Reading the specialized SDG out of the MRD automaton
//! (Alg. 1, lines 9–24).
//!
//! Each non-initial state of the minimal reverse-deterministic automaton
//! `A6` denotes one *specialized PDG*: its vertex set is the set of labels
//! on transitions from the initial state, and each call-site-labeled
//! transition `(q1, C, q2)` connects caller variant `q2` to callee variant
//! `q1` at (the copy of) call site `C`.
//!
//! The read-out runs entirely on dense ids: per-state vertex rows are
//! accumulated in flat, per-worker scratch vectors (one sort groups them),
//! then interned into a [`VariantStore`] — the resulting [`SpecSlice`] is a
//! cheap handle (`Vec<VariantId>` plus per-variant metadata) instead of a
//! bundle of owned `BTreeSet`s. The old set-shaped API survives as
//! accessors that materialize [`VariantPdg`] views on demand.

use crate::encode::Encoded;
use crate::store::{VariantId, VariantStore};
use crate::SpecError;
use specslice_fsa::{is_reverse_deterministic, Nfa, StateId};
use specslice_sdg::{CallSiteId, CalleeKind, ProcId, Sdg, VertexId, VertexKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Which query produced a [`SpecSlice`] — its provenance. Determines which
/// structural guarantees the slice carries and which validation the
/// read-out applies:
///
/// * [`Backward`](QueryKind::Backward) specialization slices (Alg. 1) and
///   [`Residual`](QueryKind::Residual) feature-removal complements (Alg. 2)
///   satisfy the full Cor. 3.19 no-parameter-mismatch property (kept formal
///   ⟺ matching actual) and are executable after regeneration.
/// * [`Forward`](QueryKind::Forward) slices satisfy only the `post*`
///   closure implications — a kept actual-in implies the matching formal-in
///   is kept, and a kept formal-out implies the matching actual-out is kept
///   — never the reverse directions (nothing forward-reaches an actual-in
///   from inside the callee).
/// * [`Chop`](QueryKind::Chop)s are intersections of a forward and a
///   backward configuration language; neither closure direction survives
///   the intersection, so chops are reported as variant/vertex sets with no
///   parameter-completeness guarantee (and are not regenerable in general).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryKind {
    /// Backward specialization slice (`pre*`, Alg. 1).
    #[default]
    Backward,
    /// Forward slice (`post*` over the same Fig. 8 encoding).
    Forward,
    /// `forward_slice(source) ∩ slice(target)` on the MRD automata.
    Chop,
    /// Feature-removal residual (Alg. 2): everything *outside* a forward
    /// slice.
    Residual,
}

impl QueryKind {
    /// Stable lower-case name (used in reports and wire payloads).
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Backward => "backward",
            QueryKind::Forward => "forward",
            QueryKind::Chop => "chop",
            QueryKind::Residual => "residual",
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<specslice_pds::Direction> for QueryKind {
    fn from(dir: specslice_pds::Direction) -> Self {
        match dir {
            specslice_pds::Direction::Backward => QueryKind::Backward,
            specslice_pds::Direction::Forward => QueryKind::Forward,
        }
    }
}

/// One specialized procedure (a partition element of Defn. 2.10),
/// materialized as an owned view. [`SpecSlice`] stores variants as interned
/// [`VariantId`] rows; the accessors ([`SpecSlice::variants`],
/// [`SpecSlice::variant`], [`SpecSlice::variants_of_proc`]) build these on
/// demand for callers that want set-shaped data.
#[derive(Clone, Debug)]
pub struct VariantPdg {
    /// The original procedure this specializes.
    pub proc: ProcId,
    /// Name of the specialized procedure (`p__1`, `p__2`, … — or the
    /// original name when the procedure has a single variant).
    pub name: String,
    /// The `Elems` component: original SDG vertices included in this
    /// specialization.
    pub vertices: BTreeSet<VertexId>,
    /// For each original call site appearing in this variant, the index (in
    /// [`SpecSlice::variants`]) of the callee variant it must invoke.
    pub calls: BTreeMap<CallSiteId, usize>,
    /// The `A6` state this variant was read from (diagnostics).
    pub state: StateId,
}

impl VariantPdg {
    /// Parameter indices kept in this variant's signature: those whose
    /// formal-in (or by-ref formal-out) vertex is included.
    pub fn kept_params(&self, sdg: &Sdg) -> Vec<usize> {
        let row: Vec<u32> = self.vertices.iter().map(|v| v.0).collect();
        kept_params_row(sdg, self.proc, &row)
    }
}

/// Parameter indices kept by a variant of `proc` whose (sorted, dense)
/// vertex row is `row` — the allocation-light form behind
/// [`VariantPdg::kept_params`], used directly by the regeneration layer.
pub(crate) fn kept_params_row(sdg: &Sdg, proc: ProcId, row: &[u32]) -> Vec<usize> {
    let contains = |v: VertexId| row.binary_search(&v.0).is_ok();
    let proc = sdg.proc(proc);
    let mut kept = BTreeSet::new();
    for &fi in &proc.formal_ins {
        if contains(fi) {
            if let Some(specslice_sdg::InSlot::Param(i)) = sdg.in_slot(fi) {
                kept.insert(*i);
            }
        }
    }
    for &fo in &proc.formal_outs {
        if contains(fo) {
            if let Some(specslice_sdg::OutSlot::RefParam(i)) = sdg.out_slot(fo) {
                kept.insert(*i);
            }
        }
    }
    kept.into_iter().collect()
}

/// The variant-naming rule, shared by the read-out, single-slice
/// regeneration, and the whole-program merge so the three can never
/// disagree: the `k`-th variant (1-based, in variant order) of a procedure
/// named `base` keeps `base` when the procedure has a single variant or is
/// `main`, and is suffixed `base__k` otherwise. `force_suffix` overrides
/// the keep cases: the §6.2 address-taken rename (the original name becomes
/// the pointer-value stub) and the multi-`main` merge (a synthesized driver
/// takes the name `main`).
pub(crate) fn variant_name(base: &str, total: usize, k: usize, force_suffix: bool) -> String {
    if force_suffix || (total != 1 && base != "main") {
        format!("{base}__{k}")
    } else {
        base.to_string()
    }
}

/// Per-variant metadata a [`SpecSlice`] keeps alongside the interned
/// content row: everything about a variant that is *positional* (how this
/// slice wires its variants together) rather than *content* (which vertices
/// the variant keeps — that lives in the [`VariantStore`]).
#[derive(Clone, Debug)]
pub struct VariantMeta {
    /// The original procedure this variant specializes.
    pub proc: ProcId,
    /// The variant's name (`p__1`, … — original name when unique).
    pub name: String,
    /// Original call site → index (in this slice) of the callee variant.
    pub calls: BTreeMap<CallSiteId, usize>,
    /// The `A6` state this variant was read from (diagnostics).
    pub state: StateId,
}

/// The result of specialization slicing: a partition of the
/// stack-configuration slice into specialized PDGs.
///
/// A `SpecSlice` is a cheap handle: variant *content* (the vertex rows) is
/// interned in a shared [`VariantStore`], and the slice itself owns only
/// the `Vec<VariantId>` naming that content plus per-variant
/// [`VariantMeta`]. Cloning a slice copies ids and metadata, never rows.
#[derive(Clone)]
pub struct SpecSlice {
    store: Arc<VariantStore>,
    ids: Vec<VariantId>,
    metas: Vec<VariantMeta>,
    /// Index of the `main` variant, `None` when the slice is empty.
    pub main_variant: Option<usize>,
    /// The MRD automaton the slice was read from.
    pub a6: Nfa,
    /// Which query produced this slice (see [`QueryKind`] for the
    /// guarantees each kind carries).
    pub kind: QueryKind,
}

impl fmt::Debug for SpecSlice {
    /// Renders the *content* (materialized variants), never raw
    /// [`VariantId`]s — clients fingerprint slices by their Debug output to
    /// check cross-thread determinism, and content is identical at every
    /// thread count while store ids need not be.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecSlice")
            .field("variants", &self.variants())
            .field("main_variant", &self.main_variant)
            .field("a6", &self.a6)
            .field("kind", &self.kind)
            .finish()
    }
}

impl SpecSlice {
    /// Assembles a slice from its parts (the read-out and the memo are the
    /// only producers).
    pub(crate) fn from_parts(
        store: Arc<VariantStore>,
        ids: Vec<VariantId>,
        metas: Vec<VariantMeta>,
        main_variant: Option<usize>,
        a6: Nfa,
        kind: QueryKind,
    ) -> SpecSlice {
        debug_assert_eq!(ids.len(), metas.len());
        SpecSlice {
            store,
            ids,
            metas,
            main_variant,
            a6,
            kind,
        }
    }

    /// The store this slice's variant content is interned in.
    pub fn store(&self) -> &Arc<VariantStore> {
        &self.store
    }

    /// The interned content ids, one per variant (in variant order).
    /// Variants with identical content share an id — within one slice and
    /// across every slice of the same session.
    pub fn variant_ids(&self) -> &[VariantId] {
        &self.ids
    }

    /// Per-variant metadata, one entry per variant (in variant order).
    pub fn metas(&self) -> &[VariantMeta] {
        &self.metas
    }

    /// The metadata of variant `i`.
    pub fn meta(&self, i: usize) -> &VariantMeta {
        &self.metas[i]
    }

    /// Number of variants.
    pub fn variant_count(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the criterion was unreachable and the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The variant's sorted dense vertex row (fetched from the store).
    pub(crate) fn row_dense(&self, i: usize) -> Vec<u32> {
        self.store.row_dense(self.ids[i])
    }

    /// Materializes variant `i` as an owned [`VariantPdg`] view.
    pub fn variant(&self, i: usize) -> VariantPdg {
        let meta = &self.metas[i];
        VariantPdg {
            proc: meta.proc,
            name: meta.name.clone(),
            vertices: self.store.vertex_set(self.ids[i]),
            calls: meta.calls.clone(),
            state: meta.state,
        }
    }

    /// Materializes every variant, in variant order. This is the
    /// compatibility shim for the former `variants` field; hot paths should
    /// iterate [`SpecSlice::variant_ids`] / [`SpecSlice::metas`] and fetch
    /// rows from the store instead.
    pub fn variants(&self) -> Vec<VariantPdg> {
        (0..self.ids.len()).map(|i| self.variant(i)).collect()
    }

    /// The union of all variants' vertex sets (`Elems` of the whole slice).
    pub fn elems(&self) -> BTreeSet<VertexId> {
        let mut out = BTreeSet::new();
        for &id in &self.ids {
            out.extend(self.store.row(id));
        }
        out
    }

    /// Total vertex count across variants (replicated vertices counted once
    /// per variant) — the paper's specialization-slice size measure.
    pub fn total_vertices(&self) -> usize {
        self.ids.iter().map(|&id| self.store.row_len(id)).sum()
    }

    /// The variants specializing procedure `name`, materialized.
    pub fn variants_of_proc(&self, sdg: &Sdg, name: &str) -> Vec<VariantPdg> {
        let Some(p) = sdg.proc_by_name.get(name) else {
            return Vec::new();
        };
        (0..self.ids.len())
            .filter(|&i| self.metas[i].proc == *p)
            .map(|i| self.variant(i))
            .collect()
    }

    /// `Specializations(P)` of Eqn. (3): the distinct element-sets of `P`'s
    /// variants.
    pub fn specializations(&self, proc: ProcId) -> BTreeSet<BTreeSet<VertexId>> {
        (0..self.ids.len())
            .filter(|&i| self.metas[i].proc == proc)
            .map(|i| self.store.vertex_set(self.ids[i]))
            .collect()
    }

    /// Re-interns this slice's rows into `store`, rewriting the content ids
    /// (the metas are positional and carry over unchanged). Batch slicing
    /// adopts worker-shard slices into the session store with this, in
    /// input order, so session ids are thread-count-independent.
    pub(crate) fn reintern_into(self, store: &Arc<VariantStore>) -> SpecSlice {
        if Arc::ptr_eq(&self.store, store) {
            return self;
        }
        let ids = self
            .ids
            .iter()
            .map(|&id| store.intern(self.store.proc(id), &self.store.row_dense(id)))
            .collect();
        SpecSlice {
            store: store.clone(),
            ids,
            metas: self.metas,
            main_variant: self.main_variant,
            a6: self.a6,
            kind: self.kind,
        }
    }
}

/// Reusable buffers for the read-out stage. Batch slicing hands one of
/// these to each worker thread ([`crate::Slicer::slice_batch`]), so the
/// per-criterion hot loop re-clears warm tables instead of re-allocating
/// them — and, with several workers live at once, does not contend on the
/// global allocator for its working set. Everything is a dense row keyed by
/// `A6` state (or procedure) index; the former per-state `BTreeSet`s and
/// `HashMap`s are gone.
#[derive(Debug, Default)]
pub(crate) struct ReadoutScratch {
    /// `(state, vertex)` pairs from initial-state transitions; one sort
    /// groups them into per-state sorted vertex rows.
    vert_pairs: Vec<(u32, u32)>,
    /// `(callee state, call site, caller state)` triples.
    call_transitions: Vec<(u32, u32, u32)>,
    /// Owning procedure per `A6` state (`u32::MAX` = not a variant state).
    state_proc: Vec<u32>,
    /// Variant index per `A6` state (`u32::MAX` = none).
    variant_of_state: Vec<u32>,
    /// Variant states in ascending order.
    states: Vec<u32>,
    /// Row bounds into `vert_pairs` per variant.
    row_bounds: Vec<(u32, u32)>,
    /// Scratch row (vertex ids only) handed to the store's interner.
    row: Vec<u32>,
    /// Per-procedure variant totals (for naming).
    per_proc_count: Vec<u32>,
    /// Per-procedure variants seen so far (for naming).
    per_proc_seen: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl ReadoutScratch {
    fn reset(&mut self, n_states: usize, n_procs: usize) {
        self.vert_pairs.clear();
        self.call_transitions.clear();
        self.state_proc.clear();
        self.state_proc.resize(n_states, NONE);
        self.variant_of_state.clear();
        self.variant_of_state.resize(n_states, NONE);
        self.states.clear();
        self.row_bounds.clear();
        self.row.clear();
        self.per_proc_count.clear();
        self.per_proc_count.resize(n_procs, 0);
        self.per_proc_seen.clear();
        self.per_proc_seen.resize(n_procs, 0);
    }

    /// Retained capacity estimate: what a warm pooled scratch holds onto
    /// between queries. Feeds the session's resident-byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.vert_pairs.capacity() * 8
            + self.call_transitions.capacity() * 12
            + (self.state_proc.capacity()
                + self.variant_of_state.capacity()
                + self.states.capacity()
                + self.row.capacity()
                + self.per_proc_count.capacity()
                + self.per_proc_seen.capacity())
                * 4
            + self.row_bounds.capacity() * 8
    }
}

/// Reads the specialized SDG out of `a6` (Alg. 1 lines 9–24) and validates
/// the Cor. 3.19 no-parameter-mismatch property. One-shot form: the slice's
/// content is interned into a fresh private store. Sessions intern into
/// their shared store instead ([`crate::Slicer`]).
pub fn read_out(sdg: &Sdg, enc: &Encoded, a6: &Nfa) -> Result<SpecSlice, SpecError> {
    read_out_with(sdg, enc, a6, true)
}

/// [`read_out`] with the Cor. 3.19 validation made optional
/// (see [`crate::SlicerConfig::validate`]).
pub fn read_out_with(
    sdg: &Sdg,
    enc: &Encoded,
    a6: &Nfa,
    validate: bool,
) -> Result<SpecSlice, SpecError> {
    read_out_in(
        sdg,
        enc,
        a6,
        validate,
        QueryKind::Backward,
        &mut ReadoutScratch::default(),
        &Arc::new(VariantStore::new()),
    )
}

/// [`read_out_with`] against caller-owned scratch buffers, an explicit
/// target store, and an explicit query kind. The kind selects the
/// validation applied (see [`QueryKind`]): full Cor. 3.19 equality for
/// backward/residual slices, the one-directional `post*` closure
/// implications for forward slices, and none for chops.
pub(crate) fn read_out_in(
    sdg: &Sdg,
    enc: &Encoded,
    a6: &Nfa,
    validate: bool,
    kind: QueryKind,
    scratch: &mut ReadoutScratch,
    store: &Arc<VariantStore>,
) -> Result<SpecSlice, SpecError> {
    if a6.is_empty_language() {
        return Ok(SpecSlice::from_parts(
            store.clone(),
            Vec::new(),
            Vec::new(),
            None,
            a6.clone(),
            kind,
        ));
    }
    debug_assert!(is_reverse_deterministic(a6), "A6 must be MRD (Thm. 3.16)");

    scratch.reset(a6.state_count(), sdg.procs.len());
    let q0 = a6.initial();
    // Collect per-state vertex pairs and per-state call transitions into
    // flat rows.
    for (from, label, to) in a6.transitions() {
        let sym = label.ok_or_else(|| SpecError::internal("readout", "A6 has ε-transitions"))?;
        if from == q0 {
            let v = enc.symbol_vertex(sym).ok_or_else(|| {
                SpecError::internal("readout", "initial-state transition labeled by a call site")
            })?;
            scratch.vert_pairs.push((to.0, v.0));
        } else {
            let c = enc.symbol_call_site(sym).ok_or_else(|| {
                SpecError::internal(
                    "readout",
                    "non-initial transition labeled by a vertex symbol",
                )
            })?;
            scratch.call_transitions.push((from.0, c.0, to.0));
        }
    }
    // One sort groups the pairs into per-state vertex rows, each row sorted
    // by vertex id — exactly the canonical form the store interns.
    scratch.vert_pairs.sort_unstable();

    // Determine each state's procedure from its row.
    let state_proc = &mut scratch.state_proc;
    {
        let mut i = 0;
        let pairs = &scratch.vert_pairs;
        while i < pairs.len() {
            let state = pairs[i].0;
            let proc = sdg.vertex(VertexId(pairs[i].1)).proc;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == state {
                let other = sdg.vertex(VertexId(pairs[j].1)).proc;
                if other != proc {
                    // Both failure shapes surface as values — an A6 state
                    // owned by several (or zero) procedures is an invariant
                    // violation to report with the offending state, never a
                    // panic inside a batch worker.
                    return Err(SpecError::internal(
                        "readout",
                        format!(
                            "A6 state {:?} mixes procedures: {:?} (Defn. 2.10(2) violated)",
                            StateId(state),
                            {
                                let mut procs = BTreeSet::new();
                                procs.insert(proc);
                                procs.insert(other);
                                procs
                            }
                        ),
                    ));
                }
                j += 1;
            }
            state_proc[state as usize] = proc.0;
            i = j;
        }
    }
    // States with no vertex transitions (possible for feature-removal
    // complements): infer the procedure from adjacent call transitions.
    for &(from, c, to) in scratch.call_transitions.iter() {
        let site = sdg.call_site(CallSiteId(c));
        if let CalleeKind::User(callee) = site.callee {
            if state_proc[from as usize] == NONE {
                state_proc[from as usize] = callee.0;
            }
        }
        if state_proc[to as usize] == NONE {
            state_proc[to as usize] = site.caller.0;
        }
    }

    // Consistency: call transition (q1, C, q2) must have proc(q1) = callee(C)
    // and proc(q2) = caller(C).
    for &(from, c, to) in scratch.call_transitions.iter() {
        let site = sdg.call_site(CallSiteId(c));
        let CalleeKind::User(callee) = site.callee else {
            return Err(SpecError::internal(
                "readout",
                format!(
                    "call-site symbol {:?} of a library call appeared on the stack",
                    CallSiteId(c)
                ),
            ));
        };
        if state_proc[from as usize] != callee.0 || state_proc[to as usize] != site.caller.0 {
            return Err(SpecError::internal(
                "readout",
                format!(
                    "inconsistent call transition at {:?}: callee/caller procedures \
                 do not match the original SDG",
                    CallSiteId(c)
                ),
            ));
        }
    }

    // Variant states in ascending order (the scan is already ordered).
    for (s, &p) in state_proc.iter().enumerate() {
        if p != NONE {
            scratch.states.push(s as u32);
        }
    }

    // Per-proc totals for naming.
    for &s in scratch.states.iter() {
        scratch.per_proc_count[state_proc[s as usize] as usize] += 1;
    }

    // Build variants in state order: compute each state's row bounds in the
    // sorted pair table, intern the row, and record the meta.
    let mut ids: Vec<VariantId> = Vec::with_capacity(scratch.states.len());
    let mut metas: Vec<VariantMeta> = Vec::with_capacity(scratch.states.len());
    {
        let pairs = &scratch.vert_pairs;
        let mut cursor = 0usize;
        for &s in scratch.states.iter() {
            while cursor < pairs.len() && pairs[cursor].0 < s {
                cursor += 1;
            }
            let lo = cursor;
            while cursor < pairs.len() && pairs[cursor].0 == s {
                cursor += 1;
            }
            scratch.row_bounds.push((lo as u32, cursor as u32));
            scratch.row.clear();
            scratch
                .row
                .extend(pairs[lo..cursor].iter().map(|&(_, v)| v));
            let proc = ProcId(state_proc[s as usize]);
            let id = store.intern(proc, &scratch.row);
            scratch.per_proc_seen[proc.index()] += 1;
            let name = variant_name(
                &sdg.proc(proc).name,
                scratch.per_proc_count[proc.index()] as usize,
                scratch.per_proc_seen[proc.index()] as usize,
                false,
            );
            scratch.variant_of_state[s as usize] = ids.len() as u32;
            ids.push(id);
            metas.push(VariantMeta {
                proc,
                name,
                calls: BTreeMap::new(),
                state: StateId(s),
            });
        }
    }

    // Connect variants along call transitions. Reverse determinism gives a
    // unique callee per (caller variant, call site).
    for &(from, c, to) in scratch.call_transitions.iter() {
        let caller_idx = scratch.variant_of_state[to as usize] as usize;
        let callee_idx = scratch.variant_of_state[from as usize] as usize;
        let site = CallSiteId(c);
        if let Some(&prev) = metas[caller_idx].calls.get(&site) {
            if prev != callee_idx {
                return Err(SpecError::internal(
                    "readout",
                    format!(
                        "call site {site:?} targets two different variants in one \
                     caller copy (reverse determinism violated)"
                    ),
                ));
            }
        }
        metas[caller_idx].calls.insert(site, callee_idx);
    }

    // Identify main's variant: proc(main) with final-state membership.
    let finals = a6.finals();
    let mut main_variant = None;
    for (i, meta) in metas.iter().enumerate() {
        if finals.contains(&meta.state) {
            if meta.proc != sdg.main {
                return Err(SpecError::internal(
                    "readout",
                    "final state does not correspond to main (ε-stack invariant broken)",
                ));
            }
            if main_variant.is_some() {
                return Err(SpecError::internal("readout", "multiple main variants"));
            }
            main_variant = Some(i);
        }
    }

    if validate && kind != QueryKind::Chop {
        validate_no_mismatches(sdg, kind, scratch, &metas)?;
    }
    Ok(SpecSlice::from_parts(
        store.clone(),
        ids,
        metas,
        main_variant,
        a6.clone(),
        kind,
    ))
}

/// Whether variant `i`'s row (still sitting in the scratch pair table)
/// contains vertex `v`.
fn scratch_contains(scratch: &ReadoutScratch, i: usize, v: VertexId) -> bool {
    let (lo, hi) = scratch.row_bounds[i];
    let row = &scratch.vert_pairs[lo as usize..hi as usize];
    row.binary_search_by_key(&v.0, |&(_, vert)| vert).is_ok()
}

/// Parameter-completeness validation, per query kind. For backward and
/// residual slices this is Cor. 3.19: in the specialized SDG, a kept formal
/// always has the matching actual at every (specialized) call site, and
/// vice versa. For forward slices only the `post*` closure implications
/// hold — kept actual-in ⟹ kept formal-in, kept formal-out ⟹ kept
/// actual-out — so only those directions are checked. Runs against the
/// scratch rows — no sets are materialized.
fn validate_no_mismatches(
    sdg: &Sdg,
    kind: QueryKind,
    scratch: &ReadoutScratch,
    metas: &[VariantMeta],
) -> Result<(), SpecError> {
    let forward = kind == QueryKind::Forward;
    for (ci, caller) in metas.iter().enumerate() {
        for (&c, &callee_idx) in &caller.calls {
            let site = sdg.call_site(c);
            let callee_proc = sdg.proc(metas[callee_idx].proc);
            for (&ai, &fi) in site.actual_ins.iter().zip(&callee_proc.formal_ins) {
                let actual_in = scratch_contains(scratch, ci, ai);
                let formal_in = scratch_contains(scratch, callee_idx, fi);
                let bad = if forward {
                    actual_in && !formal_in
                } else {
                    actual_in != formal_in
                };
                if bad {
                    return Err(SpecError::internal(
                        "readout",
                        format!(
                            "parameter mismatch at {c:?} slot {:?}: actual={} formal={} \
                         (Cor. 3.19 violated)",
                            sdg.in_slot(fi),
                            actual_in,
                            formal_in
                        ),
                    ));
                }
            }
            for (&ao, &fo) in site.actual_outs.iter().zip(&callee_proc.formal_outs) {
                let actual_out = scratch_contains(scratch, ci, ao);
                let formal_out = scratch_contains(scratch, callee_idx, fo);
                let bad = if forward {
                    formal_out && !actual_out
                } else {
                    actual_out != formal_out
                };
                if bad {
                    return Err(SpecError::internal(
                        "readout",
                        format!(
                            "output mismatch at {c:?} slot {:?}: actual={} formal={}",
                            sdg.out_slot(fo),
                            actual_out,
                            formal_out
                        ),
                    ));
                }
            }
        }
    }
    // Every included user call vertex must have a callee binding.
    for (i, meta) in metas.iter().enumerate() {
        let (lo, hi) = scratch.row_bounds[i];
        for &(_, v) in &scratch.vert_pairs[lo as usize..hi as usize] {
            if let VertexKind::Call { site, .. } = sdg.vertex(VertexId(v)).kind {
                if matches!(sdg.call_site(site).callee, CalleeKind::User(_))
                    && !meta.calls.contains_key(&site)
                {
                    return Err(SpecError::internal(
                        "readout",
                        format!("call vertex at {site:?} included with no callee variant"),
                    ));
                }
            }
        }
    }
    Ok(())
}
