//! Reading the specialized SDG out of the MRD automaton
//! (Alg. 1, lines 9–24).
//!
//! Each non-initial state of the minimal reverse-deterministic automaton
//! `A6` denotes one *specialized PDG*: its vertex set is the set of labels
//! on transitions from the initial state, and each call-site-labeled
//! transition `(q1, C, q2)` connects caller variant `q2` to callee variant
//! `q1` at (the copy of) call site `C`.

use crate::encode::Encoded;
use crate::SpecError;
use specslice_fsa::{is_reverse_deterministic, Nfa, StateId};
use specslice_sdg::{CallSiteId, CalleeKind, ProcId, Sdg, VertexId, VertexKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One specialized procedure (a partition element of Defn. 2.10).
#[derive(Clone, Debug)]
pub struct VariantPdg {
    /// The original procedure this specializes.
    pub proc: ProcId,
    /// Name of the specialized procedure (`p__1`, `p__2`, … — or the
    /// original name when the procedure has a single variant).
    pub name: String,
    /// The `Elems` component: original SDG vertices included in this
    /// specialization.
    pub vertices: BTreeSet<VertexId>,
    /// For each original call site appearing in this variant, the index (in
    /// [`SpecSlice::variants`]) of the callee variant it must invoke.
    pub calls: BTreeMap<CallSiteId, usize>,
    /// The `A6` state this variant was read from (diagnostics).
    pub state: StateId,
}

impl VariantPdg {
    /// Parameter indices kept in this variant's signature: those whose
    /// formal-in (or by-ref formal-out) vertex is included.
    pub fn kept_params(&self, sdg: &Sdg) -> Vec<usize> {
        let proc = sdg.proc(self.proc);
        let mut kept = BTreeSet::new();
        for &fi in &proc.formal_ins {
            if self.vertices.contains(&fi) {
                if let Some(specslice_sdg::InSlot::Param(i)) = sdg.in_slot(fi) {
                    kept.insert(*i);
                }
            }
        }
        for &fo in &proc.formal_outs {
            if self.vertices.contains(&fo) {
                if let Some(specslice_sdg::OutSlot::RefParam(i)) = sdg.out_slot(fo) {
                    kept.insert(*i);
                }
            }
        }
        kept.into_iter().collect()
    }
}

/// The result of specialization slicing: a partition of the
/// stack-configuration slice into specialized PDGs.
#[derive(Clone, Debug)]
pub struct SpecSlice {
    /// All specialized procedures. `variants[main_variant]` is `main`'s.
    pub variants: Vec<VariantPdg>,
    /// Index of the `main` variant, `None` when the slice is empty.
    pub main_variant: Option<usize>,
    /// The MRD automaton the slice was read from.
    pub a6: Nfa,
}

impl SpecSlice {
    /// `true` when the criterion was unreachable and the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The union of all variants' vertex sets (`Elems` of the whole slice).
    pub fn elems(&self) -> BTreeSet<VertexId> {
        self.variants
            .iter()
            .flat_map(|v| v.vertices.iter().copied())
            .collect()
    }

    /// Total vertex count across variants (replicated vertices counted once
    /// per variant) — the paper's specialization-slice size measure.
    pub fn total_vertices(&self) -> usize {
        self.variants.iter().map(|v| v.vertices.len()).sum()
    }

    /// The variants specializing procedure `name`.
    pub fn variants_of_proc<'a>(&'a self, sdg: &Sdg, name: &str) -> Vec<&'a VariantPdg> {
        let Some(p) = sdg.proc_by_name.get(name) else {
            return Vec::new();
        };
        self.variants.iter().filter(|v| v.proc == *p).collect()
    }

    /// `Specializations(P)` of Eqn. (3): the distinct element-sets of `P`'s
    /// variants.
    pub fn specializations(&self, proc: ProcId) -> BTreeSet<BTreeSet<VertexId>> {
        self.variants
            .iter()
            .filter(|v| v.proc == proc)
            .map(|v| v.vertices.clone())
            .collect()
    }
}

/// Reusable buffers for the read-out stage. Batch slicing hands one of
/// these to each worker thread ([`crate::Slicer::slice_batch`]), so the
/// per-criterion hot loop re-clears warm tables instead of re-allocating
/// them — and, with several workers live at once, does not contend on the
/// global allocator for its working set.
#[derive(Debug, Default)]
pub(crate) struct ReadoutScratch {
    vertex_sets: HashMap<StateId, BTreeSet<VertexId>>,
    call_transitions: Vec<(StateId, CallSiteId, StateId)>,
    state_proc: HashMap<StateId, ProcId>,
    states: Vec<StateId>,
    variant_of_state: HashMap<StateId, usize>,
    per_proc_count: HashMap<ProcId, usize>,
    per_proc_seen: HashMap<ProcId, usize>,
}

impl ReadoutScratch {
    fn clear(&mut self) {
        self.vertex_sets.clear();
        self.call_transitions.clear();
        self.state_proc.clear();
        self.states.clear();
        self.variant_of_state.clear();
        self.per_proc_count.clear();
        self.per_proc_seen.clear();
    }
}

/// Reads the specialized SDG out of `a6` (Alg. 1 lines 9–24) and validates
/// the Cor. 3.19 no-parameter-mismatch property.
pub fn read_out(sdg: &Sdg, enc: &Encoded, a6: &Nfa) -> Result<SpecSlice, SpecError> {
    read_out_with(sdg, enc, a6, true)
}

/// [`read_out`] with the Cor. 3.19 validation made optional
/// (see [`crate::SlicerConfig::validate`]).
pub fn read_out_with(
    sdg: &Sdg,
    enc: &Encoded,
    a6: &Nfa,
    validate: bool,
) -> Result<SpecSlice, SpecError> {
    read_out_in(sdg, enc, a6, validate, &mut ReadoutScratch::default())
}

/// [`read_out_with`] against caller-owned scratch buffers.
pub(crate) fn read_out_in(
    sdg: &Sdg,
    enc: &Encoded,
    a6: &Nfa,
    validate: bool,
    scratch: &mut ReadoutScratch,
) -> Result<SpecSlice, SpecError> {
    if a6.is_empty_language() {
        return Ok(SpecSlice {
            variants: Vec::new(),
            main_variant: None,
            a6: a6.clone(),
        });
    }
    debug_assert!(is_reverse_deterministic(a6), "A6 must be MRD (Thm. 3.16)");

    scratch.clear();
    let q0 = a6.initial();
    // Collect per-state vertex sets and per-state call transitions.
    let vertex_sets = &mut scratch.vertex_sets;
    let call_transitions = &mut scratch.call_transitions;
    for (from, label, to) in a6.transitions() {
        let sym = label.ok_or_else(|| SpecError::internal("readout", "A6 has ε-transitions"))?;
        if from == q0 {
            let v = enc.symbol_vertex(sym).ok_or_else(|| {
                SpecError::internal("readout", "initial-state transition labeled by a call site")
            })?;
            vertex_sets.entry(to).or_default().insert(v);
        } else {
            let c = enc.symbol_call_site(sym).ok_or_else(|| {
                SpecError::internal(
                    "readout",
                    "non-initial transition labeled by a vertex symbol",
                )
            })?;
            call_transitions.push((from, c, to));
        }
    }

    // Determine each state's procedure.
    let state_proc = &mut scratch.state_proc;
    for (&state, verts) in vertex_sets.iter() {
        let mut procs: BTreeSet<ProcId> = verts.iter().map(|&v| sdg.vertex(v).proc).collect();
        // Both failure shapes surface as values — an A6 state owned by zero
        // or several procedures is an invariant violation to report with the
        // offending state, never a panic inside a batch worker.
        let Some(proc) = procs.pop_first() else {
            return Err(SpecError::internal(
                "readout",
                format!("A6 state {state:?} maps to no owning procedure"),
            ));
        };
        if !procs.is_empty() {
            procs.insert(proc);
            return Err(SpecError::internal(
                "readout",
                format!("A6 state {state:?} mixes procedures: {procs:?} (Defn. 2.10(2) violated)"),
            ));
        }
        state_proc.insert(state, proc);
    }
    // States with no vertex transitions (possible for feature-removal
    // complements): infer the procedure from adjacent call transitions.
    for &(from, c, to) in call_transitions.iter() {
        let site = sdg.call_site(c);
        if let CalleeKind::User(callee) = site.callee {
            state_proc.entry(from).or_insert(callee);
        }
        state_proc.entry(to).or_insert(site.caller);
    }

    // Consistency: call transition (q1, C, q2) must have proc(q1) = callee(C)
    // and proc(q2) = caller(C).
    for &(from, c, to) in call_transitions.iter() {
        let site = sdg.call_site(c);
        let CalleeKind::User(callee) = site.callee else {
            return Err(SpecError::internal(
                "readout",
                format!("call-site symbol {c:?} of a library call appeared on the stack"),
            ));
        };
        if state_proc.get(&from) != Some(&callee) || state_proc.get(&to) != Some(&site.caller) {
            return Err(SpecError::internal(
                "readout",
                format!(
                    "inconsistent call transition at {c:?}: callee/caller procedures \
                 do not match the original SDG"
                ),
            ));
        }
    }

    // Build variants in deterministic state order.
    let states = &mut scratch.states;
    states.extend(state_proc.keys().copied());
    states.sort();
    let variant_of_state = &mut scratch.variant_of_state;
    let mut variants: Vec<VariantPdg> = Vec::new();
    // Per-proc counters for naming.
    let per_proc_count = &mut scratch.per_proc_count;
    for &s in states.iter() {
        let proc = state_proc[&s];
        *per_proc_count.entry(proc).or_insert(0) += 1;
    }
    let per_proc_seen = &mut scratch.per_proc_seen;
    for &s in states.iter() {
        let proc = state_proc[&s];
        let k = per_proc_seen.entry(proc).or_insert(0);
        *k += 1;
        let base = &sdg.proc(proc).name;
        let name = if per_proc_count[&proc] == 1 || base == "main" {
            base.clone()
        } else {
            format!("{base}__{k}")
        };
        variant_of_state.insert(s, variants.len());
        variants.push(VariantPdg {
            proc,
            name,
            vertices: vertex_sets.get(&s).cloned().unwrap_or_default(),
            calls: BTreeMap::new(),
            state: s,
        });
    }

    // Connect variants along call transitions. Reverse determinism gives a
    // unique callee per (caller variant, call site).
    for &(from, c, to) in call_transitions.iter() {
        let caller_idx = variant_of_state[&to];
        let callee_idx = variant_of_state[&from];
        if let Some(&prev) = variants[caller_idx].calls.get(&c) {
            if prev != callee_idx {
                return Err(SpecError::internal(
                    "readout",
                    format!(
                        "call site {c:?} targets two different variants in one \
                     caller copy (reverse determinism violated)"
                    ),
                ));
            }
        }
        variants[caller_idx].calls.insert(c, callee_idx);
    }

    // Identify main's variant: proc(main) with final-state membership.
    let finals = a6.finals();
    let mut main_variant = None;
    for (i, v) in variants.iter().enumerate() {
        if finals.contains(&v.state) {
            if v.proc != sdg.main {
                return Err(SpecError::internal(
                    "readout",
                    "final state does not correspond to main (ε-stack invariant broken)",
                ));
            }
            if main_variant.is_some() {
                return Err(SpecError::internal("readout", "multiple main variants"));
            }
            main_variant = Some(i);
        }
    }

    let slice = SpecSlice {
        variants,
        main_variant,
        a6: a6.clone(),
    };
    if validate {
        validate_no_mismatches(sdg, &slice)?;
    }
    Ok(slice)
}

/// Cor. 3.19: in the specialized SDG, a kept formal always has the matching
/// actual at every (specialized) call site, and vice versa.
fn validate_no_mismatches(sdg: &Sdg, slice: &SpecSlice) -> Result<(), SpecError> {
    for caller in &slice.variants {
        for (&c, &callee_idx) in &caller.calls {
            let callee = &slice.variants[callee_idx];
            let site = sdg.call_site(c);
            let callee_proc = sdg.proc(callee.proc);
            for (&ai, &fi) in site.actual_ins.iter().zip(&callee_proc.formal_ins) {
                let actual_in = caller.vertices.contains(&ai);
                let formal_in = callee.vertices.contains(&fi);
                if actual_in != formal_in {
                    return Err(SpecError::internal(
                        "readout",
                        format!(
                            "parameter mismatch at {c:?} slot {:?}: actual={} formal={} \
                         (Cor. 3.19 violated)",
                            sdg.in_slot(fi),
                            actual_in,
                            formal_in
                        ),
                    ));
                }
            }
            for (&ao, &fo) in site.actual_outs.iter().zip(&callee_proc.formal_outs) {
                let actual_out = caller.vertices.contains(&ao);
                let formal_out = callee.vertices.contains(&fo);
                if actual_out != formal_out {
                    return Err(SpecError::internal(
                        "readout",
                        format!(
                            "output mismatch at {c:?} slot {:?}: actual={} formal={}",
                            sdg.out_slot(fo),
                            actual_out,
                            formal_out
                        ),
                    ));
                }
            }
        }
    }
    // Every included user call vertex must have a callee binding.
    for v in &slice.variants {
        for &vid in &v.vertices {
            if let VertexKind::Call { site, .. } = sdg.vertex(vid).kind {
                if matches!(sdg.call_site(site).callee, CalleeKind::User(_))
                    && !v.calls.contains_key(&site)
                {
                    return Err(SpecError::internal(
                        "readout",
                        format!("call vertex at {site:?} included with no callee variant"),
                    ));
                }
            }
        }
    }
    Ok(())
}
