//! Feature removal for multi-procedure programs (Alg. 2 / §7).
//!
//! The "feature" is the forward stack-configuration slice from criterion
//! `C`. The algorithm subtracts it from the set of configurations reachable
//! from `⟨entry_main, ε⟩`:
//!
//! ```text
//! A1 = Poststar(A_entry) ∩ complement(determinize(Poststar(A_C)))
//! ```
//!
//! and then continues exactly like Alg. 1 (MRD construction + read-out).
//! Because the PDS machinery manipulates configurations of the *unrolled*
//! SDG, the complement of the forward slice is backwards-closed — the
//! property that fails for SDG-level closure slices (Obs. 7.1) and that
//! previously made multi-procedure feature removal impossible.

use crate::criteria::{self, Criterion};
use crate::encode::{self, MAIN_CONTROL};
use crate::readout::{self, SpecSlice};
use crate::store::VariantStore;
use crate::SpecError;
use specslice_fsa::ops::difference;
use specslice_fsa::{mrd, Dfa};
use specslice_pds::poststar::poststar_indexed_with_stats;
use specslice_pds::SaturationScratch;
use specslice_sdg::Sdg;
use std::sync::Arc;

/// Removes the feature identified by the forward stack-configuration slice
/// from `criterion`, returning the residual specialization slice.
///
/// One-shot wrapper: encodes the SDG and computes the reachable automaton
/// for this single call. Multi-query clients should use
/// [`crate::Slicer::remove_feature`], which shares both across queries.
///
/// # Errors
///
/// Fails on malformed criteria or internal invariant violations.
pub fn remove_feature(sdg: &Sdg, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
    let enc = encode::encode_sdg(sdg);
    let reachable = criteria::reachable_configurations(sdg, &enc)?;
    remove_feature_reusing(
        sdg,
        &enc,
        &reachable,
        criterion,
        &Arc::new(VariantStore::new()),
    )
}

/// [`remove_feature`] against a session's cached encoding, reachable
/// automaton (Alg. 2 always needs both), and variant store (the residual
/// slice's content is interned there).
pub fn remove_feature_reusing(
    sdg: &Sdg,
    enc: &encode::Encoded,
    reachable: &specslice_fsa::Nfa,
    criterion: &Criterion,
    store: &Arc<VariantStore>,
) -> Result<SpecSlice, SpecError> {
    let ac = criteria::query_automaton_reusing(sdg, enc, Some(reachable), criterion)?;
    // A0 = Poststar(A_C): the feature, as a configuration language. The
    // query came out of `query_automaton_reusing`, which guarantees the
    // post* preconditions — a violation here is a slicer bug, but it is
    // reported as a structured [`SpecError::Pds`] (engine error preserved
    // as the `source`) rather than a worker-killing panic.
    let (a0, _) = poststar_indexed_with_stats(&enc.index, &ac, &mut SaturationScratch::default())
        .map_err(|e| SpecError::pds("poststar", e))?;
    let a0_nfa = a0.to_nfa(MAIN_CONTROL);
    // A1 = Reachable ∖ A0.
    let a1 = difference(reachable, &Dfa::determinize(&a0_nfa));
    let (a1, _) = a1.trimmed();
    // Continue at line 4 of Alg. 1.
    let a6 = mrd(&a1);
    readout::read_out_in(
        sdg,
        enc,
        &a6,
        true,
        readout::QueryKind::Residual,
        &mut readout::ReadoutScratch::default(),
        store,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regen::regenerate;
    use specslice_lang::frontend;
    use specslice_sdg::build::build_sdg;
    use specslice_sdg::VertexKind;

    /// Fig. 16(a): sum and product via a shared `add` procedure.
    const FIG16: &str = r#"
        int add(int a, int b) {
            int q;
            q = a + b;
            return q;
        }
        int mult(int a, int b) {
            int i;
            int ans;
            i = 0;
            ans = 0;
            while (i < a) {
                ans = add(ans, b);
                i = add(i, 1);
            }
            return ans;
        }
        void tally(int& sum, int& prod, int N) {
            int i;
            i = 1;
            while (i <= N) {
                sum = add(sum, i);
                prod = mult(prod, i);
                i = add(i, 1);
            }
        }
        int main() {
            int sum;
            int prod;
            sum = 0;
            prod = 1;
            tally(sum, prod, 10);
            printf("%d ", sum);
            printf("%d ", prod);
        }
    "#;

    #[test]
    fn fig16_remove_product_feature() {
        let program = frontend(FIG16).unwrap();
        let sdg = build_sdg(&program).unwrap();
        // Criterion: the `prod = 1` statement in main, in all contexts.
        let main = sdg.proc_named("main").unwrap();
        let prod_init = main
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .nth(1) // sum = 0; prod = 1;
            .unwrap();
        let slice = remove_feature(&sdg, &Criterion::vertex(prod_init)).unwrap();
        assert!(!slice.is_empty());

        // `add` must be kept (it is needed for the sum) — Obs. 7.1's
        // counterexample to naive subtraction.
        assert!(!slice.variants_of_proc(&sdg, "add").is_empty());

        // `tally` is specialized: the `prod` by-ref parameter disappears.
        let tallies = slice.variants_of_proc(&sdg, "tally");
        assert_eq!(tallies.len(), 1);
        let kept = tallies[0].kept_params(&sdg);
        assert_eq!(kept, vec![0, 2], "tally keeps sum and N, drops prod");

        // `prod = 1` and the prod printf are gone from main.
        let main_variant = slice.variant(slice.main_variant.unwrap());
        assert!(!main_variant.vertices.contains(&prod_init));

        // The program regenerates, re-checks, and its tally has 2 params.
        let regen = regenerate(&sdg, &program, &slice).unwrap();
        let tally_fn = regen
            .program
            .functions
            .iter()
            .find(|f| f.name.starts_with("tally"))
            .unwrap();
        assert_eq!(tally_fn.params.len(), 2, "{}", regen.source);
        // The sum remains computed via add.
        assert!(regen.source.contains("add"), "{}", regen.source);
    }

    #[test]
    fn removing_everything_leaves_skeleton() {
        let program = frontend(
            r#"
            int g;
            int main() {
                g = 1;
                printf("%d", g);
                return 0;
            }
            "#,
        )
        .unwrap();
        let sdg = build_sdg(&program).unwrap();
        let main = sdg.proc_named("main").unwrap();
        // Remove the forward slice of the entry vertex: everything.
        let slice = remove_feature(&sdg, &Criterion::vertex(main.entry)).unwrap();
        assert!(slice.is_empty());
        let regen = regenerate(&sdg, &program, &slice).unwrap();
        assert!(regen.program.main().is_some());
    }

    #[test]
    fn removing_unreachable_feature_keeps_everything() {
        let program = frontend(
            r#"
            int g, h;
            int main() {
                int dead;
                g = 1;
                dead = 2;
                printf("%d", g);
                return 0;
            }
            "#,
        )
        .unwrap();
        let sdg = build_sdg(&program).unwrap();
        // Criterion: `dead = 2` — influences nothing else.
        let main = sdg.proc_named("main").unwrap();
        let dead = main
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .nth(1)
            .unwrap();
        let slice = remove_feature(&sdg, &Criterion::vertex(dead)).unwrap();
        let main_variant = slice.variant(slice.main_variant.unwrap());
        // Everything except `dead = 2` survives.
        assert!(!main_variant.vertices.contains(&dead));
        assert!(main_variant.vertices.contains(&main.entry));
        assert!(main_variant.vertices.len() >= 5);
    }
}
