//! The session-level variant store: interned, deduplicated specialized-PDG
//! content.
//!
//! Every specialized procedure a session reads out of an MRD automaton is
//! canonically *content* — an owning procedure plus the sorted set of
//! original SDG vertices it keeps. Multi-criterion workloads produce the
//! same content over and over: two criteria that need the same projection
//! of a shared helper each demand a variant with the identical vertex row.
//! A [`VariantStore`] interns that content once: rows live in one CSR-style
//! flat table (`offsets` + `verts`, dense `u32` vertex ids, sorted), and a
//! [`VariantId`] is a dense index into it. A `SpecSlice` then carries
//! `Vec<VariantId>` instead of owning one `BTreeSet<VertexId>` per variant,
//! and the whole-program driver ([`crate::Slicer::specialize_program`])
//! dedups variants *across* criteria by comparing interned ids instead of
//! comparing sets.
//!
//! The store is append-only and shared (`Arc<VariantStore>`): readers take
//! a short read lock, interning takes a write lock. Batch workers intern
//! into private per-worker shard stores and the session re-interns the
//! results in input order, so the session store's ids (and its counters)
//! are identical at every thread count.

use specslice_fsa::hash::FxHasher;
use specslice_fsa::FxHashMap;
use specslice_sdg::{ProcId, VertexId};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hasher;
use std::sync::RwLock;

/// Dense identifier of an interned variant (owning procedure + sorted
/// vertex row) in a [`VariantStore`].
///
/// Ids name *content*: two variants with the same owning procedure and the
/// same vertex set get the same id, no matter which criterion (or how many
/// criteria) produced them. Ids are store-relative — comparing ids from two
/// different stores is meaningless.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VariantId(pub u32);

impl VariantId {
    /// Dense index of the variant.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// Deterministic counters describing a [`VariantStore`]'s contents and its
/// interning history. All fields are pure functions of the sequence of
/// intern calls, so they are identical on every machine and (because batch
/// results are adopted in input order) at every thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct variants interned (the store's length).
    pub interned: usize,
    /// Total intern calls answered.
    pub intern_calls: usize,
    /// Intern calls that found existing content (`intern_calls − interned`
    /// whenever every distinct row was first interned here).
    pub dedup_hits: usize,
    /// Bytes of the flat vertex-row table (4 bytes per kept vertex, each
    /// distinct row stored once).
    pub row_bytes: usize,
}

impl StoreStats {
    /// Estimated resident bytes of the store these stats describe: the flat
    /// row table plus per-variant bookkeeping (owning proc, CSR offset, and
    /// a dedup-map slot). Deterministic — a pure function of the counters —
    /// so eviction decisions based on it (the server's session budget) are
    /// reproducible across runs and machines.
    pub fn approx_bytes(&self) -> usize {
        // proc (4) + offset (4) + dedup key/candidate slot (~24).
        self.row_bytes + self.interned * 32
    }
}

#[derive(Debug)]
struct StoreInner {
    /// Owning procedure per variant.
    procs: Vec<ProcId>,
    /// CSR offsets into `verts`; `offsets[id]..offsets[id + 1]` is the row.
    offsets: Vec<u32>,
    /// Flat, per-row-sorted dense vertex ids.
    verts: Vec<u32>,
    /// Content hash → candidate ids (full row compare on lookup).
    dedup: FxHashMap<u64, Vec<u32>>,
    intern_calls: usize,
    dedup_hits: usize,
}

/// An append-only interner of specialized-PDG content; see the module docs.
#[derive(Debug)]
pub struct VariantStore {
    inner: RwLock<StoreInner>,
}

impl Default for VariantStore {
    fn default() -> Self {
        VariantStore::new()
    }
}

fn content_hash(proc: ProcId, row: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(proc.0);
    h.write_u32(row.len() as u32);
    for &v in row {
        h.write_u32(v);
    }
    h.finish()
}

impl VariantStore {
    /// Creates an empty store.
    pub fn new() -> VariantStore {
        VariantStore {
            inner: RwLock::new(StoreInner {
                procs: Vec::new(),
                offsets: vec![0],
                verts: Vec::new(),
                dedup: FxHashMap::default(),
                intern_calls: 0,
                dedup_hits: 0,
            }),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, StoreInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns one variant's content: the owning procedure plus its
    /// **sorted** dense vertex row. Returns the content's id — existing
    /// when the same content was interned before (a *dedup hit*), fresh
    /// otherwise.
    pub fn intern(&self, proc: ProcId, row: &[u32]) -> VariantId {
        debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.intern_calls += 1;
        let hash = content_hash(proc, row);
        if let Some(candidates) = inner.dedup.get(&hash) {
            for &id in candidates {
                let (lo, hi) = (inner.offsets[id as usize], inner.offsets[id as usize + 1]);
                if inner.procs[id as usize] == proc && inner.verts[lo as usize..hi as usize] == *row
                {
                    inner.dedup_hits += 1;
                    return VariantId(id);
                }
            }
        }
        let id = inner.procs.len() as u32;
        inner.procs.push(proc);
        inner.verts.extend_from_slice(row);
        let end = inner.verts.len() as u32;
        inner.offsets.push(end);
        inner.dedup.entry(hash).or_default().push(id);
        VariantId(id)
    }

    /// Number of distinct variants interned.
    pub fn len(&self) -> usize {
        self.read().procs.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The owning procedure of variant `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned in this store.
    pub fn proc(&self, id: VariantId) -> ProcId {
        self.read().procs[id.index()]
    }

    /// The variant's sorted dense vertex row.
    pub fn row_dense(&self, id: VariantId) -> Vec<u32> {
        let inner = self.read();
        let (lo, hi) = (inner.offsets[id.index()], inner.offsets[id.index() + 1]);
        inner.verts[lo as usize..hi as usize].to_vec()
    }

    /// The variant's vertices as [`VertexId`]s, ascending.
    pub fn row(&self, id: VariantId) -> Vec<VertexId> {
        let inner = self.read();
        let (lo, hi) = (inner.offsets[id.index()], inner.offsets[id.index() + 1]);
        inner.verts[lo as usize..hi as usize]
            .iter()
            .map(|&v| VertexId(v))
            .collect()
    }

    /// Number of vertices in the variant's row.
    pub fn row_len(&self, id: VariantId) -> usize {
        let inner = self.read();
        (inner.offsets[id.index() + 1] - inner.offsets[id.index()]) as usize
    }

    /// Whether the variant's row contains `v` (binary search — the rows are
    /// sorted).
    pub fn contains(&self, id: VariantId, v: VertexId) -> bool {
        let inner = self.read();
        let (lo, hi) = (inner.offsets[id.index()], inner.offsets[id.index() + 1]);
        inner.verts[lo as usize..hi as usize]
            .binary_search(&v.0)
            .is_ok()
    }

    /// The variant's vertex set — the compatibility shim behind
    /// [`crate::readout::VariantPdg::vertices`]. Prefer [`VariantStore::row`]
    /// / [`VariantStore::contains`] in new code: they stay on the flat
    /// table.
    pub fn vertex_set(&self, id: VariantId) -> BTreeSet<VertexId> {
        self.row(id).into_iter().collect()
    }

    /// Current [`StoreStats`].
    pub fn stats(&self) -> StoreStats {
        let inner = self.read();
        StoreStats {
            interned: inner.procs.len(),
            intern_calls: inner.intern_calls,
            dedup_hits: inner.dedup_hits,
            row_bytes: inner.verts.len() * std::mem::size_of::<u32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_by_content() {
        let store = VariantStore::new();
        let p0 = ProcId(0);
        let p1 = ProcId(1);
        let a = store.intern(p0, &[1, 3, 5]);
        let b = store.intern(p0, &[1, 3, 5]);
        let c = store.intern(p1, &[1, 3, 5]); // same row, other proc
        let d = store.intern(p0, &[1, 3]);
        assert_eq!(a, b, "identical content shares one id");
        assert_ne!(a, c, "owning procedure is part of the content");
        assert_ne!(a, d);
        assert_eq!(store.len(), 3);
        let stats = store.stats();
        assert_eq!(stats.intern_calls, 4);
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.row_bytes, (3 + 3 + 2) * 4);
    }

    #[test]
    fn rows_round_trip() {
        let store = VariantStore::new();
        let id = store.intern(ProcId(2), &[0, 7, 9]);
        let empty = store.intern(ProcId(2), &[]);
        assert_eq!(store.proc(id), ProcId(2));
        assert_eq!(store.row_dense(id), vec![0, 7, 9]);
        assert_eq!(store.row(id), vec![VertexId(0), VertexId(7), VertexId(9)]);
        assert_eq!(store.row_len(id), 3);
        assert!(store.contains(id, VertexId(7)));
        assert!(!store.contains(id, VertexId(8)));
        assert_eq!(store.row_len(empty), 0);
        assert_eq!(
            store.vertex_set(id),
            [VertexId(0), VertexId(7), VertexId(9)]
                .into_iter()
                .collect()
        );
    }
}
