//! Slicing criteria and their query automata.
//!
//! A criterion denotes a (possibly infinite, regular) set of configurations
//! `(v, w)` of the unrolled SDG — PDG vertex `v` under pending-call stack
//! `w`. Three forms are supported:
//!
//! * explicit finite configuration sets (the "bug site" criteria of §8);
//! * *all calling contexts* of a vertex set — `(V · Γ_c*) ∩ Reachable`,
//!   where `Reachable = post*({⟨entry_main, ε⟩})` restricts to realizable
//!   stacks (how the paper slices on "all of the calling contexts of
//!   printf");
//! * raw automata over the interned symbol alphabet.

use crate::encode::{Encoded, MAIN_CONTROL};
use crate::SpecError;
use specslice_fsa::{Dfa, Nfa};
use specslice_pds::{PAutomaton, PState};
use specslice_sdg::{CallSiteId, CalleeKind, Sdg, VertexId};

/// A slicing criterion.
#[derive(Clone, Debug)]
pub enum Criterion {
    /// A finite set of `(vertex, call-stack)` configurations. Stacks list
    /// pending call sites from innermost to outermost (`main`'s site last);
    /// an empty stack means the vertex is in `main`.
    Configurations(Vec<(VertexId, Vec<CallSiteId>)>),
    /// Every realizable calling context of the given vertices.
    AllContexts(Vec<VertexId>),
    /// A raw automaton over the interned symbol space (words must have the
    /// `vertex call-site*` shape).
    Automaton(Nfa),
}

impl Criterion {
    /// Criterion: all calling contexts of the actual parameters of every
    /// `printf` call — the criterion used throughout the paper's examples
    /// and for the `wc`/`go` experiments.
    pub fn printf_actuals(sdg: &Sdg) -> Criterion {
        Criterion::AllContexts(sdg.printf_actual_in_vertices())
    }

    /// Criterion: a single vertex in every realizable calling context.
    pub fn vertex(v: VertexId) -> Criterion {
        Criterion::AllContexts(vec![v])
    }

    /// Criterion: one concrete configuration (a "bug site").
    pub fn configuration(v: VertexId, stack: Vec<CallSiteId>) -> Criterion {
        Criterion::Configurations(vec![(v, stack)])
    }
}

/// Validates a configuration: the stack must be a realizable chain of call
/// sites from the vertex's procedure out to `main`.
fn validate_configuration(sdg: &Sdg, v: VertexId, stack: &[CallSiteId]) -> Result<(), SpecError> {
    if v.index() >= sdg.vertex_count() {
        return Err(SpecError::bad_criterion(format!(
            "criterion vertex {v:?} out of range"
        )));
    }
    let mut cur = sdg.vertex(v).proc;
    for &c in stack {
        if c.index() >= sdg.call_sites.len() {
            return Err(SpecError::bad_criterion(format!(
                "criterion call site {c:?} out of range"
            )));
        }
        let site = sdg.call_site(c);
        match site.callee {
            CalleeKind::User(callee) if callee == cur => {}
            _ => {
                return Err(SpecError::bad_criterion(format!(
                    "criterion stack invalid: {c:?} does not call `{}`",
                    sdg.proc(cur).name
                )))
            }
        }
        cur = site.caller;
    }
    if cur != sdg.main {
        return Err(SpecError::bad_criterion(format!(
            "criterion stack does not bottom out in `main` (ends in `{}`)",
            sdg.proc(cur).name
        )));
    }
    Ok(())
}

/// Builds the P-automaton `A0` for a criterion (Fig. 9-style), computing
/// the reachable-configuration automaton on demand when the criterion needs
/// it. Sessions ([`crate::Slicer`]) use [`query_automaton_reusing`] to share
/// one cached reachable automaton across queries instead.
///
/// # Errors
///
/// Rejects out-of-range vertices/call sites and unrealizable stacks.
pub fn query_automaton(
    sdg: &Sdg,
    enc: &Encoded,
    criterion: &Criterion,
) -> Result<PAutomaton, SpecError> {
    query_automaton_reusing(sdg, enc, None, criterion)
}

/// [`query_automaton`] with an optionally pre-computed
/// [`reachable_configurations`] automaton (only all-contexts criteria
/// consult it; passing `None` computes it on demand).
pub fn query_automaton_reusing(
    sdg: &Sdg,
    enc: &Encoded,
    reachable: Option<&Nfa>,
    criterion: &Criterion,
) -> Result<PAutomaton, SpecError> {
    match criterion {
        Criterion::Configurations(configs) => {
            if configs.is_empty() {
                return Err(SpecError::bad_criterion("empty criterion"));
            }
            let mut aut = PAutomaton::new(enc.pds.control_count());
            let p = aut.control_state(MAIN_CONTROL);
            let f = aut.add_state();
            aut.set_final(f);
            for (v, stack) in configs {
                validate_configuration(sdg, *v, stack)?;
                // Chain p –v→ … –C_k→ f.
                let mut syms = vec![enc.vertex_symbol(*v)];
                syms.extend(stack.iter().map(|&c| enc.call_symbol(c)));
                let mut cur = p;
                for (i, &s) in syms.iter().enumerate() {
                    let next = if i + 1 == syms.len() {
                        f
                    } else {
                        aut.add_state()
                    };
                    aut.add_transition(cur, Some(s), next);
                    cur = next;
                }
            }
            Ok(aut)
        }
        Criterion::AllContexts(verts) => {
            if verts.is_empty() {
                return Err(SpecError::bad_criterion("empty criterion"));
            }
            for &v in verts {
                if v.index() >= sdg.vertex_count() {
                    return Err(SpecError::bad_criterion(format!(
                        "criterion vertex {v:?} out of range"
                    )));
                }
            }
            let computed;
            let reachable = match reachable {
                Some(r) => r,
                None => {
                    computed = reachable_configurations(sdg, enc)?;
                    &computed
                }
            };
            // Shape automaton: verts · call-symbols*.
            let mut shape = Nfa::new();
            let f = shape.add_state();
            shape.set_final(f);
            for &v in verts {
                shape.add_transition(shape.initial(), Some(enc.vertex_symbol(v)), f);
            }
            for c in &sdg.call_sites {
                shape.add_transition(f, Some(enc.call_symbol(c.id)), f);
            }
            let inter = specslice_fsa::ops::intersect(reachable, &shape);
            nfa_to_query(enc, &inter)
        }
        Criterion::Automaton(nfa) => nfa_to_query(enc, nfa),
    }
}

/// The language of all configurations reachable from `⟨entry_main, ε⟩` —
/// i.e. every `(v, w)` of the unrolled SDG whose stack is realizable.
///
/// The result is determinized and minimized: it is built once per session
/// but consumed per criterion (all-contexts queries intersect with it and
/// re-determinize the product), so every state shaved here is shaved from
/// each of those downstream subset constructions. With a deterministic
/// left operand and the deterministic `verts · Γ_c*` shape on the right,
/// the product is itself deterministic and the per-criterion determinize
/// degenerates to a linear walk.
///
/// # Errors
///
/// Propagates a structured [`SpecError::Pds`] if the entry query violates a
/// `post*` precondition. The query is built right here — one labeled
/// transition out of a control state into a fresh final state — so every
/// precondition holds by construction and an error indicates a bug in the
/// engine, but it surfaces as a value (with the engine's own error as the
/// [`source`](std::error::Error::source)) rather than a panic inside
/// whatever worker thread first touched the session's reachable automaton.
pub fn reachable_configurations(sdg: &Sdg, enc: &Encoded) -> Result<Nfa, SpecError> {
    let mut ae = PAutomaton::new(enc.pds.control_count());
    let f = ae.add_state();
    ae.set_final(f);
    let entry = sdg.proc(sdg.main).entry;
    ae.add_transition(
        ae.control_state(MAIN_CONTROL),
        Some(enc.vertex_symbol(entry)),
        f,
    );
    let (post, _) = specslice_pds::poststar::poststar_indexed_with_stats(
        &enc.index,
        &ae,
        &mut specslice_pds::SaturationScratch::default(),
    )
    .map_err(|e| SpecError::pds("poststar(reachable)", e))?;
    let nfa = post.to_nfa(MAIN_CONTROL);
    Ok(specslice_fsa::hopcroft::minimize(&Dfa::determinize(&nfa)).to_nfa())
}

/// Converts an arbitrary NFA into a query P-automaton: determinize +
/// minimize (guaranteeing ε-freedom and no transitions into the initial
/// state, as `poststar` requires), then graft onto the control states.
fn nfa_to_query(enc: &Encoded, nfa: &Nfa) -> Result<PAutomaton, SpecError> {
    let dfa = specslice_fsa::hopcroft::minimize(&Dfa::determinize(nfa));
    let mut aut = PAutomaton::new(enc.pds.control_count());
    // DFA state i → automaton state: initial → control p, others → fresh.
    let mut map: Vec<Option<PState>> = vec![None; dfa.state_count()];
    map[dfa.initial().index()] = Some(aut.control_state(MAIN_CONTROL));
    for slot in map.iter_mut() {
        if slot.is_none() {
            *slot = Some(aut.add_state());
        }
    }
    for (from, sym, to) in dfa.transitions() {
        if to == dfa.initial() {
            return Err(SpecError::bad_criterion(
                "criterion automaton has a transition into its initial state \
                 (words must have the shape `vertex call-site*`)",
            ));
        }
        aut.add_transition(
            map[from.index()].expect("mapped"),
            Some(sym),
            map[to.index()].expect("mapped"),
        );
    }
    for &f in dfa.finals() {
        aut.set_final(map[f.index()].expect("mapped"));
    }
    Ok(aut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_sdg;
    use specslice_lang::frontend;
    use specslice_sdg::build::build_sdg;

    const FIG1: &str = r#"
        int g1, g2, g3;
        void p(int a, int b) {
            g1 = a;
            g2 = b;
            g3 = g2;
        }
        int main() {
            g2 = 100;
            p(g2, 2);
            p(g2, 3);
            p(4, g1 + g2);
            printf("%d", g2);
        }
    "#;

    fn setup(src: &str) -> (Sdg, Encoded) {
        let sdg = build_sdg(&frontend(src).unwrap()).unwrap();
        let enc = encode_sdg(&sdg);
        (sdg, enc)
    }

    #[test]
    fn printf_criterion_accepts_expected_configs() {
        let (sdg, enc) = setup(FIG1);
        let q = query_automaton(&sdg, &enc, &Criterion::printf_actuals(&sdg)).unwrap();
        for v in sdg.printf_actual_in_vertices() {
            assert!(q.accepts(MAIN_CONTROL, &[enc.vertex_symbol(v)]));
        }
        // A p-vertex with empty stack is not a printf-actual configuration.
        let p = sdg.proc_named("p").unwrap();
        assert!(!q.accepts(MAIN_CONTROL, &[enc.vertex_symbol(p.entry)]));
    }

    #[test]
    fn configuration_criterion_validates_stacks() {
        let (sdg, enc) = setup(FIG1);
        let p = sdg.proc_named("p").unwrap();
        let site0 = sdg.call_sites[0].id; // first call to p, in main
                                          // Valid: p's entry under C0.
        let ok = Criterion::configuration(p.entry, vec![site0]);
        assert!(query_automaton(&sdg, &enc, &ok).is_ok());
        // Invalid: stack does not bottom out in main (p vertex, no stack).
        let bad = Criterion::configuration(p.entry, vec![]);
        let err = query_automaton(&sdg, &enc, &bad).unwrap_err();
        assert!(err.to_string().contains("main"), "{err}");
        assert!(matches!(err, SpecError::BadCriterion { .. }), "{err:?}");
        // Invalid: call site that does not call p's proc.
        let printf_site = sdg
            .call_sites
            .iter()
            .find(|c| matches!(c.callee, CalleeKind::Library(_)))
            .unwrap()
            .id;
        let bad2 = Criterion::configuration(p.entry, vec![printf_site]);
        assert!(query_automaton(&sdg, &enc, &bad2).is_err());
    }

    #[test]
    fn all_contexts_restricts_to_realizable_stacks() {
        let (sdg, enc) = setup(FIG1);
        let p = sdg.proc_named("p").unwrap();
        // p5 (g2 = b) in all contexts: accepted with each call site of p,
        // rejected with impossible stacks.
        let g2b = p.vertices[6]; // entry, 2 fin, 3 fout, then stmts…
        let crit = Criterion::vertex(g2b);
        let q = query_automaton(&sdg, &enc, &crit).unwrap();
        let user_sites: Vec<CallSiteId> = sdg
            .call_sites
            .iter()
            .filter(|c| matches!(c.callee, CalleeKind::User(_)))
            .map(|c| c.id)
            .collect();
        for &c in &user_sites {
            assert!(q.accepts(MAIN_CONTROL, &[enc.vertex_symbol(g2b), enc.call_symbol(c)]));
        }
        // Stack of two user sites is not realizable (p does not call p).
        assert!(!q.accepts(
            MAIN_CONTROL,
            &[
                enc.vertex_symbol(g2b),
                enc.call_symbol(user_sites[0]),
                enc.call_symbol(user_sites[1])
            ]
        ));
        // ε stack is not realizable for a p vertex.
        assert!(!q.accepts(MAIN_CONTROL, &[enc.vertex_symbol(g2b)]));
    }

    #[test]
    fn empty_criterion_rejected() {
        let (sdg, enc) = setup(FIG1);
        assert!(query_automaton(&sdg, &enc, &Criterion::AllContexts(vec![])).is_err());
        assert!(query_automaton(&sdg, &enc, &Criterion::Configurations(vec![])).is_err());
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let (sdg, enc) = setup(FIG1);
        let bogus = VertexId(9999);
        assert!(query_automaton(&sdg, &enc, &Criterion::vertex(bogus)).is_err());
    }

    #[test]
    fn recursive_program_reachable_contexts_are_infinite() {
        let (sdg, enc) = setup(
            r#"
            int g;
            void r(int k) {
                if (k > 0) { r(k - 1); }
                g = k;
            }
            int main() { r(3); printf("%d", g); return 0; }
            "#,
        );
        let r = sdg.proc_named("r").unwrap();
        let q = query_automaton(&sdg, &enc, &Criterion::vertex(r.entry)).unwrap();
        // r's entry is reachable at arbitrarily deep recursion stacks:
        // main site then k recursive sites.
        let rec_site = sdg
            .call_sites
            .iter()
            .find(|c| c.caller == r.id && matches!(c.callee, CalleeKind::User(p) if p == r.id))
            .unwrap()
            .id;
        let main_site = sdg
            .call_sites
            .iter()
            .find(|c| c.caller == sdg.main && matches!(c.callee, CalleeKind::User(_)))
            .unwrap()
            .id;
        for depth in 0..4 {
            let mut word = vec![enc.vertex_symbol(r.entry)];
            word.extend(std::iter::repeat_n(enc.call_symbol(rec_site), depth));
            word.push(enc.call_symbol(main_site));
            assert!(q.accepts(MAIN_CONTROL, &word), "depth {depth}");
        }
    }
}
