//! Slice statistics backing the paper's evaluation (Figs. 18–20).

use crate::readout::SpecSlice;
use specslice_sdg::slice::backward_closure_slice;
use specslice_sdg::{ProcId, Sdg, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// Size and shape statistics comparing a specialization slice against the
/// closure slice it refines.
#[derive(Clone, Debug)]
pub struct SliceStats {
    /// Vertices in the closure slice (`|closure slice|`, the Fig. 19
    /// normalization base).
    pub closure_size: usize,
    /// Total vertices across all specialized PDGs (replicas counted).
    pub spec_total: usize,
    /// Distinct original vertices covered by the specialization slice.
    pub spec_elems: usize,
    /// Histogram: number of specialized versions → number of procedures
    /// (Fig. 18).
    pub variant_histogram: BTreeMap<usize, usize>,
    /// The largest number of variants any procedure received.
    pub max_variants: usize,
    /// Per-variant `(proc, |variant|, |proc's vertices in closure slice|)` —
    /// the Fig. 20 scatter series.
    pub per_variant_sizes: Vec<(ProcId, usize, usize)>,
}

impl SliceStats {
    /// Percentage of extra (replicated) vertices relative to the closure
    /// slice: `100 · (spec_total − closure) / closure` (Fig. 19's
    /// "% increase").
    pub fn percent_increase(&self) -> f64 {
        if self.closure_size == 0 {
            return 0.0;
        }
        100.0 * (self.spec_total as f64 - self.closure_size as f64) / self.closure_size as f64
    }
}

/// Computes statistics for `slice` against the closure slice from
/// `criterion_vertices` (the element-level criterion).
pub fn slice_stats(sdg: &Sdg, slice: &SpecSlice, criterion_vertices: &[VertexId]) -> SliceStats {
    let closure = backward_closure_slice(sdg, criterion_vertices);
    let elems = slice.elems();

    let mut per_proc: BTreeMap<ProcId, usize> = BTreeMap::new();
    for meta in slice.metas() {
        *per_proc.entry(meta.proc).or_insert(0) += 1;
    }
    let mut variant_histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for n in per_proc.values() {
        *variant_histogram.entry(*n).or_insert(0) += 1;
    }
    let max_variants = per_proc.values().copied().max().unwrap_or(0);

    let closure_per_proc: BTreeMap<ProcId, usize> = {
        let mut m = BTreeMap::new();
        for &v in &closure {
            *m.entry(sdg.vertex(v).proc).or_insert(0) += 1;
        }
        m
    };
    let store = slice.store();
    let per_variant_sizes = slice
        .metas()
        .iter()
        .zip(slice.variant_ids())
        .map(|(meta, &id)| {
            (
                meta.proc,
                store.row_len(id),
                closure_per_proc.get(&meta.proc).copied().unwrap_or(0),
            )
        })
        .collect();

    SliceStats {
        closure_size: closure.len(),
        spec_total: slice.total_vertices(),
        spec_elems: elems.len(),
        variant_histogram,
        max_variants,
        per_variant_sizes,
    }
}

/// Checks the element-level soundness property the paper highlights:
/// specialization slices never contain vertices outside the closure slice.
/// Returns the offending vertices (empty = sound).
pub fn elements_outside_closure(
    sdg: &Sdg,
    slice: &SpecSlice,
    criterion_vertices: &[VertexId],
) -> BTreeSet<VertexId> {
    let closure = backward_closure_slice(sdg, criterion_vertices);
    slice.elems().difference(&closure).copied().collect()
}

/// Checks element-level completeness for all-contexts criteria: every
/// closure-slice vertex appears in some variant. Returns missing vertices.
pub fn closure_not_covered(
    sdg: &Sdg,
    slice: &SpecSlice,
    criterion_vertices: &[VertexId],
) -> BTreeSet<VertexId> {
    let closure = backward_closure_slice(sdg, criterion_vertices);
    let elems = slice.elems();
    closure.difference(&elems).copied().collect()
}
