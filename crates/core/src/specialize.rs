//! Whole-program specialization: one merged output for many criteria
//! (Alg. 1 step 5 / §5, lifted from one criterion to a criterion *set*).
//!
//! The paper's end product is not a slice but a *specialized program*.
//! [`Slicer::specialize_program`] finishes the pipeline for a whole
//! criterion set at once:
//!
//! 1. every criterion is sliced through the session's batch path (fanned
//!    over the worker pool; per-criterion results are byte-identical to
//!    solo [`Slicer::slice`] calls at every thread count);
//! 2. variants are unioned across criteria and deduplicated *by interning*:
//!    two variants merge exactly when their interned content
//!    ([`VariantId`]) agrees and their call sites resolve (recursively) to
//!    merging callees — a partition refinement over the slices' MRD-chosen
//!    call targets, so the merged program keeps each procedure as the
//!    minimal set of variants all criteria demand together;
//! 3. the merged variant set is emitted as one executable program — each
//!    deduplicated variant pretty-printed once — with provenance maps
//!    (criterion → merged functions, merged function → origin procedure and
//!    demanding criteria). When the criteria disagree about `main`, the
//!    per-criterion `main` variants become `main__k` functions and a
//!    synthesized `main` drives them in criterion order.

use crate::readout::SpecSlice;
use crate::regen::{self, EmitFn, EmitMain, RegenOutput};
use crate::slicer::{memo_key, MemoKey, Slicer};
use crate::store::VariantId;
use crate::{Criterion, SpecError};
use specslice_fsa::FxHashMap;
use specslice_pds::Direction;
use specslice_sdg::ProcId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One function of a [`SpecializedProgram`]: a deduplicated variant shared
/// by every criterion that demands it.
#[derive(Clone, Debug)]
pub struct MergedFunction {
    /// The emitted function's name in the merged program.
    pub name: String,
    /// The interned content id (in the session's
    /// [`crate::VariantStore`]) of the variant this function realizes.
    pub variant: VariantId,
    /// The original procedure it specializes.
    pub proc: ProcId,
    /// The original procedure's name.
    pub origin: String,
    /// Indices (into the input criterion list) of the criteria whose slices
    /// demand this variant, ascending.
    pub demanded_by: Vec<usize>,
}

/// The merged, executable output of [`Slicer::specialize_program`].
#[derive(Clone, Debug)]
pub struct SpecializedProgram {
    /// The merged program: normalized, semantically checked, runnable.
    pub regen: RegenOutput,
    /// The merged functions (the deduplicated variant set), in emission
    /// order. The synthesized driver `main` (when present) is *not* listed
    /// here — it realizes no variant.
    pub functions: Vec<MergedFunction>,
    /// Criterion index → indices into [`SpecializedProgram::functions`] of
    /// the merged functions realizing that criterion's slice, ascending.
    pub per_criterion: Vec<Vec<usize>>,
    /// The per-criterion slices the merge was built from, in input order —
    /// each byte-identical to a solo [`Slicer::slice`] call, so projections
    /// can be regenerated and checked independently.
    pub criterion_slices: Vec<SpecSlice>,
    /// Total variants across the per-criterion slices (before dedup).
    pub total_criterion_variants: usize,
    /// Variants saved by cross-criterion dedup:
    /// `total_criterion_variants − functions.len()`.
    pub reused_variants: usize,
    /// `true` when the criteria demanded different `main` variants and a
    /// driver `main` was synthesized.
    pub driver_main: bool,
}

impl SpecializedProgram {
    /// The merged program's source text.
    pub fn source(&self) -> &str {
        &self.regen.source
    }

    /// Number of merged (deduplicated) variants emitted.
    pub fn merged_variant_count(&self) -> usize {
        self.functions.len()
    }

    /// Runs the merged program on `input` through the process-default
    /// execution backend (`SPECSLICE_EXEC_BACKEND`, interpreter fallback)
    /// with the default budgets — the one-call way to validate that a
    /// specialization agrees with its original on the criterion.
    ///
    /// For custom budgets or an explicit backend, build a
    /// [`crate::exec::ExecRequest`] over [`Self::source`]'s program
    /// (`self.regen.program`) directly.
    ///
    /// # Errors
    ///
    /// See [`crate::exec::ExecBackend::exec`].
    pub fn run(&self, input: &[i64]) -> Result<crate::exec::ExecOutcome, crate::exec::ExecError> {
        crate::exec::run(&crate::exec::ExecRequest::new(&self.regen.program).with_input(input))
    }
}

impl Slicer {
    /// Specializes this session's program with respect to a whole criterion
    /// set, producing one merged executable program in which each procedure
    /// appears as exactly the set of variants the criteria demand together
    /// (deduplicated across criteria by content interning).
    ///
    /// Per-criterion slices are answered through the session's batch path
    /// (memo, worker pool, input-order adoption), so each one — and the
    /// merged output — is byte-identical at every
    /// [`crate::SlicerConfig::num_threads`] setting.
    ///
    /// ```
    /// use specslice::{Criterion, Slicer};
    ///
    /// let slicer = Slicer::from_source(
    ///     r#"
    ///     int g1, g2;
    ///     void p(int a, int b) { g1 = a; g2 = b; }
    ///     int main() { p(1, 2); printf("%d", g1); printf("%d", g2); }
    ///     "#,
    /// )?;
    /// // One criterion per printf: each demands its own projection of p.
    /// let criteria: Vec<Criterion> = slicer
    ///     .sdg()
    ///     .printf_call_sites()
    ///     .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
    ///     .collect();
    /// let spec = slicer.specialize_program(&criteria)?;
    /// assert!(spec.merged_variant_count() <= spec.total_criterion_variants);
    /// assert!(spec.source().contains("int main"));
    /// # Ok::<(), specslice::SpecError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpecError::BadCriterion`] when the criterion list is empty (a
    /// silent empty program would hide the caller's mistake) or contains
    /// duplicate criteria (detected canonically — order and repetition
    /// inside one criterion do not matter; raw-automaton criteria have no
    /// cheap canonical form and are exempt from the duplicate check), and
    /// for any malformed member criterion (annotated with its index).
    /// [`SpecError::Internal`] for sessions built with
    /// [`Slicer::from_sdg`], which carry no program to regenerate.
    pub fn specialize_program(
        &self,
        criteria: &[Criterion],
    ) -> Result<SpecializedProgram, SpecError> {
        self.specialize_program_directed(Direction::Backward, criteria)
    }

    /// [`specialize_program`](Slicer::specialize_program) generic over the
    /// query [`Direction`]: with [`Direction::Forward`] the merge consumes
    /// **forward** slices — each criterion's `post*` projection — instead
    /// of backward specialization slices. The union/dedup machinery is
    /// direction-agnostic (it operates on interned variant content and
    /// MRD-chosen call targets), so forward variants merge across criteria
    /// under exactly the same partition refinement. Forward slices carry a
    /// weaker parameter-completeness guarantee than backward ones (see
    /// [`crate::QueryKind::Forward`]); the merged program is still emitted
    /// and re-checked semantically, and an emission failure surfaces as a
    /// structured error rather than an invalid program.
    pub fn specialize_program_directed(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> Result<SpecializedProgram, SpecError> {
        let program = self.program.as_ref().ok_or_else(|| {
            SpecError::internal(
                "specialize",
                "session was built from an SDG only; use Slicer::from_source / \
                 from_program to enable whole-program specialization",
            )
        })?;
        if criteria.is_empty() {
            return Err(SpecError::bad_criterion(
                "specialize_program requires at least one criterion \
                 (an empty criterion list would silently produce an empty program)",
            ));
        }
        let mut seen: HashMap<MemoKey, usize> = HashMap::new();
        for (i, criterion) in criteria.iter().enumerate() {
            if let Some(key) = memo_key(dir, criterion) {
                if let Some(&j) = seen.get(&key) {
                    return Err(SpecError::bad_criterion(format!(
                        "duplicate criteria: #{i} repeats #{j} \
                         (each criterion contributes once to the merged program)"
                    )));
                }
                seen.insert(key, i);
            }
        }

        let slices = self.directed_batch(dir, criteria)?.slices;

        // ---- Union + dedup-by-interning (partition refinement). ----
        //
        // Nodes are (slice, variant) pairs. The initial partition groups
        // nodes by interned content id; each round refines by the partition
        // classes of the MRD-chosen callees. Classes only ever split, so
        // the loop terminates; the fixpoint merges two variants exactly
        // when their whole call trees agree by content (recursion included
        // — a variant calling itself merges with a content-equal variant
        // calling *its* self).
        let mut node_at: Vec<(usize, usize)> = Vec::new(); // node → (slice, variant)
        let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(slices.len());
        for (s, slice) in slices.iter().enumerate() {
            let base = node_at.len();
            node_of.push((0..slice.variant_count()).map(|v| base + v).collect());
            node_at.extend((0..slice.variant_count()).map(|v| (s, v)));
        }
        let n = node_at.len();
        let cid: Vec<u32> = node_at
            .iter()
            .map(|&(s, v)| slices[s].variant_ids()[v].0)
            .collect();

        // Initial classes: first-encounter numbering of content ids.
        let mut class_of: Vec<u32> = Vec::with_capacity(n);
        {
            let mut first: FxHashMap<u32, u32> = FxHashMap::default();
            let mut next = 0u32;
            for &c in &cid {
                let id = *first.entry(c).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                class_of.push(id);
            }
        }
        loop {
            let mut sig_of: HashMap<(u32, Vec<(u32, u32)>), u32> = HashMap::new();
            let mut next: Vec<u32> = Vec::with_capacity(n);
            for (node, &(s, v)) in node_at.iter().enumerate() {
                let calls: Vec<(u32, u32)> = slices[s]
                    .meta(v)
                    .calls
                    .iter()
                    .map(|(&site, &cv)| (site.0, class_of[node_of[s][cv]]))
                    .collect();
                let fresh = sig_of.len() as u32;
                let id = *sig_of.entry((cid[node], calls)).or_insert(fresh);
                next.push(id);
            }
            let stable = next == class_of;
            class_of = next;
            if stable {
                break;
            }
        }

        // ---- Classes → merged functions, in deterministic order. ----
        let n_classes = class_of.iter().copied().max().map_or(0, |m| m as usize + 1);
        // First-encounter numbering means class k's representative is the
        // first node carrying k.
        let mut rep: Vec<usize> = vec![usize::MAX; n_classes];
        for (node, &c) in class_of.iter().enumerate() {
            if rep[c as usize] == usize::MAX {
                rep[c as usize] = node;
            }
        }
        let class_proc =
            |c: usize| -> ProcId { slices[node_at[rep[c]].0].meta(node_at[rep[c]].1).proc };
        // Emission order: group by original procedure, then by first demand.
        let mut class_order: Vec<usize> = (0..n_classes).collect();
        class_order.sort_by_key(|&c| (class_proc(c).0, rep[c]));
        let mut merged_idx: Vec<usize> = vec![0; n_classes];
        for (m, &c) in class_order.iter().enumerate() {
            merged_idx[c] = m;
        }

        // Demanding criteria per class.
        let mut demanded: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_classes];
        for (node, &c) in class_of.iter().enumerate() {
            demanded[c as usize].insert(node_at[node].0);
        }

        // ---- Naming (same rules as single-slice regeneration). ----
        let addr_taken = regen::address_taken(program);
        let mut per_proc_count: BTreeMap<ProcId, usize> = BTreeMap::new();
        for &c in &class_order {
            *per_proc_count.entry(class_proc(c)).or_insert(0) += 1;
        }
        let main_classes: Vec<usize> = class_order
            .iter()
            .copied()
            .filter(|&c| class_proc(c) == self.sdg.main)
            .collect();
        let driver = main_classes.len() > 1;
        let mut per_proc_seen: BTreeMap<ProcId, usize> = BTreeMap::new();
        let mut functions: Vec<MergedFunction> = Vec::with_capacity(n_classes);
        let mut fns: Vec<EmitFn> = Vec::with_capacity(n_classes);
        for &c in &class_order {
            let proc = class_proc(c);
            let base = &self.sdg.proc(proc).name;
            let k = per_proc_seen.entry(proc).or_insert(0);
            *k += 1;
            let suffix_main = proc == self.sdg.main && driver;
            let name = crate::readout::variant_name(
                base,
                per_proc_count[&proc],
                *k,
                addr_taken.contains(base) || suffix_main,
            );
            let (s, v) = node_at[rep[c]];
            let calls = slices[s]
                .meta(v)
                .calls
                .iter()
                .map(|(&site, &cv)| (site, merged_idx[class_of[node_of[s][cv]] as usize]))
                .collect();
            let id = slices[s].variant_ids()[v];
            functions.push(MergedFunction {
                name: name.clone(),
                variant: id,
                proc,
                origin: base.clone(),
                demanded_by: demanded[c].iter().copied().collect(),
            });
            fns.push(EmitFn {
                name,
                proc,
                row: self.store.row_dense(id),
                calls,
            });
        }

        let main = if main_classes.is_empty() {
            EmitMain::Empty
        } else if driver {
            EmitMain::Driver(main_classes.iter().map(|&c| merged_idx[c]).collect())
        } else {
            EmitMain::Single(merged_idx[main_classes[0]])
        };
        let regen = regen::emit_program(&self.sdg, program, &fns, &main)?;

        let per_criterion: Vec<Vec<usize>> = (0..slices.len())
            .map(|s| {
                let set: BTreeSet<usize> = node_of[s]
                    .iter()
                    .map(|&node| merged_idx[class_of[node] as usize])
                    .collect();
                set.into_iter().collect()
            })
            .collect();

        let total_criterion_variants: usize = slices.iter().map(|s| s.variant_count()).sum();
        Ok(SpecializedProgram {
            regen,
            functions,
            per_criterion,
            criterion_slices: slices,
            total_criterion_variants,
            reused_variants: total_criterion_variants - n_classes,
            driver_main: driver,
        })
    }
}
