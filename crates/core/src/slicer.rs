//! The [`Slicer`] session: one program, many slicing queries — in parallel.
//!
//! Alg. 1's pipeline splits into *program-dependent* stages (frontend → SDG
//! construction → PDS encoding → the reachable-configuration automaton) and
//! *criterion-dependent* stages (query automaton → `Prestar` → MRD →
//! read-out). The paper's entire evaluation slices each test program once
//! per `printf` — a multi-criterion workload — and a naive client pays the
//! program-dependent cost on every call. A `Slicer` runs those stages once
//! at construction (the reachable automaton lazily, on the first criterion
//! that needs it) and reuses them for every subsequent query, batch, feature
//! removal, regeneration, or reslice check.
//!
//! The criterion-dependent stages are *independent* across criteria and
//! touch the session state read-only, so [`Slicer::slice_batch`] fans a
//! batch out over a [`specslice_exec::Pool`] of worker threads (see
//! [`SlicerConfig::num_threads`]). Each worker owns a private
//! `QueryScratch` — the saturation rows/worklists and read-out tables of
//! the whole criterion-dependent pipeline, plus a private [`VariantStore`]
//! shard its read-outs intern into; the shared `Sdg`, PDS encoding (with
//! its prebuilt rule index), and reachable automaton are borrowed immutably
//! by all workers. Results are assembled in input order and *adopted* into
//! the session's variant store in that order, so batch output — including
//! the store's interned ids and dedup counters — is bit-for-bit identical
//! at every thread count.

use crate::criteria::{self, Criterion};
use crate::encode::{self, Encoded, MAIN_CONTROL};
use crate::readout::{self, QueryKind, ReadoutScratch, SpecSlice, VariantMeta};
use crate::regen::{self, RegenOutput};
use crate::reslice::{self, ResliceReport};
use crate::store::{StoreStats, VariantId, VariantStore};
use crate::{feature_removal, PipelineStats, SpecError};
use specslice_exec::{Pool, WorkerStats};
use specslice_fsa::mrd::mrd_with_stats;
use specslice_fsa::{Nfa, StateId};
use specslice_graphs::{DiGraph, NodeId, Sccs};
use specslice_lang::Program;
use specslice_pds::{
    saturate_indexed_with_stats, saturate_multi_indexed_with_stats, CriterionSet, Direction,
    PAutomaton, PState, SaturationScratch,
};
use specslice_sdg::build::build_sdg;
use specslice_sdg::{CallSiteId, CalleeKind, Sdg, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Multi-criterion solving strategy for [`Slicer::slice_batch`] (and
/// everything built on it: [`Slicer::slice_batch_results`],
/// `specialize_program`, `apply_edit` re-slicing).
///
/// Both solvers produce **byte-identical** output — slices, memo contents,
/// store ids and counters — at every thread count; they differ only in how
/// many `Prestar` saturations a batch costs (visible in
/// [`PipelineStats::saturations_run`]) and therefore in wall-clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Solver {
    /// One full `Prestar` + MRD chain per criterion — the reference
    /// pipeline, kept alive as the fallback and as the oracle the
    /// differential tests compare [`Solver::OnePass`] against.
    PerCriterion,
    /// Group criteria by owning procedure and run *one* bitset-labeled
    /// saturation per group (up to 64 criteria each), projecting the
    /// per-criterion `A1`s out of the shared result afterwards — so a
    /// 40-criterion grid batch costs ~1 saturation instead of 40.
    OnePass,
}

impl Solver {
    /// Parses a `SPECSLICE_SOLVER` value.
    pub fn parse(value: &str) -> Option<Solver> {
        match value.trim() {
            "per-criterion" => Some(Solver::PerCriterion),
            "one-pass" => Some(Solver::OnePass),
            _ => None,
        }
    }
}

/// The default batch solver: the `SPECSLICE_SOLVER` environment variable
/// (`per-criterion` | `one-pass`) when set to a valid value, otherwise
/// [`Solver::OnePass`].
///
/// The variable exists for test sweeps and CI (mirroring
/// `SPECSLICE_NUM_THREADS`): both settings produce byte-identical output,
/// so a matrix leg can run the whole suite under either solver without
/// touching code. A present-but-invalid value is logged to stderr (once
/// per process) and ignored.
pub fn default_solver() -> Solver {
    match std::env::var("SPECSLICE_SOLVER") {
        Ok(v) => Solver::parse(&v).unwrap_or_else(|| {
            static LOGGED: std::sync::Once = std::sync::Once::new();
            LOGGED.call_once(|| {
                eprintln!(
                    "specslice: invalid SPECSLICE_SOLVER={v:?} \
                     (expected \"per-criterion\" or \"one-pass\"); using one-pass"
                );
            });
            Solver::OnePass
        }),
        Err(_) => Solver::OnePass,
    }
}

/// Options for a [`Slicer`] session.
///
/// Options live here — not in per-call `_with_stats` / `_unchecked`
/// function variants — so the call surface stays stable as knobs accrete.
#[derive(Clone, Copy, Debug)]
pub struct SlicerConfig {
    /// Validate every read-out slice against the paper's Cor. 3.19
    /// no-parameter-mismatch property (cheap; on by default). Turning it off
    /// skips the post-hoc audit, not any part of the algorithm itself.
    pub validate: bool,
    /// Retain per-criterion [`PipelineStats`] in
    /// [`BatchResult::per_criterion`]. Off keeps batch results lean on large
    /// workloads; the (cheap, counter-read) aggregate is always computed,
    /// and [`Slicer::slice_with_stats`] always returns stats.
    pub collect_stats: bool,
    /// Worker threads used by [`Slicer::slice_batch`] (and
    /// [`Slicer::slice_batch_results`]). Defaults to the machine's available
    /// parallelism, overridable for sweeps via the `SPECSLICE_NUM_THREADS`
    /// environment variable (see [`specslice_exec::default_threads`]);
    /// `1` answers the batch sequentially on the calling
    /// thread, exactly as single-criterion [`Slicer::slice`] calls would
    /// (`0` is clamped to `1` at session construction, so a session's
    /// effective width is always at least one worker). Results are
    /// bit-for-bit identical at every setting — the knob only trades
    /// wall-clock for cores.
    pub num_threads: usize,
    /// Memoize criterion → slice results (on by default). Repeated criteria
    /// — within one batch, across batches, or across
    /// [`Slicer::apply_edit`]s — are answered from the cache without
    /// re-running `Prestar` *or* the read-out: the memo keeps the canonical
    /// MRD automaton plus the slice's interned [`VariantId`] rows, so a hit
    /// only clones ids and metadata. After an edit, entries whose slice
    /// region the edit cannot have touched are kept (identifier-remapped
    /// and re-interned into the fresh store), so an edit-reslice loop only
    /// recomputes the criteria the edit affected.
    pub memoize: bool,
    /// Multi-criterion solving strategy (see [`Solver`]). Defaults to
    /// [`Solver::OnePass`], overridable for sweeps via the
    /// `SPECSLICE_SOLVER` environment variable (see [`default_solver`]).
    /// Output is byte-identical under both settings — the knob only trades
    /// saturations (and wall-clock) for the reference pipeline.
    pub solver: Solver,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            validate: true,
            collect_stats: true,
            num_threads: specslice_exec::default_threads(),
            memoize: true,
            solver: default_solver(),
        }
    }
}

/// The result of [`Slicer::slice_batch`]: per-criterion slices (in input
/// order) plus stats.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One specialization slice per input criterion, in order.
    pub slices: Vec<SpecSlice>,
    /// Per-criterion pipeline stats (empty when stats collection is off).
    pub per_criterion: Vec<PipelineStats>,
    /// Aggregate over `per_criterion` ([`PipelineStats::absorb`] semantics:
    /// sums of per-query sizes, shared-encoding sizes kept once).
    pub aggregate: PipelineStats,
    /// Per-worker-thread execution accounting for this batch: how many
    /// criteria each worker answered, how many it stole, and how long it
    /// was busy. One entry per worker that ran (a sequential batch has one).
    pub per_thread: Vec<WorkerStats>,
}

/// A slicing session over one program: cached SDG, cached PDS encoding,
/// lazily cached reachable-configuration automaton, and the shared
/// [`VariantStore`] every slice's content is interned into.
///
/// Construction runs everything that depends only on the program; every
/// query method ([`slice`](Slicer::slice), [`slice_batch`](Slicer::slice_batch),
/// [`remove_feature`](Slicer::remove_feature), …) reuses those caches. The
/// session is cheap to keep alive and immutable — build one per program and
/// share it across as many criteria as needed. It is also [`Sync`]: batch
/// queries fan out across worker threads that borrow it concurrently, and
/// clients may do the same with `&Slicer` or `Arc<Slicer>`.
#[derive(Debug)]
pub struct Slicer {
    pub(crate) program: Option<Program>,
    pub(crate) sdg: Sdg,
    pub(crate) enc: Encoded,
    pub(crate) config: SlicerConfig,
    /// The session variant store: every slice this session returns interns
    /// its variant content here (batch workers intern into private shards
    /// first; results are re-interned in input order).
    pub(crate) store: Arc<VariantStore>,
    /// `post*({⟨entry_main, ε⟩})` as an NFA — needed by all-contexts
    /// criteria and feature removal; built on first use, then shared. The
    /// cell caches the build *outcome* (a [`SpecError::Pds`] build failure
    /// is cached too, so every caller sees the same structured error
    /// instead of one caller panicking on behalf of the rest).
    pub(crate) reachable: OnceLock<Result<Nfa, SpecError>>,
    pub(crate) reachable_builds: AtomicUsize,
    /// Call-graph region (SCC of the call graph's condensation) per
    /// procedure — the one-pass planner's grouping key. Built lazily on
    /// the first batch and shared by every batch after it; invalidated
    /// together with the SDG on incremental edits.
    pub(crate) regions: OnceLock<Vec<u32>>,
    queries_run: AtomicUsize,
    /// Criterion → cached-slice memo (see [`SlicerConfig::memoize`]).
    /// Shared read-mostly across batch workers; [`Slicer::apply_edit`]
    /// rewrites it wholesale under `&mut self`.
    pub(crate) memo: RwLock<HashMap<MemoKey, MemoEntry>>,
    memo_hits: AtomicUsize,
    /// Warm [`QueryScratch`]es recycled across calls: sequential batches
    /// (and single-criterion queries) check one out and return it, so a
    /// session answering many small batches — the server's steady state —
    /// pays the table-growth warm-up once, not per call.
    scratch_pool: Mutex<Vec<QueryScratch>>,
}

/// Canonical, order-independent memo key for a query: the direction it ran
/// in plus the criterion's canonical selector. A forward and a backward
/// query over the same criterion are distinct cache entries (their `A6`
/// languages differ), so the direction is part of the key — and of every
/// serialized form of it (session export, server snapshots). Criteria over
/// raw automata are not memoized (their languages have no cheap canonical
/// key). Ordered by `(direction, selector)` — `Direction` sorts backward
/// first — so sorted exports list a session's backward entries before its
/// forward ones.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct MemoKey {
    /// The query direction this entry answers.
    pub(crate) dir: Direction,
    /// The criterion's canonical, order-independent selector.
    pub(crate) select: KeySelect,
}

/// The criterion component of a [`MemoKey`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum KeySelect {
    /// Sorted, deduplicated vertex ids of an all-contexts criterion.
    AllContexts(Vec<u32>),
    /// Sorted, deduplicated `(vertex, stack)` configurations.
    Configurations(Vec<(u32, Vec<u32>)>),
}

/// A slice as the memo retains it: the interned content ids plus the
/// positional metadata — everything [`SpecSlice`] owns except the store
/// handle and the automaton. A memo hit clones this and is done; no
/// read-out runs.
#[derive(Clone, Debug)]
pub(crate) struct CachedSlice {
    pub(crate) ids: Vec<VariantId>,
    pub(crate) metas: Vec<VariantMeta>,
    pub(crate) main_variant: Option<usize>,
}

impl CachedSlice {
    pub(crate) fn of(slice: &SpecSlice) -> CachedSlice {
        CachedSlice {
            ids: slice.variant_ids().to_vec(),
            metas: slice.metas().to_vec(),
            main_variant: slice.main_variant,
        }
    }
}

/// What the memo retains per criterion: the canonical MRD automaton, the
/// cached slice (session-store [`VariantId`] rows), and the pipeline sizes
/// observed when the entry was first computed.
#[derive(Clone, Debug)]
pub(crate) struct MemoEntry {
    pub(crate) a6: Nfa,
    pub(crate) cached: CachedSlice,
    pub(crate) stats: PipelineStats,
}

pub(crate) fn memo_key(dir: Direction, criterion: &Criterion) -> Option<MemoKey> {
    let select = match criterion {
        Criterion::AllContexts(verts) => {
            let mut v: Vec<u32> = verts.iter().map(|v| v.0).collect();
            v.sort_unstable();
            v.dedup();
            KeySelect::AllContexts(v)
        }
        Criterion::Configurations(configs) => {
            let mut v: Vec<(u32, Vec<u32>)> = configs
                .iter()
                .map(|(v, stack)| (v.0, stack.iter().map(|c| c.0).collect()))
                .collect();
            v.sort_unstable();
            v.dedup();
            KeySelect::Configurations(v)
        }
        Criterion::Automaton(_) => return None,
    };
    Some(MemoKey { dir, select })
}

impl MemoKey {
    /// Rewrites the key through an edit's identifier maps; `None` when any
    /// referenced vertex or call site did not survive the edit. The
    /// direction tag carries over unchanged — edits rename identifiers,
    /// they never turn a forward entry into a backward one.
    pub(crate) fn remap(
        &self,
        vertex: impl Fn(VertexId) -> Option<VertexId>,
        call_site: impl Fn(CallSiteId) -> Option<CallSiteId>,
    ) -> Option<MemoKey> {
        let select = match &self.select {
            KeySelect::AllContexts(vs) => {
                let mut out = Vec::with_capacity(vs.len());
                for &v in vs {
                    out.push(vertex(VertexId(v))?.0);
                }
                out.sort_unstable();
                out.dedup();
                KeySelect::AllContexts(out)
            }
            KeySelect::Configurations(cs) => {
                let mut out = Vec::with_capacity(cs.len());
                for (v, stack) in cs {
                    let nv = vertex(VertexId(*v))?.0;
                    let mut ns = Vec::with_capacity(stack.len());
                    for &c in stack {
                        ns.push(call_site(CallSiteId(c))?.0);
                    }
                    out.push((nv, ns));
                }
                out.sort_unstable();
                out.dedup();
                KeySelect::Configurations(out)
            }
        };
        Some(MemoKey {
            dir: self.dir,
            select,
        })
    }
}

/// One criterion's raw outcome, before the session adopts it: the slice
/// (possibly still shard-interned), its stats, and what the memo should do
/// with it.
pub(crate) struct Answer {
    slice: SpecSlice,
    stats: PipelineStats,
    key: Option<MemoKey>,
    from_memo: bool,
}

/// One outcome per batch criterion, in input order.
type RawBatch = Vec<Result<Answer, SpecError>>;

/// The per-worker working memory of the criterion-dependent pipeline:
/// saturation rows/worklists, read-out tables, and a private
/// [`VariantStore`] shard the worker's read-outs intern into. One
/// `QueryScratch` is allocated per worker thread (or per sequential loop)
/// and reset — not reallocated — between criteria, so the hot loop runs
/// against warm buffers and never contends on the global allocator (or the
/// session store's lock) for its working set.
#[derive(Debug)]
pub(crate) struct QueryScratch {
    /// `Prestar` saturation buffers (dense rows, worklist, pending table).
    pub(crate) sat: SaturationScratch,
    /// Read-out stage tables.
    pub(crate) readout: ReadoutScratch,
    /// The worker's private intern shard. Slices produced against it are
    /// re-interned into the session store when the batch is adopted, in
    /// input order — which is what makes session ids thread-count-
    /// independent.
    pub(crate) shard: Arc<VariantStore>,
}

impl QueryScratch {
    /// Retained capacity estimate of one pooled scratch (saturation
    /// buffers + read-out tables; the intern shard is counted by the
    /// session store it re-interns into).
    pub(crate) fn approx_bytes(&self) -> usize {
        self.sat.approx_bytes() + self.readout.approx_bytes()
    }
}

/// Warm scratch-pool accounting (see [`Slicer::scratch_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScratchStats {
    /// Scratches currently parked in the pool.
    pub pooled: usize,
    /// Bytes the pooled scratches retain between queries.
    pub approx_bytes: usize,
    /// Peak live bump-arena bytes across the pooled scratches.
    pub arena_high_water: usize,
}

impl Default for QueryScratch {
    fn default() -> Self {
        QueryScratch {
            sat: SaturationScratch::default(),
            readout: ReadoutScratch::default(),
            shard: Arc::new(VariantStore::new()),
        }
    }
}

/// The session is shared immutably across batch worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Slicer>();
};

impl Slicer {
    /// Builds a session from MiniC source: frontend → SDG → PDS encoding,
    /// all cached. Keeps the checked [`Program`] so
    /// [`regenerate`](Slicer::regenerate) works.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] / [`SpecError::Sema`] from the frontend,
    /// [`SpecError::SdgBuild`] from SDG construction.
    pub fn from_source(src: &str) -> Result<Slicer, SpecError> {
        Slicer::from_source_with(src, SlicerConfig::default())
    }

    /// [`from_source`](Slicer::from_source) with explicit options.
    pub fn from_source_with(src: &str, config: SlicerConfig) -> Result<Slicer, SpecError> {
        let program = specslice_lang::frontend(src)?;
        Slicer::from_program_with(program, config)
    }

    /// Builds a session from an already-frontended program (normalized and
    /// checked — e.g. the output of [`crate::indirect::lower_indirect_calls`]).
    pub fn from_program(program: Program) -> Result<Slicer, SpecError> {
        Slicer::from_program_with(program, SlicerConfig::default())
    }

    /// [`from_program`](Slicer::from_program) with explicit options.
    pub fn from_program_with(program: Program, config: SlicerConfig) -> Result<Slicer, SpecError> {
        let sdg = build_sdg(&program)?;
        Ok(Slicer::assemble(Some(program), sdg, config))
    }

    /// Builds a session from a pre-built SDG. Source regeneration is
    /// unavailable ([`regenerate`](Slicer::regenerate) reports
    /// [`SpecError::Internal`]); everything else works.
    pub fn from_sdg(sdg: Sdg) -> Result<Slicer, SpecError> {
        Slicer::from_sdg_with(sdg, SlicerConfig::default())
    }

    /// [`from_sdg`](Slicer::from_sdg) with explicit options.
    pub fn from_sdg_with(sdg: Sdg, config: SlicerConfig) -> Result<Slicer, SpecError> {
        Ok(Slicer::assemble(None, sdg, config))
    }

    fn assemble(program: Option<Program>, sdg: Sdg, mut config: SlicerConfig) -> Slicer {
        // A zero-width session is meaningless; clamp rather than letting the
        // width reach the execution layer (whose own clamp is an
        // implementation detail this API must not depend on).
        config.num_threads = config.num_threads.max(1);
        let enc = encode::encode_sdg(&sdg);
        Slicer {
            program,
            sdg,
            enc,
            config,
            store: Arc::new(VariantStore::new()),
            reachable: OnceLock::new(),
            reachable_builds: AtomicUsize::new(0),
            regions: OnceLock::new(),
            queries_run: AtomicUsize::new(0),
            memo: RwLock::new(HashMap::new()),
            memo_hits: AtomicUsize::new(0),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// The session's SDG.
    pub fn sdg(&self) -> &Sdg {
        &self.sdg
    }

    /// The checked program, when the session was built from source or AST.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// The cached SDG→PDS encoding. The same instance is used by every
    /// query of this session — it is built exactly once, at construction.
    pub fn encoding(&self) -> &Encoded {
        &self.enc
    }

    /// The session options.
    pub fn config(&self) -> &SlicerConfig {
        &self.config
    }

    /// The session's variant store. Every slice this session returns
    /// interns its variant content here; [`Slicer::apply_edit`] replaces it
    /// (old slices keep their own handle to the superseded store).
    pub fn variant_store(&self) -> &Arc<VariantStore> {
        &self.store
    }

    /// Deterministic counters of the session store (interned variants,
    /// intern calls, cross-criterion dedup hits, flat-row bytes).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// How many times the reachable-configuration automaton was built
    /// (0 until a criterion needs it, then 1 forever — it is cached, and
    /// the cache is race-free even when a parallel batch forces it).
    pub fn reachable_builds(&self) -> usize {
        self.reachable_builds.load(Ordering::Relaxed)
    }

    /// Total queries answered by this session (slices, batch members, and
    /// feature removals).
    pub fn queries_run(&self) -> usize {
        self.queries_run.load(Ordering::Relaxed)
    }

    /// Checks a warm scratch out of the session pool (or makes a fresh
    /// one). Pair with [`Slicer::put_scratch`]; an early-error path that
    /// drops the scratch instead merely forfeits the warm buffers.
    fn take_scratch(&self) -> QueryScratch {
        self.scratch_pool
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    /// Returns a scratch to the session pool. The pool is bounded by the
    /// configured worker count — enough for every concurrent caller of the
    /// sequential paths a session realistically sees.
    fn put_scratch(&self, scratch: QueryScratch) {
        if let Ok(mut pool) = self.scratch_pool.lock() {
            if pool.len() < self.config.num_threads.max(1) {
                pool.push(scratch);
            }
        }
    }

    /// Accounting over the warm scratch pool: how many scratches are
    /// parked, the bytes their buffers retain between queries, and the
    /// bump arenas' high-water marks. The retained bytes are part of
    /// [`Slicer::approx_bytes`] — a warm session's pool is real residency
    /// the server's eviction budget must see.
    pub fn scratch_stats(&self) -> ScratchStats {
        let mut stats = ScratchStats::default();
        if let Ok(pool) = self.scratch_pool.lock() {
            stats.pooled = pool.len();
            for scratch in pool.iter() {
                stats.approx_bytes += scratch.approx_bytes();
                stats.arena_high_water += scratch.sat.arena_high_water_bytes();
            }
        }
        stats
    }

    /// Queries answered from the criterion → slice memo without re-running
    /// `Prestar` or the read-out (see [`SlicerConfig::memoize`]).
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Criteria currently memoized.
    pub fn memo_len(&self) -> usize {
        self.memo.read().map(|m| m.len()).unwrap_or(0)
    }

    /// The cached `post*({⟨entry_main, ε⟩})` automaton.
    fn reachable(&self) -> Result<&Nfa, SpecError> {
        self.reachable
            .get_or_init(|| {
                self.reachable_builds.fetch_add(1, Ordering::Relaxed);
                criteria::reachable_configurations(&self.sdg, &self.enc)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    fn query(&self, criterion: &Criterion) -> Result<PAutomaton, SpecError> {
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        let reachable = match criterion {
            // Only all-contexts criteria consult the reachable automaton;
            // don't force the cache for the others.
            Criterion::AllContexts(_) => Some(self.reachable()?),
            _ => None,
        };
        criteria::query_automaton_reusing(&self.sdg, &self.enc, reachable, criterion)
    }

    /// Answers a memoized criterion: clones the cached ids/automaton and
    /// bumps the query/hit counters exactly as a computed answer would.
    /// `start` is when the caller began handling this criterion (the hit's
    /// `query_time`).
    fn answer_from_memo(&self, key: &MemoKey, start: Instant) -> Option<Answer> {
        let cached = self.memo.read().ok().and_then(|memo| {
            memo.get(key)
                .map(|e| (e.a6.clone(), e.cached.clone(), e.stats))
        });
        let (a6, cached, mut stats) = cached?;
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
        let slice = SpecSlice::from_parts(
            self.store.clone(),
            cached.ids,
            cached.metas,
            cached.main_variant,
            a6,
            key.dir.into(),
        );
        stats.query_time = start.elapsed();
        // A replayed answer ran no saturation of its own; the recorded
        // sizes describe the cached pipeline, but the run counters must
        // reflect *this* query's work.
        stats.saturations_run = 0;
        stats.criteria_per_saturation = 0;
        set_memo_counters(&mut stats, key.dir, true);
        Some(Answer {
            slice,
            stats,
            key: Some(key.clone()),
            from_memo: true,
        })
    }

    /// The full criterion-dependent pipeline for one criterion, against
    /// caller-owned query scratch (one per batch worker). Read-out interns
    /// into `store` — the session store on direct paths, the worker's
    /// private shard inside parallel batches.
    fn answer_in(
        &self,
        dir: Direction,
        criterion: &Criterion,
        scratch: &mut QueryScratch,
        store: &Arc<VariantStore>,
    ) -> Result<Answer, SpecError> {
        let start = Instant::now();
        let key = if self.config.memoize {
            memo_key(dir, criterion)
        } else {
            None
        };
        // Memo hit: the canonical MRD automaton *and* the read-out result
        // (interned rows + metadata) are cached — the whole criterion
        // pipeline is skipped and the hit just clones ids.
        if let Some(k) = &key {
            if let Some(answer) = self.answer_from_memo(k, start) {
                return Ok(answer);
            }
        }
        let query = self.query(criterion)?;
        let (slice, mut stats) = run_query_in(
            dir,
            &self.sdg,
            &self.enc,
            &query,
            self.config.validate,
            scratch,
            store,
        )?;
        stats.query_time = start.elapsed();
        if key.is_some() {
            set_memo_counters(&mut stats, dir, false);
        }
        Ok(Answer {
            slice,
            stats,
            key,
            from_memo: false,
        })
    }

    /// Adopts one answer into the session: re-interns shard-produced slices
    /// into the session store and installs the memo entry. Called in input
    /// order for batches, which pins session-store ids (and counters) to
    /// the input sequence regardless of thread count.
    ///
    /// A freshly computed answer whose key is *already* memoized — a
    /// duplicate criterion inside one parallel batch, where workers cannot
    /// see each other's in-flight results — is answered from the memo
    /// instead of being re-interned, exactly as the sequential loop (which
    /// installs entries as it goes) would have answered it. Without this,
    /// the store's intern/dedup counters would depend on the thread count.
    fn adopt(&self, answer: Answer) -> (SpecSlice, PipelineStats) {
        if let (Some(k), false) = (&answer.key, answer.from_memo) {
            let cached = self.memo.read().ok().and_then(|memo| {
                memo.get(k)
                    .map(|e| (e.a6.clone(), e.cached.clone(), e.stats))
            });
            if let Some((a6, cached, mut stats)) = cached {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                let slice = SpecSlice::from_parts(
                    self.store.clone(),
                    cached.ids,
                    cached.metas,
                    cached.main_variant,
                    a6,
                    k.dir.into(),
                );
                stats.query_time = answer.stats.query_time;
                // Adopting over an existing entry (a duplicate-key batch
                // member) replays the cached answer: no saturation of its
                // own to count.
                stats.saturations_run = 0;
                stats.criteria_per_saturation = 0;
                set_memo_counters(&mut stats, k.dir, true);
                return (slice, stats);
            }
        }
        let slice = answer.slice.reintern_into(&self.store);
        if let (Some(k), false) = (answer.key, answer.from_memo) {
            if let Ok(mut memo) = self.memo.write() {
                memo.entry(k).or_insert_with(|| MemoEntry {
                    a6: slice.a6.clone(),
                    cached: CachedSlice::of(&slice),
                    stats: answer.stats,
                });
            }
        }
        (slice, answer.stats)
    }

    /// Computes the specialization slice for `criterion` (Alg. 1), reusing
    /// the session's cached encoding.
    ///
    /// # Errors
    ///
    /// [`SpecError::BadCriterion`] for malformed criteria;
    /// [`SpecError::Internal`] on invariant violations (a bug).
    pub fn slice(&self, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
        self.slice_with_stats(criterion).map(|(s, _)| s)
    }

    /// [`slice`](Slicer::slice) plus the automaton statistics the paper's
    /// evaluation reports (always collected, regardless of
    /// [`SlicerConfig::collect_stats`]).
    pub fn slice_with_stats(
        &self,
        criterion: &Criterion,
    ) -> Result<(SpecSlice, PipelineStats), SpecError> {
        self.directed_slice_with_stats(Direction::Backward, criterion)
    }

    /// Computes the **forward** slice for `criterion`: every configuration
    /// reachable *from* the criterion along dependence edges, computed as
    /// `post*(A_C)` over the same Fig. 8 encoding (and the same cached
    /// session state — the PDS encoding is never rebuilt for a direction
    /// switch). The result is read out into the same variant/partition
    /// shape as a backward slice; see [`QueryKind::Forward`] for the
    /// (weaker) parameter-completeness guarantee forward slices carry.
    pub fn forward_slice(&self, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
        self.forward_slice_with_stats(criterion).map(|(s, _)| s)
    }

    /// [`forward_slice`](Slicer::forward_slice) plus pipeline statistics.
    pub fn forward_slice_with_stats(
        &self,
        criterion: &Criterion,
    ) -> Result<(SpecSlice, PipelineStats), SpecError> {
        self.directed_slice_with_stats(Direction::Forward, criterion)
    }

    /// The direction-generic single-criterion path behind
    /// [`slice_with_stats`](Slicer::slice_with_stats) and
    /// [`forward_slice_with_stats`](Slicer::forward_slice_with_stats).
    fn directed_slice_with_stats(
        &self,
        dir: Direction,
        criterion: &Criterion,
    ) -> Result<(SpecSlice, PipelineStats), SpecError> {
        let mut scratch = self.take_scratch();
        let answer = self.answer_in(dir, criterion, &mut scratch, &self.store)?;
        self.put_scratch(scratch);
        Ok(self.adopt(answer))
    }

    /// The call-graph region of every procedure: its component in the SCC
    /// condensation of the call graph (computed via `specslice_graphs`,
    /// indirect calls contributing their dispatcher's out-edges like any
    /// other call site). Procedures in one region — a mutual-recursion
    /// cluster — pull in near-identical saturation state, so the one-pass
    /// planner groups criteria by region sets rather than exact procedure
    /// sets: a skewed batch hammering one recursive ring shares saturations
    /// across the whole ring instead of fragmenting per procedure.
    fn proc_regions(&self) -> &[u32] {
        self.regions.get_or_init(|| {
            let mut g = DiGraph::with_nodes(self.sdg.procs.len());
            for site in &self.sdg.call_sites {
                if let CalleeKind::User(p) = site.callee {
                    g.add_edge_unique(NodeId(site.caller.0), NodeId(p.0));
                }
            }
            let sccs = Sccs::compute(&g);
            (0..self.sdg.procs.len())
                .map(|i| sccs.component_of(NodeId(i as u32)) as u32)
                .collect()
        })
    }

    /// Answers every criterion across the session's worker pool, returning
    /// raw per-criterion results in input order plus per-worker accounting.
    fn batch_raw(&self, dir: Direction, criteria: &[Criterion]) -> (RawBatch, Vec<WorkerStats>) {
        match self.config.solver {
            Solver::PerCriterion => self.batch_raw_per_criterion(dir, criteria),
            Solver::OnePass => self.batch_raw_onepass(dir, criteria),
        }
    }

    /// Forces the shared reachable automaton before fanning a batch out, so
    /// the workers start against a warm cache instead of serializing on its
    /// initialization lock. (A build *failure* is cached and surfaces
    /// per-criterion, so it is deliberately ignored here.)
    fn warm_reachable_for(&self, criteria: &[Criterion]) {
        if self.reachable.get().is_none()
            && criteria
                .iter()
                .any(|c| matches!(c, Criterion::AllContexts(_)))
        {
            let _ = self.reachable();
        }
    }

    /// [`batch_raw`](Slicer::batch_raw) under [`Solver::PerCriterion`]:
    /// each criterion is an independent pool item.
    fn batch_raw_per_criterion(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> (RawBatch, Vec<WorkerStats>) {
        let pool = Pool::new(self.config.num_threads);
        if pool.threads() > 1 {
            self.warm_reachable_for(criteria);
        }
        pool.map_init_stats(criteria, QueryScratch::default, |scratch, _, criterion| {
            let shard = scratch.shard.clone();
            self.answer_in(dir, criterion, scratch, &shard)
        })
    }

    /// [`batch_raw`](Slicer::batch_raw) under [`Solver::OnePass`]: the pool
    /// items are criterion *groups* (weighted by member count, so
    /// per-worker accounting still counts criteria), and each group runs
    /// one shared saturation via [`Slicer::answer_group`].
    fn batch_raw_onepass(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> (RawBatch, Vec<WorkerStats>) {
        let groups = plan_groups(&self.sdg, self.proc_regions(), criteria);
        let pool = Pool::new(self.config.num_threads);
        if pool.threads() > 1 {
            self.warm_reachable_for(criteria);
        }
        let (chunks, per_thread) = pool.map_init_stats_weighted(
            &groups,
            QueryScratch::default,
            Vec::len,
            |scratch, _, group| {
                let shard = scratch.shard.clone();
                self.answer_group(dir, criteria, group, scratch, &shard)
            },
        );
        // Scatter the group results back to input order.
        let mut slots: Vec<Option<Result<Answer, SpecError>>> =
            criteria.iter().map(|_| None).collect();
        for chunk in chunks {
            for (i, result) in chunk {
                debug_assert!(slots[i].is_none(), "criterion {i} answered twice");
                slots[i] = Some(result);
            }
        }
        let results = slots
            .into_iter()
            .map(|slot| slot.expect("every criterion belongs to exactly one group"))
            .collect();
        (results, per_thread)
    }

    /// Answers one criterion group: memo hits peel off individually, the
    /// remaining members share a single multi-criterion saturation whose
    /// result is projected per member. A group that shrinks to one pending
    /// member falls back to the solo pipeline.
    ///
    /// The memo is only *read* here (the batch adopts answers — and
    /// installs entries — afterwards, in input order), so group results are
    /// independent of worker scheduling.
    fn answer_group(
        &self,
        dir: Direction,
        criteria: &[Criterion],
        members: &[usize],
        scratch: &mut QueryScratch,
        store: &Arc<VariantStore>,
    ) -> Vec<(usize, Result<Answer, SpecError>)> {
        let mut out = Vec::with_capacity(members.len());
        let mut pending: Vec<(usize, Option<MemoKey>, Instant, PAutomaton)> = Vec::new();
        for &i in members {
            let criterion = &criteria[i];
            let start = Instant::now();
            let key = if self.config.memoize {
                memo_key(dir, criterion)
            } else {
                None
            };
            if let Some(k) = &key {
                if let Some(answer) = self.answer_from_memo(k, start) {
                    out.push((i, Ok(answer)));
                    continue;
                }
            }
            match self.query(criterion) {
                Ok(query) => pending.push((i, key, start, query)),
                Err(e) => out.push((i, Err(e))),
            }
        }
        match pending.len() {
            0 => return out,
            1 => {
                // A lone pending member gains nothing from the union
                // machinery; run the reference pipeline.
                let (i, key, start, query) = pending.pop().expect("len checked");
                let result = run_query_in(
                    dir,
                    &self.sdg,
                    &self.enc,
                    &query,
                    self.config.validate,
                    scratch,
                    store,
                )
                .map(|(slice, mut stats)| {
                    stats.query_time = start.elapsed();
                    if key.is_some() {
                        set_memo_counters(&mut stats, dir, false);
                    }
                    Answer {
                        slice,
                        stats,
                        key,
                        from_memo: false,
                    }
                });
                out.push((i, result));
                return out;
            }
            _ => {}
        }

        let group_width = pending.len();
        let sat_start = Instant::now();
        let queries: Vec<&PAutomaton> = pending.iter().map(|(_, _, _, q)| q).collect();
        let multi = match saturate_multi_indexed_with_stats(
            dir,
            &self.enc.index,
            &queries,
            &mut scratch.sat,
        ) {
            Ok(multi) => multi,
            Err(e) => {
                // A malformed union (engine invariant) fails the whole
                // group; per-member query construction errors were
                // already peeled off above.
                let e = SpecError::pds(dir_stage(dir), e);
                out.extend(pending.into_iter().map(|(i, ..)| (i, Err(e.clone()))));
                return out;
            }
        };
        // Split the union automaton into the member `A1`s in ONE pass over
        // its transitions — one mask lookup each, scattered to every member
        // in the mask — instead of a full masked sweep per member (which is
        // quadratic in the group width). The saturated automaton is
        // consumed in P-state form directly (state `s` → NFA state `s + 1`,
        // MAIN_CONTROL's row duplicated onto the fresh initial 0 — exactly
        // `PAutomaton::to_nfa`'s mapping), so no union NFA is materialized.
        // Forward (`post*`) output carries ε-transitions out of the pop
        // rules' intermediate controls; they are split to members like any
        // labeled transition (the masks key ε too) and consumed by the
        // ε-capable MRD pipeline downstream.
        let n_union_states = multi.automaton.state_count();
        let pmain = multi.automaton.control_state(MAIN_CONTROL);
        let mut member_a1: Vec<Nfa> = (0..group_width)
            .map(|_| {
                let mut a1 = Nfa::new();
                for _ in 0..n_union_states {
                    a1.add_state();
                }
                a1
            })
            .collect();
        for (from, l, to) in multi.automaton.transitions() {
            for slot in multi.mask_label(from, l, to).members() {
                let a1 = &mut member_a1[slot];
                a1.add_transition(StateId(from.0 + 1), l, StateId(to.0 + 1));
                if from == pmain {
                    a1.add_transition(a1.initial(), l, StateId(to.0 + 1));
                }
            }
        }
        for (slot, (i, key, _, _)) in pending.iter().enumerate() {
            let member_start = Instant::now();
            let mut a1_nfa = std::mem::take(&mut member_a1[slot]);
            for &f in &multi.member_finals[slot] {
                a1_nfa.set_final(multi.automaton.nfa_state_of(f));
            }
            if multi.member_finals[slot].contains(&PState(MAIN_CONTROL.0)) {
                a1_nfa.set_final(a1_nfa.initial());
            }
            let (a1_trim, _) = a1_nfa.trimmed();
            let (a6, mrd_stats) = mrd_with_stats(&a1_trim);
            let result = readout::read_out_in(
                &self.sdg,
                &self.enc,
                &a6,
                self.config.validate,
                dir.into(),
                &mut scratch.readout,
                store,
            )
            .map(|slice| {
                // The group's shared saturation is attributed to its first
                // pending member (deterministic at every thread count); the
                // others report zero saturation work.
                let first = slot == 0;
                let mut stats = PipelineStats {
                    pds_rules: self.enc.pds.rule_count(),
                    prestar_transitions: if first { multi.stats.transitions } else { 0 },
                    prestar_peak_bytes: if first { multi.stats.peak_bytes } else { 0 },
                    prestar_rule_applications: if first {
                        multi.stats.rule_applications
                    } else {
                        0
                    },
                    prestar_peak_worklist: if first { multi.stats.peak_worklist } else { 0 },
                    a1_states: a1_trim.state_count(),
                    a1_transitions: a1_trim.transition_count(),
                    mrd: mrd_stats,
                    saturations_run: if first { 1 } else { 0 },
                    criteria_per_saturation: if first { group_width } else { 0 },
                    query_time: if first {
                        sat_start.elapsed()
                    } else {
                        member_start.elapsed()
                    },
                    ..PipelineStats::default()
                };
                if key.is_some() {
                    set_memo_counters(&mut stats, dir, false);
                }
                Answer {
                    slice,
                    stats,
                    key: key.clone(),
                    from_memo: false,
                }
            });
            out.push((*i, result));
        }
        out
    }

    /// Slices every criterion in `criteria`, sharing the per-program work
    /// (encoding, reachable automaton) across the whole batch and fanning
    /// the criteria out over [`SlicerConfig::num_threads`] worker threads.
    ///
    /// Results come back in input order, one [`SpecSlice`] per criterion —
    /// element `i` is identical to what `slice(&criteria[i])` returns, at
    /// every thread count. On failure the *lowest-indexed* failing criterion
    /// is reported (identified by index in the message), so errors are
    /// deterministic too: a sequential batch stops at the first failure,
    /// while a parallel batch answers everything in flight and then reports
    /// the same lowest-indexed error. Use
    /// [`slice_batch_results`](Slicer::slice_batch_results) to keep the
    /// other criteria's answers when a batch may contain bad criteria.
    ///
    /// ```
    /// use specslice::{Criterion, Slicer, SlicerConfig};
    ///
    /// let slicer = Slicer::from_source_with(
    ///     r#"
    ///     int g1, g2;
    ///     void p(int a, int b) { g1 = a; g2 = b; }
    ///     int main() { p(1, 2); printf("%d", g1); printf("%d", g2); }
    ///     "#,
    ///     SlicerConfig {
    ///         num_threads: 2, // default: all available cores
    ///         ..SlicerConfig::default()
    ///     },
    /// )?;
    /// let criteria: Vec<Criterion> = slicer
    ///     .sdg()
    ///     .printf_actual_in_vertices()
    ///     .into_iter()
    ///     .map(Criterion::vertex)
    ///     .collect();
    /// let batch = slicer.slice_batch(&criteria)?;
    /// assert_eq!(batch.slices.len(), criteria.len());
    /// // Batch answers are identical to individual queries.
    /// for (criterion, slice) in criteria.iter().zip(&batch.slices) {
    ///     assert_eq!(slice.elems(), slicer.slice(criterion)?.elems());
    /// }
    /// # Ok::<(), specslice::SpecError>(())
    /// ```
    pub fn slice_batch(&self, criteria: &[Criterion]) -> Result<BatchResult, SpecError> {
        self.directed_batch(Direction::Backward, criteria)
    }

    /// [`slice_batch`](Slicer::slice_batch) in the forward direction: one
    /// [`forward_slice`](Slicer::forward_slice) per criterion, in input
    /// order, with the same solver/threading/memoization behavior (and the
    /// same byte-identical-at-every-width guarantee) as backward batches.
    pub fn forward_slice_batch(&self, criteria: &[Criterion]) -> Result<BatchResult, SpecError> {
        self.directed_batch(Direction::Forward, criteria)
    }

    /// The direction-generic batch path behind
    /// [`slice_batch`](Slicer::slice_batch),
    /// [`forward_slice_batch`](Slicer::forward_slice_batch), and
    /// `specialize_program_directed`.
    pub(crate) fn directed_batch(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> Result<BatchResult, SpecError> {
        if self.config.num_threads.min(criteria.len()) <= 1 {
            // Sequential fast path with genuine fail-fast: nothing after the
            // first failing criterion (per-criterion solver) or failing
            // criterion *group* (one-pass solver) runs. The parallel path
            // must answer everything already in flight, but converges on
            // the same lowest-indexed error, so the two paths are
            // indistinguishable to the caller (modulo counters on error).
            return match self.config.solver {
                Solver::PerCriterion => self.slice_batch_sequential(dir, criteria),
                Solver::OnePass => self.slice_batch_sequential_onepass(dir, criteria),
            };
        }
        let (results, per_thread) = self.batch_raw(dir, criteria);
        let mut slices = Vec::with_capacity(criteria.len());
        let mut per_criterion = Vec::new();
        let mut aggregate = PipelineStats::default();
        for (i, result) in results.into_iter().enumerate() {
            let answer = result.map_err(|e| annotate_with_index(e, i))?;
            let (slice, stats) = self.adopt(answer);
            slices.push(slice);
            aggregate.absorb(&stats);
            if self.config.collect_stats {
                per_criterion.push(stats);
            }
        }
        Ok(BatchResult {
            slices,
            per_criterion,
            aggregate,
            per_thread,
        })
    }

    /// The `num_threads <= 1` body of [`slice_batch`](Slicer::slice_batch):
    /// one scratch, one pass, stop at the first error.
    fn slice_batch_sequential(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> Result<BatchResult, SpecError> {
        let start = Instant::now();
        let mut scratch = self.take_scratch();
        let mut slices = Vec::with_capacity(criteria.len());
        let mut per_criterion = Vec::new();
        let mut aggregate = PipelineStats::default();
        for (i, criterion) in criteria.iter().enumerate() {
            let answer = self
                .answer_in(dir, criterion, &mut scratch, &self.store)
                .map_err(|e| annotate_with_index(e, i))?;
            let (slice, stats) = self.adopt(answer);
            slices.push(slice);
            aggregate.absorb(&stats);
            if self.config.collect_stats {
                per_criterion.push(stats);
            }
        }
        self.put_scratch(scratch);
        Ok(BatchResult {
            slices,
            per_criterion,
            aggregate,
            per_thread: vec![WorkerStats {
                worker: 0,
                items: criteria.len(),
                steals: 0,
                busy: start.elapsed(),
            }],
        })
    }

    /// The `num_threads <= 1` body of [`slice_batch`](Slicer::slice_batch)
    /// under [`Solver::OnePass`]: groups are processed in plan order with
    /// one scratch, stopping at the first group that contains a failure
    /// (group-granular fail-fast — members of the failing group's shared
    /// saturation are necessarily in flight together). Answers are adopted
    /// in input order afterwards, exactly as the parallel path does, so
    /// successful batches are byte-identical at every width.
    fn slice_batch_sequential_onepass(
        &self,
        dir: Direction,
        criteria: &[Criterion],
    ) -> Result<BatchResult, SpecError> {
        let start = Instant::now();
        let groups = plan_groups(&self.sdg, self.proc_regions(), criteria);
        let mut scratch = self.take_scratch();
        let mut slots: Vec<Option<Result<Answer, SpecError>>> =
            criteria.iter().map(|_| None).collect();
        for group in &groups {
            let shard = scratch.shard.clone();
            let results = self.answer_group(dir, criteria, group, &mut scratch, &shard);
            let failed = results.iter().any(|(_, r)| r.is_err());
            for (i, result) in results {
                slots[i] = Some(result);
            }
            if failed {
                // Report the lowest-indexed failure answered so far.
                for (i, slot) in slots.into_iter().enumerate() {
                    if let Some(Err(e)) = slot {
                        return Err(annotate_with_index(e, i));
                    }
                }
                unreachable!("a failed group reported no error");
            }
        }
        self.put_scratch(scratch);
        let mut slices = Vec::with_capacity(criteria.len());
        let mut per_criterion = Vec::new();
        let mut aggregate = PipelineStats::default();
        for slot in slots {
            let answer = slot
                .expect("every criterion belongs to exactly one group")
                .expect("failures returned above");
            let (slice, stats) = self.adopt(answer);
            slices.push(slice);
            aggregate.absorb(&stats);
            if self.config.collect_stats {
                per_criterion.push(stats);
            }
        }
        Ok(BatchResult {
            slices,
            per_criterion,
            aggregate,
            per_thread: vec![WorkerStats {
                worker: 0,
                items: criteria.len(),
                steals: 0,
                busy: start.elapsed(),
            }],
        })
    }

    /// [`slice_batch`](Slicer::slice_batch) without the fail-fast contract:
    /// every criterion is answered and returned individually, so one
    /// malformed criterion does not poison the rest of the batch. Results
    /// are in input order; errors identify their criterion by index.
    pub fn slice_batch_results(&self, criteria: &[Criterion]) -> Vec<Result<SpecSlice, SpecError>> {
        let (results, _) = self.batch_raw(Direction::Backward, criteria);
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map(|answer| self.adopt(answer).0)
                    .map_err(|e| annotate_with_index(e, i))
            })
            .collect()
    }

    /// Computes the **chop** from `source` to `target`: the configurations
    /// that both lie forward of `source` and backward of `target` —
    /// `forward_slice(source) ∩ slice(target)`, intersected on the two
    /// queries' canonical MRD automata and re-canonicalized, so the result
    /// is byte-identical to computing the two slices independently and
    /// intersecting them (at every thread count and under both solvers).
    ///
    /// The two constituent queries go through the session memo (a repeated
    /// chop endpoint is a cache hit); the intersection itself is cheap and
    /// is not memoized. See [`QueryKind::Chop`] for what a chop does *not*
    /// guarantee: it is a variant/vertex report, not an executable slice.
    pub fn chop(&self, source: &Criterion, target: &Criterion) -> Result<SpecSlice, SpecError> {
        self.chop_with_stats(source, target).map(|(s, _)| s)
    }

    /// [`chop`](Slicer::chop) plus the aggregate pipeline statistics of the
    /// two constituent queries (the `mrd` sizes describe the chop's own
    /// re-canonicalized automaton).
    pub fn chop_with_stats(
        &self,
        source: &Criterion,
        target: &Criterion,
    ) -> Result<(SpecSlice, PipelineStats), SpecError> {
        let start = Instant::now();
        let (fwd, fwd_stats) = self.forward_slice_with_stats(source)?;
        let (bwd, bwd_stats) = self.slice_with_stats(target)?;
        let inter = specslice_fsa::ops::intersect(&fwd.a6, &bwd.a6);
        let (inter_trim, _) = inter.trimmed();
        let (a6, mrd_stats) = mrd_with_stats(&inter_trim);
        let mut scratch = self.take_scratch();
        let slice = readout::read_out_in(
            &self.sdg,
            &self.enc,
            &a6,
            self.config.validate,
            QueryKind::Chop,
            &mut scratch.readout,
            &self.store,
        );
        self.put_scratch(scratch);
        let slice = slice?;
        let mut stats = fwd_stats;
        stats.absorb(&bwd_stats);
        // The constituent queries' MRD sizes are summed above; the chop's
        // own canonical automaton is what `mrd` should describe.
        stats.mrd = mrd_stats;
        stats.query_time = start.elapsed();
        Ok((slice, stats))
    }

    /// Removes the feature identified by the forward stack-configuration
    /// slice from `criterion` (Alg. 2 / §7), reusing the cached encoding
    /// *and* the cached reachable automaton (which Alg. 2 always needs).
    pub fn remove_feature(&self, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        feature_removal::remove_feature_reusing(
            &self.sdg,
            &self.enc,
            self.reachable()?,
            criterion,
            &self.store,
        )
    }

    /// Regenerates executable MiniC source for a slice of this session's
    /// program.
    ///
    /// # Errors
    ///
    /// [`SpecError::Internal`] when the session was built with
    /// [`from_sdg`](Slicer::from_sdg) (no program to regenerate from), or
    /// when the slice violates regeneration invariants (a bug).
    pub fn regenerate(&self, slice: &SpecSlice) -> Result<RegenOutput, SpecError> {
        let program = self.program.as_ref().ok_or_else(|| {
            SpecError::internal(
                "regen",
                "session was built from an SDG only; use Slicer::from_source / \
                 from_program to enable source regeneration",
            )
        })?;
        regen::regenerate(&self.sdg, program, slice)
    }

    /// Runs the §8.3 reslicing self-check for a completed slice of this
    /// session, reusing the session's encoding for the original program.
    pub fn reslice_check(
        &self,
        criterion: &Criterion,
        slice: &SpecSlice,
        regen: &RegenOutput,
    ) -> Result<ResliceReport, SpecError> {
        reslice::reslice_check_reusing(&self.sdg, &self.enc, criterion, slice, regen)
    }
}

/// Plans the one-pass solver's criterion groups: a partition of
/// `0..criteria.len()` where each group shares one saturation.
///
/// Criteria are grouped by the sorted set of call-graph *regions* (SCC
/// condensation components, see [`Slicer::proc_regions`]) owning their
/// vertices — criteria rooted in the same mutual-recursion cluster
/// saturate near-identical state, which is exactly the redundancy the
/// shared saturation eliminates; unrelated criteria would only bloat each
/// other's union automaton. Raw-automaton criteria and criteria naming an
/// out-of-range vertex (rejected later, during query construction) get
/// singleton groups. Members stay in input order and groups wider than
/// [`CriterionSet::MAX_MEMBERS`] roll over into fresh groups of the same
/// shard. The returned plan is ordered shard-contiguously (shards in first
/// appearance order, a shard's rollover chain adjacent within it) so the
/// pool's contiguous deal lands same-region groups on the same worker —
/// warm rows for the region's saturation state — instead of interleaving
/// them across the pool. The plan is a pure function of the criterion list
/// and the session's SDG; results are scattered back to input order, so
/// batch output stays thread-count-independent.
fn plan_groups(sdg: &Sdg, regions: &[u32], criteria: &[Criterion]) -> Vec<Vec<usize>> {
    let vertex_bound = sdg.vertex_count() as u32;
    let region_key = |verts: &mut dyn Iterator<Item = u32>| -> Option<Vec<u32>> {
        let mut key = Vec::new();
        for v in verts {
            if v >= vertex_bound {
                return None;
            }
            key.push(regions[sdg.vertex(VertexId(v)).proc.0 as usize]);
        }
        key.sort_unstable();
        key.dedup();
        Some(key)
    };
    // Each group carries its shard id (one per distinct key, in first
    // appearance order; keyless singletons shard alone) until the final
    // shard-contiguous ordering below.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    // Key → (open group index, shard id).
    let mut open: HashMap<Vec<u32>, (usize, usize)> = HashMap::new();
    let mut shards = 0usize;
    for (i, criterion) in criteria.iter().enumerate() {
        let key = match criterion {
            Criterion::AllContexts(verts) => region_key(&mut verts.iter().map(|v| v.0)),
            Criterion::Configurations(configs) => region_key(&mut configs.iter().map(|(v, _)| v.0)),
            Criterion::Automaton(_) => None,
        };
        match key {
            None => {
                groups.push((shards, vec![i]));
                shards += 1;
            }
            Some(key) => match open.get_mut(&key) {
                Some(&mut (g, _)) if groups[g].1.len() < CriterionSet::MAX_MEMBERS => {
                    groups[g].1.push(i);
                }
                Some(entry) => {
                    // Mask rollover: a fresh group in the same shard.
                    entry.0 = groups.len();
                    let shard = entry.1;
                    groups.push((shard, vec![i]));
                }
                None => {
                    open.insert(key, (groups.len(), shards));
                    groups.push((shards, vec![i]));
                    shards += 1;
                }
            },
        }
    }
    groups.sort_by_key(|&(shard, _)| shard);
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Tags a failing batch member with its criterion index, for every error
/// variant a query can produce (so "errors identify their criterion by
/// index" holds for internal invariant violations too, where knowing the
/// triggering criterion is exactly what debugging needs).
fn annotate_with_index(e: SpecError, i: usize) -> SpecError {
    match e {
        SpecError::Internal { context, message } => SpecError::Internal {
            context,
            message: format!("criterion #{i}: {message}"),
        },
        SpecError::BadCriterion { reason } => SpecError::BadCriterion {
            reason: format!("criterion #{i}: {reason}"),
        },
        other => other,
    }
}

/// The engine-stage name errors are tagged with, per direction.
fn dir_stage(dir: Direction) -> &'static str {
    match dir {
        Direction::Backward => "prestar",
        Direction::Forward => "poststar",
    }
}

/// Sets the per-direction memo hit/miss counters on a query's stats (the
/// other direction's counters are zeroed — one query participates in
/// exactly one direction's cache).
fn set_memo_counters(stats: &mut PipelineStats, dir: Direction, hit: bool) {
    stats.memo_hits_backward = 0;
    stats.memo_misses_backward = 0;
    stats.memo_hits_forward = 0;
    stats.memo_misses_forward = 0;
    match (dir, hit) {
        (Direction::Backward, true) => stats.memo_hits_backward = 1,
        (Direction::Backward, false) => stats.memo_misses_backward = 1,
        (Direction::Forward, true) => stats.memo_hits_forward = 1,
        (Direction::Forward, false) => stats.memo_misses_forward = 1,
    }
}

/// The criterion-dependent tail of Alg. 1: saturation (`Prestar` backward,
/// `Poststar` forward) → trim → MRD → read-out. Shared by the session
/// methods and the one-shot [`crate::specialize`]. The slice's content is
/// interned into `store`.
pub(crate) fn run_query(
    dir: Direction,
    sdg: &Sdg,
    enc: &Encoded,
    query: &PAutomaton,
    validate: bool,
    store: &Arc<VariantStore>,
) -> Result<(SpecSlice, PipelineStats), SpecError> {
    // `query_time` stays zero here: its contract includes query-automaton
    // construction, which only `Slicer::answer_in` wraps (and both callers
    // of this function discard the stats anyway).
    run_query_in(
        dir,
        sdg,
        enc,
        query,
        validate,
        &mut QueryScratch::default(),
        store,
    )
}

/// [`run_query`] against caller-owned scratch buffers, so a batch worker's
/// hot loop reuses its saturation rows and read-out tables across criteria.
pub(crate) fn run_query_in(
    dir: Direction,
    sdg: &Sdg,
    enc: &Encoded,
    query: &PAutomaton,
    validate: bool,
    scratch: &mut QueryScratch,
    store: &Arc<VariantStore>,
) -> Result<(SpecSlice, PipelineStats), SpecError> {
    let (a1, satstats) = saturate_indexed_with_stats(dir, &enc.index, query, &mut scratch.sat)
        .map_err(|e| SpecError::pds(dir_stage(dir), e))?;
    let a1_nfa = a1.to_nfa(MAIN_CONTROL);
    let (a1_trim, _) = a1_nfa.trimmed();
    let (a6, mrd_stats) = mrd_with_stats(&a1_trim);
    let slice = readout::read_out_in(
        sdg,
        enc,
        &a6,
        validate,
        dir.into(),
        &mut scratch.readout,
        store,
    )?;
    let stats = PipelineStats {
        pds_rules: enc.pds.rule_count(),
        prestar_transitions: satstats.transitions,
        prestar_peak_bytes: satstats.peak_bytes,
        prestar_rule_applications: satstats.rule_applications,
        prestar_peak_worklist: satstats.peak_worklist,
        a1_states: a1_trim.state_count(),
        a1_transitions: a1_trim.transition_count(),
        mrd: mrd_stats,
        saturations_run: 1,
        criteria_per_saturation: 1,
        ..PipelineStats::default()
    };
    Ok((slice, stats))
}
