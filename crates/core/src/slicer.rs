//! The [`Slicer`] session: one program, many slicing queries.
//!
//! Alg. 1's pipeline splits into *program-dependent* stages (frontend → SDG
//! construction → PDS encoding → the reachable-configuration automaton) and
//! *criterion-dependent* stages (query automaton → `Prestar` → MRD →
//! read-out). The paper's entire evaluation slices each test program once
//! per `printf` — a multi-criterion workload — and a naive client pays the
//! program-dependent cost on every call. A `Slicer` runs those stages once
//! at construction (the reachable automaton lazily, on the first criterion
//! that needs it) and reuses them for every subsequent query, batch, feature
//! removal, regeneration, or reslice check.

use crate::criteria::{self, Criterion};
use crate::encode::{self, Encoded, MAIN_CONTROL};
use crate::readout::{self, SpecSlice};
use crate::regen::{self, RegenOutput};
use crate::reslice::{self, ResliceReport};
use crate::{feature_removal, PipelineStats, SpecError};
use specslice_fsa::mrd::mrd_with_stats;
use specslice_fsa::Nfa;
use specslice_lang::Program;
use specslice_pds::prestar::prestar_with_stats;
use specslice_pds::PAutomaton;
use specslice_sdg::build::build_sdg;
use specslice_sdg::Sdg;
use std::cell::{Cell, OnceCell};

/// Options for a [`Slicer`] session.
///
/// Options live here — not in per-call `_with_stats` / `_unchecked`
/// function variants — so the call surface stays stable as knobs accrete.
#[derive(Clone, Copy, Debug)]
pub struct SlicerConfig {
    /// Validate every read-out slice against the paper's Cor. 3.19
    /// no-parameter-mismatch property (cheap; on by default). Turning it off
    /// skips the post-hoc audit, not any part of the algorithm itself.
    pub validate: bool,
    /// Retain per-criterion [`PipelineStats`] in
    /// [`BatchResult::per_criterion`]. Off keeps batch results lean on large
    /// workloads; the (cheap, counter-read) aggregate is always computed,
    /// and [`Slicer::slice_with_stats`] always returns stats.
    pub collect_stats: bool,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            validate: true,
            collect_stats: true,
        }
    }
}

/// The result of [`Slicer::slice_batch`]: per-criterion slices (in input
/// order) plus stats.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One specialization slice per input criterion, in order.
    pub slices: Vec<SpecSlice>,
    /// Per-criterion pipeline stats (empty when stats collection is off).
    pub per_criterion: Vec<PipelineStats>,
    /// Aggregate over `per_criterion` ([`PipelineStats::absorb`] semantics:
    /// sums of per-query sizes, shared-encoding sizes kept once).
    pub aggregate: PipelineStats,
}

/// A slicing session over one program: cached SDG, cached PDS encoding,
/// lazily cached reachable-configuration automaton.
///
/// Construction runs everything that depends only on the program; every
/// query method ([`slice`](Slicer::slice), [`slice_batch`](Slicer::slice_batch),
/// [`remove_feature`](Slicer::remove_feature), …) reuses those caches. The
/// session is cheap to keep alive and immutable — build one per program and
/// share it across as many criteria as needed.
#[derive(Debug)]
pub struct Slicer {
    program: Option<Program>,
    sdg: Sdg,
    enc: Encoded,
    config: SlicerConfig,
    /// `post*({⟨entry_main, ε⟩})` as an NFA — needed by all-contexts
    /// criteria and feature removal; built on first use, then shared.
    reachable: OnceCell<Nfa>,
    reachable_builds: Cell<usize>,
    queries_run: Cell<usize>,
}

impl Slicer {
    /// Builds a session from MiniC source: frontend → SDG → PDS encoding,
    /// all cached. Keeps the checked [`Program`] so
    /// [`regenerate`](Slicer::regenerate) works.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] / [`SpecError::Sema`] from the frontend,
    /// [`SpecError::SdgBuild`] from SDG construction.
    pub fn from_source(src: &str) -> Result<Slicer, SpecError> {
        Slicer::from_source_with(src, SlicerConfig::default())
    }

    /// [`from_source`](Slicer::from_source) with explicit options.
    pub fn from_source_with(src: &str, config: SlicerConfig) -> Result<Slicer, SpecError> {
        let program = specslice_lang::frontend(src)?;
        Slicer::from_program_with(program, config)
    }

    /// Builds a session from an already-frontended program (normalized and
    /// checked — e.g. the output of [`crate::indirect::lower_indirect_calls`]).
    pub fn from_program(program: Program) -> Result<Slicer, SpecError> {
        Slicer::from_program_with(program, SlicerConfig::default())
    }

    /// [`from_program`](Slicer::from_program) with explicit options.
    pub fn from_program_with(program: Program, config: SlicerConfig) -> Result<Slicer, SpecError> {
        let sdg = build_sdg(&program)?;
        Ok(Slicer::assemble(Some(program), sdg, config))
    }

    /// Builds a session from a pre-built SDG. Source regeneration is
    /// unavailable ([`regenerate`](Slicer::regenerate) reports
    /// [`SpecError::Internal`]); everything else works.
    pub fn from_sdg(sdg: Sdg) -> Result<Slicer, SpecError> {
        Slicer::from_sdg_with(sdg, SlicerConfig::default())
    }

    /// [`from_sdg`](Slicer::from_sdg) with explicit options.
    pub fn from_sdg_with(sdg: Sdg, config: SlicerConfig) -> Result<Slicer, SpecError> {
        Ok(Slicer::assemble(None, sdg, config))
    }

    fn assemble(program: Option<Program>, sdg: Sdg, config: SlicerConfig) -> Slicer {
        let enc = encode::encode_sdg(&sdg);
        Slicer {
            program,
            sdg,
            enc,
            config,
            reachable: OnceCell::new(),
            reachable_builds: Cell::new(0),
            queries_run: Cell::new(0),
        }
    }

    /// The session's SDG.
    pub fn sdg(&self) -> &Sdg {
        &self.sdg
    }

    /// The checked program, when the session was built from source or AST.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// The cached SDG→PDS encoding. The same instance is used by every
    /// query of this session — it is built exactly once, at construction.
    pub fn encoding(&self) -> &Encoded {
        &self.enc
    }

    /// The session options.
    pub fn config(&self) -> &SlicerConfig {
        &self.config
    }

    /// How many times the reachable-configuration automaton was built
    /// (0 until a criterion needs it, then 1 forever — it is cached).
    pub fn reachable_builds(&self) -> usize {
        self.reachable_builds.get()
    }

    /// Total queries answered by this session (slices, batch members, and
    /// feature removals).
    pub fn queries_run(&self) -> usize {
        self.queries_run.get()
    }

    /// The cached `post*({⟨entry_main, ε⟩})` automaton.
    fn reachable(&self) -> &Nfa {
        self.reachable.get_or_init(|| {
            self.reachable_builds.set(self.reachable_builds.get() + 1);
            criteria::reachable_configurations(&self.sdg, &self.enc)
        })
    }

    fn query(&self, criterion: &Criterion) -> Result<PAutomaton, SpecError> {
        self.queries_run.set(self.queries_run.get() + 1);
        let reachable = match criterion {
            // Only all-contexts criteria consult the reachable automaton;
            // don't force the cache for the others.
            Criterion::AllContexts(_) => Some(self.reachable()),
            _ => None,
        };
        criteria::query_automaton_reusing(&self.sdg, &self.enc, reachable, criterion)
    }

    /// Computes the specialization slice for `criterion` (Alg. 1), reusing
    /// the session's cached encoding.
    ///
    /// # Errors
    ///
    /// [`SpecError::BadCriterion`] for malformed criteria;
    /// [`SpecError::Internal`] on invariant violations (a bug).
    pub fn slice(&self, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
        let query = self.query(criterion)?;
        run_query(&self.sdg, &self.enc, &query, self.config.validate).map(|(s, _)| s)
    }

    /// [`slice`](Slicer::slice) plus the automaton statistics the paper's
    /// evaluation reports (always collected, regardless of
    /// [`SlicerConfig::collect_stats`]).
    pub fn slice_with_stats(
        &self,
        criterion: &Criterion,
    ) -> Result<(SpecSlice, PipelineStats), SpecError> {
        let query = self.query(criterion)?;
        run_query(&self.sdg, &self.enc, &query, self.config.validate)
    }

    /// Slices every criterion in `criteria`, sharing the per-program work
    /// (encoding, reachable automaton) across the whole batch.
    ///
    /// Results come back in input order, one [`SpecSlice`] per criterion —
    /// element `i` is identical to what `slice(&criteria[i])` returns. The
    /// batch stops at the first error, identifying the offending criterion
    /// by index in the message.
    pub fn slice_batch(&self, criteria: &[Criterion]) -> Result<BatchResult, SpecError> {
        let mut slices = Vec::with_capacity(criteria.len());
        let mut per_criterion = Vec::new();
        let mut aggregate = PipelineStats::default();
        for (i, criterion) in criteria.iter().enumerate() {
            let query = self.query(criterion).map_err(|e| match e {
                SpecError::BadCriterion { reason } => SpecError::BadCriterion {
                    reason: format!("criterion #{i}: {reason}"),
                },
                other => other,
            })?;
            let (slice, stats) = run_query(&self.sdg, &self.enc, &query, self.config.validate)?;
            slices.push(slice);
            aggregate.absorb(&stats);
            if self.config.collect_stats {
                per_criterion.push(stats);
            }
        }
        Ok(BatchResult {
            slices,
            per_criterion,
            aggregate,
        })
    }

    /// Removes the feature identified by the forward stack-configuration
    /// slice from `criterion` (Alg. 2 / §7), reusing the cached encoding
    /// *and* the cached reachable automaton (which Alg. 2 always needs).
    pub fn remove_feature(&self, criterion: &Criterion) -> Result<SpecSlice, SpecError> {
        self.queries_run.set(self.queries_run.get() + 1);
        feature_removal::remove_feature_reusing(&self.sdg, &self.enc, self.reachable(), criterion)
    }

    /// Regenerates executable MiniC source for a slice of this session's
    /// program.
    ///
    /// # Errors
    ///
    /// [`SpecError::Internal`] when the session was built with
    /// [`from_sdg`](Slicer::from_sdg) (no program to regenerate from), or
    /// when the slice violates regeneration invariants (a bug).
    pub fn regenerate(&self, slice: &SpecSlice) -> Result<RegenOutput, SpecError> {
        let program = self.program.as_ref().ok_or_else(|| {
            SpecError::internal(
                "regen",
                "session was built from an SDG only; use Slicer::from_source / \
                 from_program to enable source regeneration",
            )
        })?;
        regen::regenerate(&self.sdg, program, slice)
    }

    /// Runs the §8.3 reslicing self-check for a completed slice of this
    /// session, reusing the session's encoding for the original program.
    pub fn reslice_check(
        &self,
        criterion: &Criterion,
        slice: &SpecSlice,
        regen: &RegenOutput,
    ) -> Result<ResliceReport, SpecError> {
        reslice::reslice_check_reusing(&self.sdg, &self.enc, criterion, slice, regen)
    }
}

/// The criterion-dependent tail of Alg. 1: `Prestar` → trim → MRD →
/// read-out. Shared by the session methods and the one-shot
/// [`crate::specialize`].
pub(crate) fn run_query(
    sdg: &Sdg,
    enc: &Encoded,
    query: &PAutomaton,
    validate: bool,
) -> Result<(SpecSlice, PipelineStats), SpecError> {
    let (a1, prestats) = prestar_with_stats(&enc.pds, query);
    let a1_nfa = a1.to_nfa(MAIN_CONTROL);
    let (a1_trim, _) = a1_nfa.trimmed();
    let (a6, mrd_stats) = mrd_with_stats(&a1_trim);
    let slice = readout::read_out_with(sdg, enc, &a6, validate)?;
    let stats = PipelineStats {
        pds_rules: enc.pds.rule_count(),
        prestar_transitions: prestats.transitions,
        prestar_peak_bytes: prestats.peak_bytes,
        a1_states: a1_trim.state_count(),
        a1_transitions: a1_trim.transition_count(),
        mrd: mrd_stats,
    };
    Ok((slice, stats))
}
