//! Regenerates every table and figure of the paper's evaluation (§8).
//!
//! Usage: `cargo run -p specslice-bench --bin experiments [-- <id>|all]`
//! where `<id>` is one of: tab1 fig1 fig2 fig13 fig17 fig18 fig19 fig20
//! fig21 fig22 det-shrink wc-speedup reslice.
//!
//! Output goes to stdout; absolute numbers differ from the paper (MiniC
//! emulations on a simulator substrate), but the qualitative shape — who
//! wins, replication vs extraneous growth, no exponential blow-up — is the
//! reproduction target (see EXPERIMENTS.md).

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer};
use specslice_bench::{geometric_mean, loc, slice_program, std_dev, SliceRecord};
use std::collections::BTreeMap;

const EXPERIMENT_IDS: &[&str] = &[
    "tab1",
    "fig1",
    "fig2",
    "fig13",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "det-shrink",
    "wc-speedup",
    "reslice",
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which != "all" && !EXPERIMENT_IDS.contains(&which.as_str()) {
        eprintln!(
            "unknown experiment `{which}`; expected one of: all {}",
            EXPERIMENT_IDS.join(" ")
        );
        std::process::exit(2);
    }
    let run = |id: &str| which == "all" || which == id;

    if run("tab1") {
        tab1();
    }
    if run("fig1") {
        fig1();
    }
    if run("fig2") {
        fig2();
    }
    if run("fig13") {
        fig13();
    }
    let need_records = [
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "det-shrink",
    ]
    .iter()
    .any(|id| run(id));
    if need_records {
        let (table, records) = corpus_records();
        if run("fig17") {
            fig17(&table);
        }
        if run("fig18") {
            fig18(&records);
        }
        if run("fig19") {
            fig19(&records);
        }
        if run("fig20") {
            fig20(&records);
        }
        if run("fig21") {
            fig21(&records);
        }
        if run("fig22") {
            fig22(&records);
        }
        if run("det-shrink") {
            det_shrink(&records);
        }
    }
    if run("wc-speedup") {
        wc_speedup();
    }
    if run("reslice") {
        reslice();
    }
}

fn header(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}

/// Tab. I: the PDS encoding of Fig. 1(a)'s SDG.
fn tab1() {
    header("Tab. I — PDS encoding of the Fig. 1(a) SDG (paper: 62 rules)");
    let slicer = Slicer::from_source(specslice_corpus::examples::FIG1).unwrap();
    let (sdg, enc) = (slicer.sdg(), slicer.encoding());
    println!("{}", specslice::encode::dump_rules(sdg, enc));
    println!(
        "total rules: {} (paper: 62; ours adds §6.1 library-actual rules \
         and counts dependence edges of our builder)",
        enc.pds.rule_count()
    );
}

/// Fig. 1/5: specializations of p.
fn fig1() {
    header("Fig. 1/5 — specialization slice of the running example");
    let slicer = Slicer::from_source(specslice_corpus::examples::FIG1).unwrap();
    let sdg = slicer.sdg();
    let slice = slicer.slice(&Criterion::printf_actuals(sdg)).unwrap();
    for v in &slice.variants() {
        println!(
            "  {:<8} vertices={:<2} kept params={:?}",
            v.name,
            v.vertices.len(),
            v.kept_params(sdg)
        );
    }
    let regen = slicer.regenerate(&slice).unwrap();
    println!("--- regenerated (paper Fig. 1(b)) ---\n{}", regen.source);
}

/// Fig. 2: recursion → mutual recursion.
fn fig2() {
    header("Fig. 2 — direct recursion specializes into mutual recursion");
    let slicer = Slicer::from_source(specslice_corpus::examples::FIG2).unwrap();
    let slice = slicer
        .slice(&Criterion::printf_actuals(slicer.sdg()))
        .unwrap();
    let regen = slicer.regenerate(&slice).unwrap();
    println!("{}", regen.source);
}

/// §4.3 / Fig. 13: exponential family.
fn fig13() {
    header("Fig. 13 — exponential family P_k (paper: 2^k specializations)");
    println!(
        "{:>3} {:>12} {:>12} {:>10} {:>12}",
        "k", "pk variants", "expected", "vertices", "time"
    );
    for k in 1..=8 {
        let src = specslice_corpus::pk_family(k);
        let slicer = Slicer::from_source(&src).unwrap();
        // Timing from the pipeline's own accounting, like every driver.
        let (slice, stats) = slicer
            .slice_with_stats(&Criterion::printf_actuals(slicer.sdg()))
            .unwrap();
        let n = slice.variants_of_proc(slicer.sdg(), "pk").len();
        println!(
            "{:>3} {:>12} {:>12} {:>10} {:>10.1?}",
            k,
            n,
            format!("2^{k}-1 = {}", (1 << k) - 1),
            slice.total_vertices(),
            stats.query_time
        );
        assert_eq!(n, (1 << k) - 1);
    }
    println!(
        "(the empty specialization of the paper's 2^k bound never materializes\n\
         in a closure slice — a dropped call needs no variant; growth is Θ(2^k))"
    );
}

struct Fig17Row {
    name: &'static str,
    loc: usize,
    procs: usize,
    vertices: usize,
    call_sites: usize,
    slices: usize,
}

fn corpus_records() -> (Vec<Fig17Row>, Vec<SliceRecord>) {
    // Programs are independent, so the corpus fans out one session per
    // program across the available cores (per-criterion parallelism lives
    // inside `slice_batch`; here the unit of work is a whole program).
    // `Pool::map` returns in input order, so tables are stable.
    let pool = specslice_exec::Pool::with_available_parallelism();
    if pool.threads() > 1 {
        println!(
            "(corpus sweep parallelized over {} workers; timing columns in the \
             figures below were measured on a machine loaded by the sweep itself \
             — sizes and shapes are unaffected)",
            pool.threads()
        );
    }
    let progs = specslice_corpus::programs();
    let per_program = pool.map(&progs, |_, prog| {
        let slicer = Slicer::from_source(prog.source).unwrap();
        let recs = slice_program(prog.name, &slicer);
        let sdg = slicer.sdg();
        let row = Fig17Row {
            name: prog.name,
            loc: loc(prog.source),
            procs: sdg.procs.len(),
            vertices: sdg.vertex_count(),
            call_sites: sdg.call_sites.len(),
            slices: recs.len(),
        };
        (row, recs)
    });
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (row, recs) in per_program {
        rows.push(row);
        records.extend(recs);
    }
    // The Fig. 18 / det-shrink aggregates also include the mismatch-rich
    // paper examples and the P_k family (the corpus emulations alone are
    // less polyvariant than the paper's full C programs).
    let extra: Vec<(&'static str, String)> = vec![
        ("fig1", specslice_corpus::examples::FIG1.to_string()),
        ("fig2", specslice_corpus::examples::FIG2.to_string()),
        ("flawed", specslice_corpus::examples::FLAWED.to_string()),
        ("pk3", specslice_corpus::pk_family(3)),
        ("pk4", specslice_corpus::pk_family(4)),
        ("pk5", specslice_corpus::pk_family(5)),
    ];
    for recs in pool.map(&extra, |_, (name, src)| {
        let slicer = Slicer::from_source(src).unwrap();
        slice_program(name, &slicer)
    }) {
        records.extend(recs);
    }
    (rows, records)
}

fn fig17(rows: &[Fig17Row]) {
    header("Fig. 17 — test programs (MiniC emulations; see DESIGN.md §2)");
    println!(
        "{:<15} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "program", "LoC", "procs", "vertices", "sites", "slices"
    );
    for r in rows {
        println!(
            "{:<15} {:>8} {:>8} {:>10} {:>10} {:>8}",
            r.name, r.loc, r.procs, r.vertices, r.call_sites, r.slices
        );
    }
}

fn fig18(records: &[SliceRecord]) {
    header("Fig. 18 — distribution of specialized versions per procedure");
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for r in records {
        for &n in &r.variant_counts {
            *hist.entry(n).or_insert(0) += 1;
        }
    }
    let total: usize = hist.values().sum();
    println!("{:>10} {:>10} {:>8}", "#versions", "#procs", "%");
    for (n, c) in &hist {
        println!(
            "{:>10} {:>10} {:>7.1}%",
            n,
            c,
            100.0 * *c as f64 / total as f64
        );
    }
    let single = hist.get(&1).copied().unwrap_or(0);
    println!(
        "single-version procedures: {:.1}% (paper: 90.6%); max versions: {} (paper: 6)",
        100.0 * single as f64 / total as f64,
        hist.keys().max().unwrap_or(&0)
    );
}

fn fig19(records: &[SliceRecord]) {
    header("Fig. 19 — % extra vertices vs closure slice (mono vs poly)");
    println!(
        "{:<15} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "program", "slices", "mono %inc", "σ", "poly %inc", "σ"
    );
    let mut mono_means = Vec::new();
    let mut poly_means = Vec::new();
    for prog in specslice_corpus::programs() {
        let rs: Vec<&SliceRecord> = records.iter().filter(|r| r.program == prog.name).collect();
        if rs.is_empty() {
            continue;
        }
        let mono: Vec<f64> = rs
            .iter()
            .map(|r| 100.0 * (r.mono_size as f64 - r.closure_size as f64) / r.closure_size as f64)
            .collect();
        let poly: Vec<f64> = rs
            .iter()
            .map(|r| 100.0 * (r.poly_size as f64 - r.closure_size as f64) / r.closure_size as f64)
            .collect();
        let m = mono.iter().sum::<f64>() / mono.len() as f64;
        let p = poly.iter().sum::<f64>() / poly.len() as f64;
        println!(
            "{:<15} {:>8} {:>12.1} {:>8.1} {:>12.1} {:>8.1}",
            prog.name,
            rs.len(),
            m,
            std_dev(&mono),
            p,
            std_dev(&poly)
        );
        mono_means.push(100.0 + m);
        poly_means.push(100.0 + p);
    }
    println!(
        "geometric mean (|closure|=100): mono {:.1} (paper 107.1), poly {:.1} (paper 109.4)",
        geometric_mean(mono_means),
        geometric_mean(poly_means)
    );
    println!("(mono adds EXTRANEOUS elements; poly only REPLICATES closure elements)");
}

fn fig20(records: &[SliceRecord]) {
    header("Fig. 20 — per-PDG scatter: %vertices kept, poly (x) vs mono (y)");
    let mut ratios = Vec::new();
    let mut shown = 0;
    for r in records {
        for &(orig, poly, mono) in &r.scatter {
            if orig == 0 || mono == 0 || poly == 0 {
                continue;
            }
            let x = 100.0 * poly as f64 / orig as f64;
            let y = 100.0 * mono as f64 / orig as f64;
            ratios.push(x / y);
            if shown < 20 {
                println!("  ({:>5.1}, {:>5.1})  [{}]", x, y, r.program);
                shown += 1;
            }
        }
    }
    println!("  … {} points total", ratios.len());
    println!(
        "geometric mean poly/mono per-PDG size ratio: {:.1}% (paper: 93%)",
        100.0 * geometric_mean(ratios)
    );
}

fn fig21(records: &[SliceRecord]) {
    header("Fig. 21 — slicing times (µs): mono vs poly, and automaton share");
    println!(
        "{:<15} {:>12} {:>12} {:>14}",
        "program", "mono µs", "poly µs", "automata µs"
    );
    let mut slowdowns = Vec::new();
    for prog in specslice_corpus::programs() {
        let rs: Vec<&SliceRecord> = records.iter().filter(|r| r.program == prog.name).collect();
        if rs.is_empty() {
            continue;
        }
        let avg = |f: &dyn Fn(&SliceRecord) -> f64| {
            rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64
        };
        let mono = avg(&|r| r.mono_time.as_micros() as f64);
        let poly = avg(&|r| r.poly_time.as_micros() as f64);
        let auto = avg(&|r| r.automata_time.as_micros() as f64);
        println!(
            "{:<15} {:>12.0} {:>12.0} {:>14.0}",
            prog.name, mono, poly, auto
        );
        if mono > 0.0 {
            slowdowns.push(poly / mono.max(1.0));
        }
    }
    println!(
        "geometric-mean poly/mono slowdown: {:.1}x (paper: 2.7x–4.7x)",
        geometric_mean(slowdowns)
    );
}

fn fig22(records: &[SliceRecord]) {
    header("Fig. 22 — memory (KB, deterministic structure bytes)");
    println!(
        "{:<15} {:>14} {:>16}",
        "program", "SDG KB", "PDS+FSA peak KB"
    );
    for prog in specslice_corpus::programs() {
        let rs: Vec<&SliceRecord> = records.iter().filter(|r| r.program == prog.name).collect();
        if rs.is_empty() {
            continue;
        }
        let sdg_kb = rs[0].sdg_bytes as f64 / 1024.0;
        let auto_kb = rs
            .iter()
            .map(|r| r.automata_bytes as f64)
            .fold(0.0f64, f64::max)
            / 1024.0;
        println!("{:<15} {:>14.1} {:>16.1}", prog.name, sdg_kb, auto_kb);
    }
    println!("(paper reports process RSS; we report allocator-independent structure bytes)");
}

fn det_shrink(records: &[SliceRecord]) {
    header("§4.2 — minimize() shrink of determinize() output (paper: 4.4%–34%)");
    let mut shrinks = Vec::new();
    for r in records {
        if r.det_states > 0 {
            shrinks.push(100.0 * (1.0 - r.min_states as f64 / r.det_states as f64));
        }
    }
    shrinks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !shrinks.is_empty() {
        println!(
            "min {:.1}%  median {:.1}%  max {:.1}%  (n = {})",
            shrinks[0],
            shrinks[shrinks.len() / 2],
            shrinks[shrinks.len() - 1],
            shrinks.len()
        );
        println!(
            "(at our SDG scale the subset construction already yields minimal\n\
             automata; the paper's 4.4%–34% shrink appears at CodeSurfer scale)"
        );
    }
}

fn wc_speedup() {
    header("§5 — executable wc slices: runtime vs original (paper: 32.5%)");
    let prog = specslice_corpus::by_name("wc").unwrap();
    let slicer = Slicer::from_source(prog.source).unwrap();
    let ast = slicer.program().unwrap();
    let sdg = slicer.sdg();
    // A longer input so counting dominates.
    let mut input: Vec<i64> = Vec::new();
    for i in 0..400 {
        input.push(match i % 5 {
            0 => 0,
            4 => 2,
            _ => 1,
        });
    }
    let original = exec::run(
        &ExecRequest::new(ast)
            .with_input(&input)
            .with_fuel(ExecRequest::DEEP_FUEL),
    )
    .unwrap();
    let mut ratios = Vec::new();
    for site in sdg.printf_call_sites() {
        let criterion = Criterion::AllContexts(site.actual_ins.clone());
        let slice = slicer.slice(&criterion).unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        let run = exec::run(
            &ExecRequest::new(&regen.program)
                .with_input(&input)
                .with_fuel(ExecRequest::DEEP_FUEL),
        )
        .unwrap();
        let ratio = 100.0 * run.steps as f64 / original.steps as f64;
        println!(
            "  slice w.r.t. printf #{:?}: {:>7} steps vs {:>7} = {:.1}%",
            site.id, run.steps, original.steps, ratio
        );
        ratios.push(ratio);
    }
    println!(
        "geometric mean: {:.1}% of original work (paper: 32.5% wall-clock)",
        geometric_mean(ratios)
    );
}

fn reslice() {
    header("§8.3 — reslicing check across the corpus");
    let mut ok = 0;
    let mut total = 0;
    for prog in specslice_corpus::programs() {
        let slicer = Slicer::from_source(prog.source).unwrap();
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let slice = slicer.slice(&criterion).unwrap();
        let regen = slicer.regenerate(&slice).unwrap();
        total += 1;
        match slicer.reslice_check(&criterion, &slice, &regen) {
            Ok(rep) if rep.languages_equal => {
                ok += 1;
                println!(
                    "  {:<15} OK ({} symbols mapped)",
                    prog.name, rep.mapped_symbols
                );
            }
            Ok(rep) => println!(
                "  {:<15} LANGUAGE MISMATCH (unmapped: {:?})",
                prog.name, rep.unmapped
            ),
            Err(e) => println!("  {:<15} ERROR: {e}", prog.name),
        }
    }
    println!("reslice verdicts: {ok}/{total} equal (expected: all)");
}
