//! A minimal wall-clock benchmark harness (the container has no third-party
//! crates, so this stands in for Criterion). Fixed-count samples with a
//! short warmup; reports min / median / mean so outliers are visible.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations (after warmup).
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl Summary {
    /// One formatted row (used by the bench binaries).
    pub fn row(&self) -> String {
        format!(
            "{:<44} {:>12.1?} {:>12.1?} {:>12.1?}   ({} samples)",
            self.name, self.min, self.median, self.mean, self.samples
        )
    }
}

/// Header line matching [`Summary::row`].
pub fn header() -> String {
    format!(
        "{:<44} {:>12} {:>12} {:>12}",
        "benchmark", "min", "median", "mean"
    )
}

/// Times `f` for `samples` iterations after `samples / 4 + 1` warmup runs.
/// The closure's result is passed through [`black_box`] so the work is not
/// optimized away.
pub fn run<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> Summary {
    assert!(samples > 0);
    for _ in 0..samples / 4 + 1 {
        black_box(f());
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    Summary {
        name: name.to_string(),
        samples,
        min,
        median,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_orders_stats() {
        let s = run("noop", 8, || 1 + 1);
        assert_eq!(s.samples, 8);
        assert!(s.min <= s.median);
    }
}
